//! `covidkg` — command-line front door to the reproduction.
//!
//! Stateless usage builds a fresh in-memory system per invocation; with
//! `--data-dir` the system persists, so `build` once and then `search`,
//! `kg`, `profiles`, `bias` and `stats` reopen it instantly (no
//! retraining), mirroring how COVIDKG.ORG serves a long-lived cluster.
//!
//! ```text
//! covidkg build --corpus 120 --data-dir /tmp/kgdata
//! covidkg search "vaccine side effects" --data-dir /tmp/kgdata
//! covidkg search "ventilators" --engine tables --expanded
//! covidkg kg "side effects" --data-dir /tmp/kgdata
//! covidkg profiles --data-dir /tmp/kgdata
//! covidkg bias --data-dir /tmp/kgdata
//! covidkg stats --data-dir /tmp/kgdata
//! ```

use covidkg::net::ReadContext;
use covidkg::repl::{
    elect, Epoch, ReadRouter, ReplConfig, ReplListener, ReplicaNode, ReplicaNodeConfig,
    ReplicaTarget, TargetHealth,
};
use covidkg::store::Collection;
use covidkg::{
    CovidKg, CovidKgConfig, DenseMode, HnswConfig, HnswIndex, HttpServer, LoadGenConfig,
    NetConfig, OpenLoopConfig, SearchMode, ServeConfig, Server,
};
use std::collections::HashSet;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
covidkg — COVIDKG.ORG reproduction CLI

USAGE:
    covidkg <command> [args] [options]

COMMANDS:
    build                    build a system (use --data-dir to persist it)
    search <query>           run a search engine over the system
    kg [query]               browse the knowledge graph / search its nodes
    profiles                 print the vaccine side-effect meta-profiles
    bias                     print the trust-weighted bias report + trust store epoch
    stats                    print the storage report + data generation
    serve                    run the HTTP front-end (stop with EOF/ctrl-d)
    replicate                follow a primary (--from) and serve reads locally
    repl-smoke               primary + replica over loopback: write, converge, read
    repl-bench               read-goodput scaling at 1/2/4 replicas (BENCH_repl.json)
                             (--failover: also kill the primary and time promotion)
    serve-bench              benchmark the concurrent serving frontend
    net-bench                wire-level HTTP load bench (emits BENCH_net.json)
    net-table                regenerate the EXPERIMENTS.md wire table from BENCH_net.json
    ann-build                build the HNSW dense index and print its shape
    ann-smoke                dense-tier end-to-end check incl. wire byte-identity
    ann-bench                HNSW recall/latency vs brute force (emits BENCH_ann.json)
    ann-table                regenerate the EXPERIMENTS.md ANN table from BENCH_ann.json
    kg-query <start> [steps] ranked multi-hop graph query (start: term:<t> |
                             kind:<root|category|entity> | node:<id>; steps:
                             comma-separated <child|parent|any|co>[:<kind>[:<paper>]])
    kg-smoke                 kg tier end-to-end check incl. wire byte-identity
    kg-bench                 query latency + incremental materialization
                             speedup vs full rebuild (emits BENCH_kg.json)
    kg-table                 regenerate the EXPERIMENTS.md KG table from BENCH_kg.json
    trust-smoke              trust tier end-to-end check incl. wire byte-identity
    trust-bench              trust-node lookup latency + incremental trust maintenance
                             speedup vs full rebuild (emits BENCH_trust.json)
    trust-table              regenerate the EXPERIMENTS.md trust table from BENCH_trust.json
    chaos                    deterministic fault-injection survival run

OPTIONS:
    --data-dir <path>        durable system location (reopened if built)
    --corpus <n>             publications to generate on build [default 120]
    --seed <n>               corpus/model seed [default 42]
    --engine all|tables|scoped|semantic|hybrid   search engine (default all)
    --page <n>               result page, 0-based (default 0)
    --expanded               expand collapsed result sections
    --depth <n>              kg tree depth (default 2)
    --fanout <n>             kg-query traversal fanout bound [default 16]
    --k <n>                  kg-query ranked paths returned [default 10]
    --clients <n>            serve-bench/chaos concurrent clients [default 8]
    --requests <n>           queries per client [serve-bench/chaos: 50;
                             net-bench closed loop: 200]
    --connections <a,b,c>    net-bench: idle keep-alive connections held open
                             during the scaling sweep [default 64,512,4096]
    --workers <n>            serve-bench/chaos worker threads [default 4]
    --faults <n>             chaos injected-fault target [default 100]
    --open-loop              serve-bench: add a fixed-arrival-rate sweep
    --rates <a,b,c>          open-loop offered rates in req/s [default:
                             0.5x / 1x / 2x of the closed-loop throughput]
    --duration-ms <n>        open-loop run length per rate [default 1000]
    --listen <addr>          serve/replicate/net-bench HTTP bind address
                             [serve: 127.0.0.1:8080; replicate: 127.0.0.1:8081]
    --repl-listen <addr>     serve: also stream WAL frames to replicas here
    --relay-listen <addr>    replicate: re-ship frames downstream from here
                             (cascading replication; epoch checks propagate)
    --failover               repl-bench: kill the primary mid-run and time
                             the fenced promotion + first routed read
    --from <addr>            replicate: the primary's replication address
    --name <name>            replicate: this replica's name [default replica-1]
";

struct Args {
    command: String,
    positional: Vec<String>,
    data_dir: Option<String>,
    corpus: usize,
    seed: u64,
    engine: String,
    page: usize,
    expanded: bool,
    depth: usize,
    fanout: usize,
    k: usize,
    clients: usize,
    requests: Option<usize>,
    connections: Option<Vec<usize>>,
    workers: usize,
    faults: u64,
    open_loop: bool,
    rates: Option<Vec<f64>>,
    duration_ms: u64,
    listen: Option<String>,
    repl_listen: Option<String>,
    relay_listen: Option<String>,
    failover: bool,
    from: Option<String>,
    name: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(|| USAGE.to_string())?;
    let mut out = Args {
        command,
        positional: Vec::new(),
        data_dir: None,
        corpus: 120,
        seed: 42,
        engine: "all".into(),
        page: 0,
        expanded: false,
        depth: 2,
        fanout: 16,
        k: 10,
        clients: 8,
        requests: None,
        connections: None,
        workers: 4,
        faults: 100,
        open_loop: false,
        rates: None,
        duration_ms: 1000,
        listen: None,
        repl_listen: None,
        relay_listen: None,
        failover: false,
        from: None,
        name: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--data-dir" => out.data_dir = Some(value("--data-dir")?),
            "--corpus" => {
                out.corpus = value("--corpus")?
                    .parse()
                    .map_err(|_| "--corpus takes a number".to_string())?
            }
            "--seed" => {
                out.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed takes a number".to_string())?
            }
            "--engine" => out.engine = value("--engine")?,
            "--page" => {
                out.page = value("--page")?
                    .parse()
                    .map_err(|_| "--page takes a number".to_string())?
            }
            "--fanout" => {
                out.fanout = value("--fanout")?
                    .parse()
                    .map_err(|e| format!("--fanout: {e}"))?
            }
            "--k" => {
                out.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?
            }
            "--depth" => {
                out.depth = value("--depth")?
                    .parse()
                    .map_err(|_| "--depth takes a number".to_string())?
            }
            "--clients" => {
                out.clients = value("--clients")?
                    .parse()
                    .map_err(|_| "--clients takes a number".to_string())?
            }
            "--requests" => {
                out.requests = Some(
                    value("--requests")?
                        .parse()
                        .map_err(|_| "--requests takes a number".to_string())?,
                )
            }
            "--connections" => {
                let list = value("--connections")?;
                let conns: Result<Vec<usize>, _> =
                    list.split(',').map(|c| c.trim().parse::<usize>()).collect();
                let conns = conns.map_err(|_| {
                    "--connections takes comma-separated connection counts".to_string()
                })?;
                if conns.is_empty() || conns.contains(&0) {
                    return Err("--connections needs positive counts".to_string());
                }
                out.connections = Some(conns);
            }
            "--workers" => {
                out.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers takes a number".to_string())?
            }
            "--faults" => {
                out.faults = value("--faults")?
                    .parse()
                    .map_err(|_| "--faults takes a number".to_string())?
            }
            "--open-loop" => out.open_loop = true,
            "--rates" => {
                let list = value("--rates")?;
                let rates: Result<Vec<f64>, _> =
                    list.split(',').map(|r| r.trim().parse::<f64>()).collect();
                let rates = rates.map_err(|_| {
                    "--rates takes comma-separated numbers (req/s)".to_string()
                })?;
                if rates.is_empty() || rates.iter().any(|r| *r <= 0.0) {
                    return Err("--rates needs positive rates".to_string());
                }
                out.rates = Some(rates);
            }
            "--duration-ms" => {
                out.duration_ms = value("--duration-ms")?
                    .parse()
                    .map_err(|_| "--duration-ms takes a number".to_string())?
            }
            "--listen" => out.listen = Some(value("--listen")?),
            "--repl-listen" => out.repl_listen = Some(value("--repl-listen")?),
            "--relay-listen" => out.relay_listen = Some(value("--relay-listen")?),
            "--failover" => out.failover = true,
            "--from" => out.from = Some(value("--from")?),
            "--name" => out.name = Some(value("--name")?),
            "--expanded" => out.expanded = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}\n\n{USAGE}"))
            }
            other => out.positional.push(other.to_string()),
        }
    }
    Ok(out)
}

/// Open the system: reopen a durable one when possible, else build fresh.
fn open_system(args: &Args, force_build: bool) -> Result<CovidKg, String> {
    let config = CovidKgConfig {
        corpus_size: args.corpus,
        seed: args.seed,
        data_dir: args.data_dir.clone(),
        ..CovidKgConfig::default()
    };
    if !force_build && args.data_dir.is_some() {
        if let Ok(system) = CovidKg::reopen(config.clone()) {
            return Ok(system);
        }
        eprintln!("(no reusable system at the data dir; building fresh)");
    }
    CovidKg::build(config).map_err(|e| format!("build failed: {e}"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    match args.command.as_str() {
        "build" => {
            let system = open_system(&args, true)?;
            let r = system.report();
            println!(
                "built: {} publications, {} tables, {} KG nodes, {} subtrees fused",
                r.publications, r.tables_parsed, r.kg_nodes, r.fusion.auto_fused
            );
            if let Some(dir) = &args.data_dir {
                println!("persisted to {dir} — subsequent commands reopen instantly");
            } else {
                println!("(in-memory only; pass --data-dir to persist)");
            }
        }
        "search" => {
            let query = args.positional.join(" ");
            if query.is_empty() {
                return Err("search needs a query\n\n".to_string() + USAGE);
            }
            let system = open_system(&args, false)?;
            let page = match args.engine.as_str() {
                "semantic" => system.search_dense(&DenseMode::Semantic(query), args.page),
                "hybrid" => system.search_dense(&DenseMode::Hybrid(query), args.page),
                lexical => {
                    let mode = match lexical {
                        "all" => SearchMode::AllFields(query),
                        "tables" => SearchMode::Tables(query),
                        "scoped" => SearchMode::TitleAbstractCaption {
                            title: query.clone(),
                            abstract_q: query,
                            caption: String::new(),
                        },
                        other => {
                            return Err(format!(
                                "unknown engine {other:?} (all|tables|scoped|semantic|hybrid)"
                            ))
                        }
                    };
                    system.search(&mode, args.page)
                }
            };
            print!(
                "{}",
                if args.expanded {
                    page.render_expanded()
                } else {
                    page.render()
                }
            );
        }
        "kg" => {
            let system = open_system(&args, false)?;
            let kg = system.kg();
            if args.positional.is_empty() {
                print!("{}", kg.render_tree(0, args.depth));
            } else {
                let query = args.positional.join(" ");
                let hits = kg.search(&query);
                if hits.is_empty() {
                    println!("no KG nodes match {query:?}");
                }
                for hit in hits {
                    print!("{}", kg.render_node(hit.node));
                }
            }
        }
        "profiles" => {
            let system = open_system(&args, false)?;
            if system.profiles().is_empty() {
                println!("no side-effect observations in this corpus");
            }
            for p in system.profiles() {
                print!("{}", p.render());
                println!();
            }
        }
        "bias" => {
            let system = open_system(&args, false)?;
            // Served from the memoized, trust-weighted bias document so
            // the CLI reads the same incrementally maintained store as
            // the `/bias/report` wire route.
            let doc = system.bias_document();
            print!(
                "{}",
                doc.get("rendered")
                    .and_then(covidkg::json::Value::as_str)
                    .unwrap_or_default()
            );
            println!(
                "trust store: epoch {}, generation {}",
                doc.get("epoch").and_then(covidkg::json::Value::as_i64).unwrap_or(0),
                doc.get("generation").and_then(covidkg::json::Value::as_i64).unwrap_or(0),
            );
        }
        "stats" => {
            let system = open_system(&args, false)?;
            print!("{}", system.stats().render_report());
            println!("data generation: {}", system.generation());
        }
        "serve" => {
            let system = open_system(&args, false)?;
            let addr = args
                .listen
                .as_deref()
                .unwrap_or("127.0.0.1:8080")
                .parse()
                .map_err(|_| "--listen takes an ADDR:PORT".to_string())?;
            let server = Arc::new(Server::start(
                system,
                ServeConfig {
                    workers: args.workers.max(1),
                    ..ServeConfig::default()
                },
            ));
            let mut http = HttpServer::start(
                Arc::clone(&server),
                NetConfig {
                    addr,
                    ..NetConfig::default()
                },
            )
            .map_err(|e| format!("bind {addr} failed: {e}"))?;
            // With --repl-listen this node is a replication primary: a
            // second listener streams WAL frames to any replica that
            // connects (see the `replicate` command).
            let repl_listener = match &args.repl_listen {
                Some(raw) => {
                    let repl_addr: SocketAddr = raw
                        .parse()
                        .map_err(|_| "--repl-listen takes an ADDR:PORT".to_string())?;
                    // Rejoin at the fencing epoch this node last held: a
                    // durable primary restarted after a failover must not
                    // come back believing it still leads generation 0.
                    let epoch = match &args.data_dir {
                        Some(dir) => Epoch::load(dir)
                            .map_err(|e| format!("load fencing epoch from {dir}: {e}"))?,
                        None => Epoch::default(),
                    };
                    let listener = ReplListener::start(
                        replication_sources(&server),
                        ReplConfig {
                            addr: repl_addr,
                            epoch: epoch.clone(),
                            ..ReplConfig::default()
                        },
                    )
                    .map_err(|e| format!("replication bind {repl_addr} failed: {e}"))?;
                    println!(
                        "replication listener on {} (watermark {}, epoch {})",
                        listener.local_addr(),
                        listener.watermark(),
                        epoch.get()
                    );
                    Some(listener)
                }
                None => None,
            };
            println!("listening on http://{}", http.local_addr());
            println!("  GET /search/{{all-fields|tables|scoped}}?q=&page=");
            println!("  GET /search/{{semantic|hybrid}}?q=&page=");
            println!("  GET /kg/query?start=&steps=&fanout=&k=");
            println!("  GET /kg/profile/{{vaccine}}   GET /kg/node/{{id}}");
            println!("  GET /trust/node/{{id}}   GET /trust/source/{{venue}}   GET /bias/report");
            println!("  GET /stats   GET /metrics");
            println!("(EOF on stdin — ctrl-d — shuts down gracefully)");
            // Block until stdin closes, then drain and exit.
            let mut sink = String::new();
            while std::io::stdin().read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                sink.clear();
            }
            http.shutdown();
            drop(repl_listener);
            server.shutdown();
            println!("drained and stopped");
        }
        "replicate" => replicate(&args)?,
        "repl-smoke" => repl_smoke(&args)?,
        "repl-bench" => repl_bench(&args)?,
        "net-table" => net_table()?,
        "ann-build" => ann_build(&args)?,
        "ann-smoke" => ann_smoke(&args)?,
        "ann-bench" => ann_bench(&args)?,
        "ann-table" => ann_table()?,
        "kg-query" => kg_query_cmd(&args)?,
        "kg-smoke" => kg_smoke(&args)?,
        "kg-bench" => kg_bench(&args)?,
        "kg-table" => kg_table()?,
        "trust-smoke" => trust_smoke(&args)?,
        "trust-bench" => trust_bench(&args)?,
        "trust-table" => trust_table()?,
        "net-bench" => {
            let system = open_system(&args, false)?;
            let server = Arc::new(Server::start(
                system,
                ServeConfig {
                    workers: args.workers.max(1),
                    ..ServeConfig::default()
                },
            ));
            let addr = args
                .listen
                .as_deref()
                .unwrap_or("127.0.0.1:0")
                .parse()
                .map_err(|_| "--listen takes an ADDR:PORT".to_string())?;
            // The default NetConfig is the reactor with an fd-budget
            // cap — large enough for the held-connection sweep.
            let mut http = HttpServer::start(
                Arc::clone(&server),
                NetConfig {
                    addr,
                    ..NetConfig::default()
                },
            )
            .map_err(|e| format!("bind {addr} failed: {e}"))?;
            let result = net_bench(&http, &server, &args);
            http.shutdown();
            server.shutdown();
            result?;
        }
        "serve-bench" => {
            let system = open_system(&args, false)?;
            let server = Server::start(
                system,
                ServeConfig {
                    workers: args.workers.max(1),
                    ..ServeConfig::default()
                },
            );
            serve_bench(&server, &args)?;
        }
        "chaos" => {
            let report = covidkg::chaos::run(&covidkg::ChaosConfig {
                seed: args.seed,
                corpus: args.corpus.clamp(8, 60),
                fault_target: args.faults,
                workers: args.workers.max(1),
                clients: args.clients.max(1),
                requests: args.requests.unwrap_or(50).max(1),
                ..covidkg::ChaosConfig::default()
            })?;
            println!("{report}");
            if !report.passed() {
                return Err(format!(
                    "chaos run violated {} invariants",
                    report.failures.len()
                ));
            }
        }
        other => return Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
    Ok(())
}

/// Every collection of the server's system, named, for WAL shipping.
fn replication_sources(server: &Arc<Server>) -> Vec<(String, Arc<Collection>)> {
    server.with_system(|s| {
        let db = s.database();
        db.collection_names()
            .into_iter()
            .filter_map(|name| db.collection(&name).ok().map(|coll| (name, coll)))
            .collect()
    })
}

/// The `replicate` body: follow a primary's replication listener and
/// serve lag-aware reads locally (read-your-writes via `X-Min-Seq`).
fn replicate(args: &Args) -> Result<(), String> {
    let from: SocketAddr = args
        .from
        .as_deref()
        .ok_or("replicate needs --from <addr> (the primary's --repl-listen address)")?
        .parse()
        .map_err(|_| "--from takes an ADDR:PORT".to_string())?;
    let name = args.name.clone().unwrap_or_else(|| "replica-1".into());
    let data_dir = args.data_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("covidkg-replica-{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    println!("replicating from {from} into {data_dir} as {name:?} ...");
    let mut config = ReplicaNodeConfig::new(from, &name, data_dir);
    config.serve = ServeConfig {
        workers: args.workers.max(1),
        ..ServeConfig::default()
    };
    let mut node =
        ReplicaNode::start(config).map_err(|e| format!("replica bootstrap failed: {e}"))?;
    println!(
        "synced: {} collections, publications applied {}, epoch {}",
        node.collections().len(),
        node.applied(),
        node.epoch()
    );

    // With --relay-listen this replica re-ships frames downstream
    // (cascading replication): another `covidkg replicate --from` can
    // point here instead of at the primary, and the fencing epoch
    // propagates through the chain via the shared epoch handle.
    let relay = match &args.relay_listen {
        Some(raw) => {
            let relay_addr: SocketAddr = raw
                .parse()
                .map_err(|_| "--relay-listen takes an ADDR:PORT".to_string())?;
            let relay = node
                .relay(ReplConfig {
                    addr: relay_addr,
                    ..ReplConfig::default()
                })
                .map_err(|e| format!("relay bind {relay_addr} failed: {e}"))?;
            println!("relaying frames downstream on {}", relay.local_addr());
            Some(relay)
        }
        None => None,
    };

    // Route reads through this node's own state so responses carry the
    // replication headers and `/metrics` the replication series. The
    // lag clock is the watermark the primary last reported.
    let state = node.publications_state();
    let clock = Arc::clone(&state);
    let router = Arc::new(ReadRouter::new(
        None,
        vec![ReplicaTarget::tracking(&name, node.server(), &state)],
        Arc::new(move || clock.primary_watermark.load(Ordering::Acquire)),
        u64::MAX,
    ));
    let addr: SocketAddr = args
        .listen
        .as_deref()
        .unwrap_or("127.0.0.1:8081")
        .parse()
        .map_err(|_| "--listen takes an ADDR:PORT".to_string())?;
    let mut http = HttpServer::start_routed(
        node.server(),
        Some(ReadContext::new(router, None).with_epoch(node.epoch_handle())),
        NetConfig {
            addr,
            ..NetConfig::default()
        },
    )
    .map_err(|e| format!("bind {addr} failed: {e}"))?;
    println!("serving replica reads on http://{}", http.local_addr());
    println!("(EOF on stdin — ctrl-d — shuts down gracefully)");
    let mut sink = String::new();
    while std::io::stdin().read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
        sink.clear();
    }
    http.shutdown();
    drop(relay);
    node.shutdown();
    println!("replica drained and stopped");
    Ok(())
}

/// The `repl-smoke` body: an end-to-end loopback exercise of the whole
/// replication stack — bootstrap, live writes, convergence, a routed
/// read-your-writes response served by the replica. Used by CI.
fn repl_smoke(args: &Args) -> Result<(), String> {
    let corpus = args.corpus.clamp(12, 60);
    let scratch = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("covidkg-smoke-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    };
    let system = CovidKg::build(CovidKgConfig {
        corpus_size: corpus,
        seed: args.seed,
        max_training_rows: 300,
        data_dir: Some(scratch("primary")),
        ..CovidKgConfig::default()
    })
    .map_err(|e| format!("primary build failed: {e}"))?;
    let primary = Arc::new(Server::start(system, ServeConfig::default()));
    let sources = replication_sources(&primary);
    let listener = ReplListener::start(sources.clone(), ReplConfig::default())
        .map_err(|e| format!("replication listener: {e}"))?;
    println!("primary up: {} collections on {}", sources.len(), listener.local_addr());

    let mut node = ReplicaNode::start(ReplicaNodeConfig::new(
        listener.local_addr(),
        "smoke-replica",
        scratch("replica"),
    ))
    .map_err(|e| format!("replica bootstrap failed: {e}"))?;
    println!("replica synced: applied {}", node.applied());

    // Live writes on the primary must reach the replica.
    let extra: Vec<_> = covidkg::corpus::CorpusGenerator::with_size(corpus + 8, args.seed)
        .generate()
        .into_iter()
        .skip(corpus)
        .collect();
    primary
        .ingest(&extra)
        .map_err(|e| format!("primary ingest failed: {e}"))?;
    let mark = listener.watermark();
    let pubs = sources
        .iter()
        .find(|(n, _)| n == "publications")
        .map(|(_, c)| Arc::clone(c))
        .ok_or("primary has no publications collection")?;
    let deadline = Instant::now() + Duration::from_secs(20);
    while node.applied() < mark || node.checksum("publications") != Some(pubs.content_checksum()) {
        if Instant::now() >= deadline {
            return Err(format!(
                "replica never converged: applied {} of {mark}",
                node.applied()
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("live writes converged: watermark {mark}, checksums equal");

    // Read-your-writes at the new watermark, served by the replica.
    let state = node.publications_state();
    let clock = Arc::clone(&pubs);
    let router = ReadRouter::new(
        None,
        vec![ReplicaTarget::tracking("smoke-replica", node.server(), &state)],
        Arc::new(move || clock.repl_watermark()),
        u64::MAX,
    );
    let (resp, info) = router
        .search(
            &SearchMode::AllFields("covid".into()),
            0,
            mark,
            Duration::from_secs(5),
        )
        .map_err(|e| format!("routed read failed: {e}"))?;
    let on_primary = primary
        .search(&SearchMode::AllFields("covid".into()), 0)
        .map_err(|e| format!("primary read failed: {e}"))?;
    if resp.page.total != on_primary.page.total {
        return Err(format!(
            "replica read disagreed: {} vs {} results",
            resp.page.total, on_primary.page.total
        ));
    }
    println!(
        "read-your-writes OK: {:?} served {} results at applied {}",
        info.replica, resp.page.total, info.applied
    );
    node.shutdown();
    println!("REPL SMOKE PASSED");
    Ok(())
}

/// The `repl-bench` body: read-goodput scaling at 1, 2 and 4 replicas.
///
/// Each replica serves with 2 workers, an uncacheable result page
/// (TTL 0) and a synthetic 20 ms service-time floor injected per query,
/// so per-replica capacity is sleep-bound (workers/floor = 100 reads/s)
/// rather than CPU-bound — the fleet's aggregate goodput then scales
/// with replica count even on a single-core harness, where raw search
/// CPU (~1.5 ms/query) would otherwise cap the whole fleet near
/// 650 reads/s and flatten the curve. Emits `BENCH_repl.json`.
fn repl_bench(args: &Args) -> Result<(), String> {
    const SERVICE_FLOOR: Duration = Duration::from_millis(20);
    let corpus = args.corpus.clamp(16, 36);
    let clients = args.clients.clamp(4, 16);
    let per_client = args.requests.unwrap_or(50).clamp(10, 200);
    let scratch = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("covidkg-rbench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    };
    let system = CovidKg::build(CovidKgConfig {
        corpus_size: corpus,
        seed: args.seed,
        max_training_rows: 300,
        data_dir: Some(scratch("primary")),
        ..CovidKgConfig::default()
    })
    .map_err(|e| format!("primary build failed: {e}"))?;
    let primary = Arc::new(Server::start(system, ServeConfig::default()));
    let sources = replication_sources(&primary);
    let listener = ReplListener::start(sources.clone(), ReplConfig::default())
        .map_err(|e| format!("replication listener: {e}"))?;
    let pubs = sources
        .iter()
        .find(|(n, _)| n == "publications")
        .map(|(_, c)| Arc::clone(c))
        .ok_or("primary has no publications collection")?;
    println!(
        "repl-bench: {clients} clients x {per_client} reads, {} µs service floor per query",
        SERVICE_FLOOR.as_micros()
    );

    let mut rows = Vec::new();
    let mut last = 0.0_f64;
    let mut monotonic = true;
    for &fleet in &[1usize, 2, 4] {
        let mut nodes = Vec::new();
        for i in 0..fleet {
            let mut config = ReplicaNodeConfig::new(
                listener.local_addr(),
                format!("replica-{i}"),
                scratch(&format!("r{fleet}-{i}")),
            );
            config.serve = ServeConfig {
                workers: 2,
                cache_ttl: Some(Duration::ZERO),
                ..ServeConfig::default()
            };
            let node =
                ReplicaNode::start(config).map_err(|e| format!("replica {i} of {fleet}: {e}"))?;
            node.server().set_injected_faults(Some(covidkg::serve::InjectedFaults {
                panic_every: 0,
                delay_every: 1,
                delay: SERVICE_FLOOR,
            }));
            nodes.push(node);
        }
        let targets = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                ReplicaTarget::tracking(format!("replica-{i}"), n.server(), &n.publications_state())
            })
            .collect();
        let clock = Arc::clone(&pubs);
        let router = Arc::new(ReadRouter::new(
            None,
            targets,
            Arc::new(move || clock.repl_watermark()),
            u64::MAX,
        ));
        let (ok, errs, wall) = routed_loop(&router, clients, per_client, args.seed)?;
        let goodput = if wall.as_secs_f64() > 0.0 {
            ok as f64 / wall.as_secs_f64()
        } else {
            0.0
        };
        println!(
            "  {fleet} replica(s): {ok} ok / {errs} errors in {:.2} s -> {goodput:.0} reads/s",
            wall.as_secs_f64()
        );
        if goodput < last {
            monotonic = false;
        }
        last = goodput;
        rows.push(covidkg::json::obj! {
            "replicas" => fleet,
            "ok" => ok as i64,
            "errors" => errs as i64,
            "wall_secs" => wall.as_secs_f64(),
            "goodput_rps" => goodput,
        });
        for node in &mut nodes {
            node.shutdown();
        }
    }
    if !monotonic {
        eprintln!("warning: goodput did not scale monotonically with replica count");
    }

    let mut report = covidkg::json::obj! {
        "bench" => "repl",
        "clients" => clients,
        "reads_per_client" => per_client,
        "service_floor_us" => SERVICE_FLOOR.as_micros() as i64,
        "monotonic" => monotonic,
        "scaling" => covidkg::json::Value::Array(rows),
    };
    if args.failover {
        let failover = measure_failover(args, &scratch)?;
        report.insert("failover", failover);
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_repl.json");
    std::fs::write(path, report.to_json_pretty() + "\n")
        .map_err(|e| format!("write BENCH_repl.json: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// The `repl-bench --failover` body: stand up a primary + two replicas,
/// kill the primary, run the deterministic election, promote the winner
/// behind `Promoting`/`Fenced` routing states, and time two things —
/// kill → promoted listener accepting, and kill → first successful
/// routed read against the new primary's applied sequence.
fn measure_failover(
    args: &Args,
    scratch: &dyn Fn(&str) -> String,
) -> Result<covidkg::json::Value, String> {
    let system = CovidKg::build(CovidKgConfig {
        corpus_size: args.corpus.clamp(12, 24),
        seed: args.seed,
        max_training_rows: 300,
        data_dir: Some(scratch("fo-primary")),
        ..CovidKgConfig::default()
    })
    .map_err(|e| format!("failover primary build failed: {e}"))?;
    let primary = Arc::new(Server::start(system, ServeConfig::default()));
    let sources = replication_sources(&primary);
    let epoch = Epoch::default();
    epoch.bump(); // generation 1
    let listener = ReplListener::start(
        sources.clone(),
        ReplConfig {
            epoch: epoch.clone(),
            ..ReplConfig::default()
        },
    )
    .map_err(|e| format!("failover replication listener: {e}"))?;
    let pubs = sources
        .iter()
        .find(|(n, _)| n == "publications")
        .map(|(_, c)| Arc::clone(c))
        .ok_or("primary has no publications collection")?;
    let mark = pubs.repl_watermark();

    let mut nodes = Vec::new();
    for i in 0..2usize {
        let node = ReplicaNode::start(ReplicaNodeConfig::new(
            listener.local_addr(),
            format!("fo-replica-{i}"),
            scratch(&format!("fo-r{i}")),
        ))
        .map_err(|e| format!("failover replica {i}: {e}"))?;
        nodes.push(node);
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    while nodes.iter().any(|n| n.applied() < mark) {
        if Instant::now() >= deadline {
            return Err("failover bench: replicas never caught up".into());
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let targets: Vec<ReplicaTarget> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            ReplicaTarget::tracking(format!("fo-replica-{i}"), n.server(), &n.publications_state())
        })
        .collect();
    let healths: Vec<_> = targets.iter().map(|t| Arc::clone(&t.health)).collect();
    let clock = Arc::clone(&pubs);
    let router = Arc::new(ReadRouter::new(
        None,
        targets,
        Arc::new(move || clock.repl_watermark()),
        u64::MAX,
    ));

    // Kill. Both targets leave the read pool while leadership is open.
    let t0 = Instant::now();
    drop(listener);
    for h in &healths {
        h.store(TargetHealth::Promoting as u8, Ordering::Release);
    }

    // Deterministic election over (name, applied): highest applied
    // sequence wins, lowest name breaks ties.
    let slate: Vec<(String, u64)> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (format!("fo-replica-{i}"), n.applied()))
        .collect();
    let winner = elect(&slate).ok_or("failover bench: no electable replica")?;
    let new_epoch = nodes[winner].epoch_handle();
    new_epoch.bump();
    let relay = nodes[winner]
        .relay(ReplConfig::default())
        .map_err(|e| format!("promotion relay failed: {e}"))?;
    let promoted = t0.elapsed();
    // The winner rejoins the pool as the new read head; the loser stays
    // fenced out until it would re-point at the new primary.
    healths[winner].store(TargetHealth::Ready as u8, Ordering::Release);
    for (i, h) in healths.iter().enumerate() {
        if i != winner {
            h.store(TargetHealth::Fenced as u8, Ordering::Release);
        }
    }
    let floor = slate[winner].1;
    let first_read = loop {
        match router.search(
            &SearchMode::AllFields("covid".into()),
            0,
            floor,
            Duration::from_millis(200),
        ) {
            Ok((_, info)) if info.replica == slate[winner].0 => break t0.elapsed(),
            Ok(_) | Err(_) if t0.elapsed() < Duration::from_secs(10) => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok((_, info)) => {
                return Err(format!("failover bench: read served by {:?}", info.replica))
            }
            Err(e) => return Err(format!("failover bench: routed read never recovered: {e}")),
        }
    };
    println!(
        "  failover: promoted {} (epoch {}) in {:.1} ms, first routed read at {:.1} ms",
        slate[winner].0,
        new_epoch.get(),
        promoted.as_secs_f64() * 1e3,
        first_read.as_secs_f64() * 1e3,
    );

    drop(relay);
    for node in &mut nodes {
        node.shutdown();
    }
    Ok(covidkg::json::obj! {
        "winner" => slate[winner].0.clone(),
        "epoch_after" => new_epoch.get() as i64,
        "promoted_ms" => promoted.as_secs_f64() * 1e3,
        "first_routed_read_ms" => first_read.as_secs_f64() * 1e3,
    })
}

/// Closed-loop read clients hammering a [`ReadRouter`] in-process.
fn routed_loop(
    router: &Arc<ReadRouter>,
    clients: usize,
    per_client: usize,
    seed: u64,
) -> Result<(u64, u64, Duration), String> {
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let router = Arc::clone(router);
        let queries = covidkg::corpus::query_workload(16, seed.wrapping_add(c as u64));
        handles.push(std::thread::spawn(move || {
            let mut ok = 0u64;
            let mut errs = 0u64;
            for i in 0..per_client {
                let q = queries[i % queries.len()].clone();
                match router.search(&SearchMode::AllFields(q), 0, 0, Duration::from_secs(5)) {
                    Ok(_) => ok += 1,
                    Err(_) => errs += 1,
                }
            }
            (ok, errs)
        }));
    }
    let mut ok = 0u64;
    let mut errs = 0u64;
    for h in handles {
        let (o, e) = h.join().map_err(|_| "bench client panicked".to_string())?;
        ok += o;
        errs += e;
    }
    Ok((ok, errs, t0.elapsed()))
}

/// The `net-table` body: regenerate the wire-benchmark table *and* the
/// connection-scaling table in `EXPERIMENTS.md` between their marker
/// comments from `BENCH_net.json`, so the prose and the committed
/// artifact cannot drift apart.
fn net_table() -> Result<(), String> {
    let bench_path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_net.json");
    let exp_path = concat!(env!("CARGO_MANIFEST_DIR"), "/EXPERIMENTS.md");
    let raw = std::fs::read_to_string(bench_path)
        .map_err(|e| format!("read {bench_path}: {e} (run `covidkg net-bench` first)"))?;
    let bench = covidkg::json::parse(&raw).map_err(|e| format!("parse BENCH_net.json: {e}"))?;
    let mut doc = std::fs::read_to_string(exp_path).map_err(|e| format!("read {exp_path}: {e}"))?;
    doc = splice_marked(&doc, "net-table", &render_net_table(&bench))?;
    doc = splice_marked(&doc, "conn-table", &render_conn_table(&bench))?;
    std::fs::write(exp_path, doc).map_err(|e| format!("write {exp_path}: {e}"))?;
    println!("updated the wire + connection tables in EXPERIMENTS.md from BENCH_net.json");
    Ok(())
}

/// Replace the text between `<!-- {marker}:begin -->` and
/// `<!-- {marker}:end -->` with `body`.
fn splice_marked(doc: &str, marker: &str, body: &str) -> Result<String, String> {
    let begin = format!("<!-- {marker}:begin -->");
    let end_marker = format!("<!-- {marker}:end -->");
    let start = doc
        .find(&begin)
        .ok_or(format!("EXPERIMENTS.md is missing the {begin} marker"))?
        + begin.len();
    let end = doc
        .find(&end_marker)
        .ok_or(format!("EXPERIMENTS.md is missing the {end_marker} marker"))?;
    if end < start {
        return Err(format!("{marker} markers are out of order in EXPERIMENTS.md"));
    }
    Ok(format!("{}\n{body}{}", &doc[..start], &doc[end..]))
}

/// Render the markdown rows of the wire-benchmark table.
fn render_net_table(bench: &covidkg::json::Value) -> String {
    use covidkg::json::Value;
    let num = |v: &Value, k: &str| v.get(k).and_then(|x| x.as_f64());
    let int = |v: &Value, k: &str| v.get(k).and_then(|x| x.as_i64()).unwrap_or(0);
    let us = |v: Option<f64>| match v {
        None => "—".to_string(),
        Some(us) if us >= 1000.0 => format!("{:.1} ms", us / 1000.0),
        Some(us) => format!("{us:.0} µs"),
    };
    let mut out = String::from(
        "| phase | offered | ok / sent | cache hits | p50 | p99 |\n|---|---|---|---|---|---|\n",
    );
    if let Some(rtt) = num(bench, "rtt_us") {
        out.push_str(&format!(
            "| wire RTT (1 conn, cached query) | — | — | warm | {} | — |\n",
            us(Some(rtt))
        ));
    }
    if let Some(closed) = bench.get("closed") {
        out.push_str(&format!(
            "| closed loop ({} conns, mixed engines) | max | {}/{} | {} | {} | {} |\n",
            int(bench, "clients"),
            int(closed, "ok"),
            int(closed, "sent"),
            int(closed, "cache_hits"),
            us(num(closed, "p50_us")),
            us(num(closed, "p99_us")),
        ));
    }
    if let Some(Value::Array(open)) = bench.get("open") {
        for r in open {
            out.push_str(&format!(
                "| open loop | {:.0} req/s | {}/{} | {} | {} | {} |\n",
                num(r, "offered_rate").unwrap_or(0.0),
                int(r, "ok"),
                int(r, "sent"),
                int(r, "cache_hits"),
                us(num(r, "p50_us")),
                us(num(r, "p99_us")),
            ));
        }
    }
    out
}

/// Render the markdown rows of the connection-scaling table: the
/// reactor holding N idle keep-alive connections under open-loop load,
/// against the thread-per-connection baseline at equal load.
fn render_conn_table(bench: &covidkg::json::Value) -> String {
    use covidkg::json::Value;
    let num = |v: &Value, k: &str| v.get(k).and_then(|x| x.as_f64());
    let int = |v: &Value, k: &str| v.get(k).and_then(|x| x.as_i64()).unwrap_or(0);
    let us = |v: Option<f64>| match v {
        None => "—".to_string(),
        Some(us) if us >= 1000.0 => format!("{:.1} ms", us / 1000.0),
        Some(us) => format!("{us:.0} µs"),
    };
    let mut out = String::from(
        "| model | idle conns held | offered | ok / sent | goodput | p50 | p99 |\n\
         |---|---|---|---|---|---|---|\n",
    );
    let mut row = |model: &str, r: &Value| {
        out.push_str(&format!(
            "| {model} | {} | {:.0} req/s | {}/{} | {:.0} ok/s | {} | {} |\n",
            int(r, "held_connections"),
            num(r, "offered_rate").unwrap_or(0.0),
            int(r, "ok"),
            int(r, "sent"),
            num(r, "goodput_rps").unwrap_or(0.0),
            us(num(r, "p50_us")),
            us(num(r, "p99_us")),
        ));
    };
    if let Some(threaded) = bench.get("threaded") {
        if let Some(r) = threaded.get("open") {
            row("thread-per-conn", r);
        }
        if let Some(r) = threaded.get("held") {
            row("thread-per-conn", r);
        }
    }
    if let Some(Value::Array(held)) = bench.get("connections") {
        for r in held {
            row("reactor", r);
        }
    }
    out
}

/// The `ann-build` body: build (or reopen) the system and report the
/// shape and build cost of its HNSW dense index.
fn ann_build(args: &Args) -> Result<(), String> {
    let system = open_system(args, false)?;
    let ann = system.ann();
    let c = ann.config();
    let s = ann.stats();
    println!(
        "HNSW index: {} vectors x {} dims (M {}, ef_construction {}, ef_search {})",
        ann.len(),
        ann.dims(),
        c.m,
        c.ef_construction,
        c.ef_search
    );
    println!(
        "graph: max level {}, {} tombstones, {} distance evaluations to build",
        ann.max_level(),
        ann.tombstones(),
        s.build_distance_evals
    );
    if args.data_dir.is_some() {
        println!("persisted in the model registry as the \"ann-hnsw\" artifact");
    }
    Ok(())
}

/// The `ann-smoke` body: a small end-to-end exercise of the dense tier —
/// recall sanity against the exact oracle, then `/search/semantic` and
/// `/search/hybrid` over real TCP with a byte-identity check against the
/// in-process ranker. Used by CI.
fn ann_smoke(args: &Args) -> Result<(), String> {
    let corpus = args.corpus.clamp(24, 80);
    let system = CovidKg::build(CovidKgConfig {
        corpus_size: corpus,
        seed: args.seed,
        max_training_rows: 300,
        ..CovidKgConfig::default()
    })
    .map_err(|e| format!("build failed: {e}"))?;

    // Recall sanity: the HNSW graph must agree with brute force on the
    // corpus's own query workload.
    const K: usize = 10;
    let embeddings = system.embeddings();
    let mut recall_sum = 0.0;
    let mut counted = 0usize;
    for q in covidkg::corpus::query_workload(12, args.seed) {
        let qvec = embeddings.embed_phrase(&covidkg::text::tokenize_lower(&q));
        if qvec.iter().all(|x| *x == 0.0) {
            continue;
        }
        let (exact, _) = system.ann().exact_search(&qvec, K);
        if exact.is_empty() {
            continue;
        }
        let (approx, _) = system.ann().search(&qvec, K);
        let wanted: HashSet<&str> = exact.iter().map(|(id, _)| id.as_str()).collect();
        let hits = approx.iter().filter(|(id, _)| wanted.contains(id.as_str())).count();
        recall_sum += hits as f64 / exact.len() as f64;
        counted += 1;
    }
    if counted == 0 {
        return Err("every smoke query embedded to zero — corpus/model mismatch".into());
    }
    let recall = recall_sum / counted as f64;
    println!("recall@{K} vs exact over {counted} queries: {recall:.3}");
    if recall < 0.95 {
        return Err(format!("recall {recall:.3} below the 0.95 floor"));
    }

    // Wire byte-identity: the HTTP body must equal the in-process page,
    // byte for byte, for both dense engines.
    let server = Arc::new(Server::start(system, ServeConfig::default()));
    let mut http = HttpServer::start(
        Arc::clone(&server),
        NetConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            ..NetConfig::default()
        },
    )
    .map_err(|e| format!("bind failed: {e}"))?;
    let mut client = covidkg::HttpClient::connect(http.local_addr(), Duration::from_secs(10))
        .map_err(|e| format!("connect: {e}"))?;
    let query = "vaccine side effects";
    for (engine, mode) in [
        ("semantic", DenseMode::Semantic(query.into())),
        ("hybrid", DenseMode::Hybrid(query.into())),
    ] {
        let resp = client
            .get(&format!("/search/{engine}?q=vaccine+side+effects&page=0"))
            .map_err(|e| format!("GET /search/{engine}: {e}"))?;
        if resp.status != 200 {
            return Err(format!("/search/{engine} returned {}", resp.status));
        }
        let local = server.with_system(|s| s.search_dense(&mode, 0).to_json().to_json());
        if resp.body != local.as_bytes() {
            return Err(format!(
                "/search/{engine} wire body diverged from the in-process page \
                 ({} vs {} bytes)",
                resp.body.len(),
                local.len()
            ));
        }
        println!("{engine}: wire response byte-identical to in-process ({} bytes)", local.len());
    }
    http.shutdown();
    server.shutdown();
    println!("ANN SMOKE PASSED");
    Ok(())
}

/// The `ann-bench` body: recall@10 and per-query work of the HNSW index
/// against exact brute-force search at three corpus sizes, timed on real
/// embeddings trained per size. Emits `BENCH_ann.json`.
fn ann_bench(args: &Args) -> Result<(), String> {
    use covidkg::ml::{Word2Vec, Word2VecConfig};
    const K: usize = 10;
    const QUERY_COUNT: usize = 48;
    let sizes = [240usize, 960, 2400];
    let config = HnswConfig::default();
    println!(
        "ann-bench: recall@{K} over {QUERY_COUNT} queries, M {}, ef_construction {}, ef_search {}",
        config.m, config.ef_construction, config.ef_search
    );
    let mut rows = Vec::new();
    let mut final_recall = 0.0;
    let mut final_ratio = 0.0;
    for &n in &sizes {
        let pubs = covidkg::corpus::CorpusGenerator::with_size(n, args.seed).generate();
        let sentences: Vec<Vec<String>> = pubs
            .iter()
            .map(|p| {
                let mut t = covidkg::text::tokenize_lower(&p.title);
                t.extend(covidkg::text::tokenize_lower(&p.abstract_text));
                t
            })
            .collect();
        let model = Word2Vec::train(
            &sentences,
            &Word2VecConfig {
                dims: 24,
                epochs: 2,
                seed: args.seed,
                ..Word2VecConfig::default()
            },
        );
        let docs: Vec<(String, Vec<f32>)> = pubs
            .iter()
            .zip(&sentences)
            .map(|(p, tokens)| (p.id.clone(), model.embed_phrase(tokens)))
            .collect();
        let t0 = Instant::now();
        let index = HnswIndex::build(
            model.dims(),
            config,
            docs.iter().map(|(id, v)| (id.as_str(), v.as_slice())),
        );
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut recall_sum = 0.0;
        let mut counted = 0u64;
        let mut hnsw_evals = 0u64;
        let mut brute_evals = 0u64;
        let mut latencies = Vec::new();
        for q in covidkg::corpus::query_workload(QUERY_COUNT, args.seed ^ 0x5eed) {
            let qvec = model.embed_phrase(&covidkg::text::tokenize_lower(&q));
            if qvec.iter().all(|x| *x == 0.0) {
                continue;
            }
            let (exact, brute) = index.exact_search(&qvec, K);
            if exact.is_empty() {
                continue;
            }
            let t = Instant::now();
            let (approx, stats) = index.search(&qvec, K);
            latencies.push(t.elapsed());
            let wanted: HashSet<&str> = exact.iter().map(|(id, _)| id.as_str()).collect();
            let hits = approx.iter().filter(|(id, _)| wanted.contains(id.as_str())).count();
            recall_sum += hits as f64 / exact.len() as f64;
            counted += 1;
            hnsw_evals += stats.distance_evals;
            brute_evals += brute;
        }
        if counted == 0 {
            return Err(format!("no usable queries at corpus size {n}"));
        }
        let recall = recall_sum / counted as f64;
        let evals_per_query = hnsw_evals as f64 / counted as f64;
        let brute_per_query = brute_evals as f64 / counted as f64;
        let ratio = brute_per_query / evals_per_query.max(1.0);
        latencies.sort();
        let p50 = latencies[latencies.len() / 2];
        let p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
        println!(
            "  {n} docs: build {build_ms:.0} ms, recall@{K} {recall:.3}, \
             {evals_per_query:.0} vs {brute_per_query:.0} evals/query ({ratio:.1}x fewer), \
             p50 {:.0} µs, p99 {:.0} µs",
            p50.as_secs_f64() * 1e6,
            p99.as_secs_f64() * 1e6,
        );
        final_recall = recall;
        final_ratio = ratio;
        rows.push(covidkg::json::obj! {
            "docs" => n,
            "dims" => model.dims(),
            "build_ms" => build_ms,
            "queries" => counted as i64,
            "recall_at_10" => recall,
            "hnsw_evals_per_query" => evals_per_query,
            "brute_evals_per_query" => brute_per_query,
            "eval_ratio" => ratio,
            "p50_us" => p50.as_secs_f64() * 1e6,
            "p99_us" => p99.as_secs_f64() * 1e6,
        });
    }
    if final_recall < 0.95 || final_ratio < 5.0 {
        eprintln!(
            "warning: largest corpus missed the targets (recall {final_recall:.3} \
             >= 0.95, eval ratio {final_ratio:.1} >= 5.0)"
        );
    }
    let report = covidkg::json::obj! {
        "bench" => "ann",
        "k" => K,
        "seed" => args.seed as i64,
        "config" => covidkg::json::obj! {
            "m" => config.m,
            "ef_construction" => config.ef_construction,
            "ef_search" => config.ef_search,
        },
        "sizes" => covidkg::json::Value::Array(rows),
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_ann.json");
    std::fs::write(path, report.to_json_pretty() + "\n")
        .map_err(|e| format!("write BENCH_ann.json: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// The `ann-table` body: regenerate the dense-tier table in
/// `EXPERIMENTS.md` between its marker comments from `BENCH_ann.json`.
fn ann_table() -> Result<(), String> {
    let bench_path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_ann.json");
    let exp_path = concat!(env!("CARGO_MANIFEST_DIR"), "/EXPERIMENTS.md");
    let raw = std::fs::read_to_string(bench_path)
        .map_err(|e| format!("read {bench_path}: {e} (run `covidkg ann-bench` first)"))?;
    let bench = covidkg::json::parse(&raw).map_err(|e| format!("parse BENCH_ann.json: {e}"))?;
    let table = render_ann_table(&bench);
    let doc = std::fs::read_to_string(exp_path).map_err(|e| format!("read {exp_path}: {e}"))?;
    const BEGIN: &str = "<!-- ann-table:begin -->";
    const END: &str = "<!-- ann-table:end -->";
    let start = doc
        .find(BEGIN)
        .ok_or(format!("EXPERIMENTS.md is missing the {BEGIN} marker"))?
        + BEGIN.len();
    let end = doc
        .find(END)
        .ok_or(format!("EXPERIMENTS.md is missing the {END} marker"))?;
    if end < start {
        return Err("ann-table markers are out of order in EXPERIMENTS.md".into());
    }
    let updated = format!("{}\n{table}{}", &doc[..start], &doc[end..]);
    std::fs::write(exp_path, updated).map_err(|e| format!("write {exp_path}: {e}"))?;
    println!("updated the ANN table in EXPERIMENTS.md from BENCH_ann.json");
    Ok(())
}

/// Render the markdown rows of the dense-tier benchmark table.
fn render_ann_table(bench: &covidkg::json::Value) -> String {
    use covidkg::json::Value;
    let num = |v: &Value, k: &str| v.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
    let int = |v: &Value, k: &str| v.get(k).and_then(|x| x.as_i64()).unwrap_or(0);
    let mut out = String::from(
        "| corpus | build | recall@10 | evals/query (HNSW / brute) | work saved | p50 | p99 |\n\
         |---|---|---|---|---|---|---|\n",
    );
    if let Some(Value::Array(sizes)) = bench.get("sizes") {
        for r in sizes {
            out.push_str(&format!(
                "| {} docs | {:.0} ms | {:.3} | {:.0} / {:.0} | {:.1}x | {:.0} µs | {:.0} µs |\n",
                int(r, "docs"),
                num(r, "build_ms"),
                num(r, "recall_at_10"),
                num(r, "hnsw_evals_per_query"),
                num(r, "brute_evals_per_query"),
                num(r, "eval_ratio"),
                num(r, "p50_us"),
                num(r, "p99_us"),
            ));
        }
    }
    out
}

/// Re-derive one stored publication document's side-effect observations
/// — the same caption-gated table parse the system uses, reimplemented
/// here so the bench can price a *full* re-extraction honestly.
fn bench_doc_observations(doc: &covidkg::json::Value, paper_id: &str) -> Vec<covidkg::kg::Observation> {
    use covidkg::core::system::parse_side_effect_table;
    let mut observations = Vec::new();
    if let Some(tables) = doc.path("tables").and_then(covidkg::json::Value::as_array) {
        for t in tables {
            if let Some(html) = t.path("html").and_then(covidkg::json::Value::as_str) {
                for table in covidkg::tables::parse_tables(html).unwrap_or_default() {
                    observations.extend(parse_side_effect_table(
                        &table.caption,
                        &table.rows,
                        paper_id,
                    ));
                }
            }
        }
    }
    observations
}

/// The query-plan workload shared by `kg-bench`: a hierarchy walk, a
/// kind-filtered hop, a co-occurrence expansion and a deep mixed walk.
fn kg_bench_plans(fanout: usize, k: usize) -> Vec<covidkg::core::QueryPlan> {
    [
        ("kind:root", "child,child"),
        ("kind:category", "child:entity"),
        ("kind:entity", "co"),
        ("node:0", "child,any,any"),
    ]
    .iter()
    .map(|(start, steps)| {
        covidkg::core::QueryPlan::parse(start, steps, fanout, k).expect("bench plan parses")
    })
    .collect()
}

/// The `kg-query` body: parse the plan grammar from the positionals and
/// print the ranked paths with their provenance support.
fn kg_query_cmd(args: &Args) -> Result<(), String> {
    let start = args
        .positional
        .first()
        .ok_or("kg-query needs a start set, e.g. `kg-query term:fever co`\n\n".to_string() + USAGE)?;
    let steps = args.positional.get(1).map(String::as_str).unwrap_or("");
    let plan = covidkg::core::QueryPlan::parse(start, steps, args.fanout, args.k)?;
    let system = open_system(args, false)?;
    let result = system.kg_query(&plan);
    if result.paths.is_empty() {
        println!("no paths match (visited {} nodes, {} hops)", result.visited, result.hops);
        return Ok(());
    }
    for (i, p) in result.paths.iter().enumerate() {
        println!(
            "{:>2}. [{:.2}] {}  ({} supporting paper{})",
            i + 1,
            p.score,
            p.labels.join(" -> "),
            p.support,
            if p.support == 1 { "" } else { "s" },
        );
    }
    println!("({} paths, visited {} nodes, {} hops)", result.paths.len(), result.visited, result.hops);
    Ok(())
}

/// The `kg-smoke` body: the third traffic class end to end — ranked
/// query, profile and node bodies over real TCP, byte-identical to the
/// in-process serializations, with the cache-header contract checked.
/// Used by CI.
fn kg_smoke(args: &Args) -> Result<(), String> {
    let corpus = args.corpus.clamp(48, 120);
    let system = CovidKg::build(CovidKgConfig {
        corpus_size: corpus,
        seed: args.seed,
        max_training_rows: 300,
        ..CovidKgConfig::default()
    })
    .map_err(|e| format!("build failed: {e}"))?;
    let server = Arc::new(Server::start(system, ServeConfig::default()));
    let mut http = HttpServer::start(
        Arc::clone(&server),
        NetConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            ..NetConfig::default()
        },
    )
    .map_err(|e| format!("bind failed: {e}"))?;
    let mut client = covidkg::HttpClient::connect(http.local_addr(), Duration::from_secs(10))
        .map_err(|e| format!("connect: {e}"))?;

    // 1. Ranked query: wire body == in-process result, twice (miss then
    //    cache hit), same bytes both times.
    let plan = covidkg::core::QueryPlan::parse("kind:category", "child", 16, 10)?;
    let local = server.with_system(|s| s.kg_query(&plan).to_json().to_json());
    let url = "/kg/query?start=kind:category&steps=child&fanout=16&k=10";
    let mut bodies = Vec::new();
    for (pass, want_cache) in [("cold", "miss"), ("warm", "hit")] {
        let resp = client.get(url).map_err(|e| format!("GET {url}: {e}"))?;
        if resp.status != 200 {
            return Err(format!("{url} returned {}", resp.status));
        }
        if resp.header("X-Cache") != Some(want_cache) {
            return Err(format!(
                "{pass} /kg/query X-Cache = {:?}, wanted {want_cache:?}",
                resp.header("X-Cache")
            ));
        }
        bodies.push(resp.body);
    }
    if bodies[0] != local.as_bytes() || bodies[1] != local.as_bytes() {
        return Err("kg query wire body diverged from the in-process result".into());
    }
    println!("/kg/query: wire response byte-identical to in-process ({} bytes), miss then hit", local.len());

    // 2. Profile: epoch-stamped document, byte-identical on the wire.
    let vaccine = server
        .with_system(|s| s.profiles().first().map(|p| p.vaccine.clone()))
        .ok_or("corpus produced no meta-profiles — cannot smoke /kg/profile")?;
    let local = server
        .with_system(|s| s.kg_profile(&vaccine).map(|d| d.to_json()))
        .expect("profile exists");
    let url = format!("/kg/profile/{vaccine}");
    let resp = client.get(&url).map_err(|e| format!("GET {url}: {e}"))?;
    if resp.status != 200 {
        return Err(format!("{url} returned {}", resp.status));
    }
    if resp.body != local.as_bytes() {
        return Err(format!("{url} wire body diverged from the in-process document"));
    }
    println!("{url}: wire response byte-identical to in-process ({} bytes)", local.len());

    // 3. Node: now cache-fronted like everything else (miss → hit).
    let local = server
        .with_system(|s| s.kg_node(0).map(|d| d.to_json()))
        .expect("node 0 exists");
    for want_cache in ["miss", "hit"] {
        let resp = client.get("/kg/node/0").map_err(|e| format!("GET /kg/node/0: {e}"))?;
        if resp.status != 200 {
            return Err(format!("/kg/node/0 returned {}", resp.status));
        }
        if resp.header("X-Cache") != Some(want_cache) {
            return Err(format!(
                "/kg/node/0 X-Cache = {:?}, wanted {want_cache:?}",
                resp.header("X-Cache")
            ));
        }
        if resp.body != local.as_bytes() {
            return Err("kg node wire body diverged from the in-process document".into());
        }
    }
    println!("/kg/node/0: wire response byte-identical to in-process ({} bytes), miss then hit", local.len());

    http.shutdown();
    server.shutdown();
    println!("KG SMOKE PASSED");
    Ok(())
}

/// The `kg-bench` body: ranked-path query latency plus the cost of
/// keeping meta-profiles fresh — a one-paper incremental refresh against
/// a full re-extract-everything rebuild — at three corpus sizes. Emits
/// `BENCH_kg.json`.
fn kg_bench(args: &Args) -> Result<(), String> {
    use covidkg::kg::ProfileStore;
    const QUERY_ITERS: usize = 40;
    const FULL_REPEATS: usize = 5;
    const INCR_REPEATS: usize = 50;
    let sizes = [120usize, 480, 1200];
    println!(
        "kg-bench: {} plans x {QUERY_ITERS} iters, fanout {}, k {}; \
         incremental refresh vs full re-extraction rebuild",
        kg_bench_plans(args.fanout, args.k).len(),
        args.fanout,
        args.k
    );
    let mut rows = Vec::new();
    let mut final_speedup = 0.0;
    for &n in &sizes {
        let system = CovidKg::build(CovidKgConfig {
            corpus_size: n,
            seed: args.seed,
            max_training_rows: 300,
            ..CovidKgConfig::default()
        })
        .map_err(|e| format!("build at {n} docs failed: {e}"))?;

        // Phase 1 — ranked-path query latency over the mixed workload.
        let plans = kg_bench_plans(args.fanout, args.k);
        let mut latencies = Vec::new();
        let mut hops = 0u64;
        let mut visited = 0u64;
        for plan in &plans {
            let r = system.kg_query(plan); // warm-up + work counters
            hops += r.hops;
            visited += r.visited;
            for _ in 0..QUERY_ITERS {
                let t = Instant::now();
                let r = system.kg_query(plan);
                latencies.push(t.elapsed());
                std::hint::black_box(r);
            }
        }
        latencies.sort();
        let qp50 = latencies[latencies.len() / 2];
        let qp99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];

        // Phase 2 — materialization. Full = re-extract every stored
        // paper's tables and rebuild all profiles (what every mutation
        // cost before the mutation-log store). Incremental = refresh
        // one touched paper (what ingest costs now).
        let publications = system.publications();
        let epoch = publications.mutation_epoch();
        let extract_all = || -> Vec<(String, Vec<covidkg::kg::Observation>)> {
            publications
                .scan_all()
                .iter()
                .map(|doc| {
                    let id = doc
                        .get("_id")
                        .and_then(covidkg::json::Value::as_str)
                        .unwrap_or_default()
                        .to_string();
                    let obs = bench_doc_observations(doc, &id);
                    (id, obs)
                })
                .collect()
        };
        let mut full_times = Vec::new();
        for _ in 0..FULL_REPEATS {
            let t = Instant::now();
            let mut store = ProfileStore::new();
            store.rebuild_all(extract_all(), epoch);
            full_times.push(t.elapsed());
            std::hint::black_box(store.stats());
        }
        full_times.sort();
        let full = full_times[full_times.len() / 2];

        let papers = extract_all();
        let target = papers
            .iter()
            .max_by_key(|(_, obs)| obs.len())
            .map(|(id, _)| id.clone())
            .ok_or("no stored papers to refresh")?;
        let mut store = ProfileStore::new();
        store.rebuild_all(papers, epoch);
        let mut incr_times = Vec::new();
        for i in 0..INCR_REPEATS {
            let touched = [target.clone()];
            let t = Instant::now();
            store.refresh(epoch + 1 + i as u64, &touched, |id| {
                publications
                    .get(id)
                    .map(|doc| bench_doc_observations(&doc, id))
                    .unwrap_or_default()
            });
            incr_times.push(t.elapsed());
        }
        incr_times.sort();
        let incr = incr_times[incr_times.len() / 2];
        let speedup = full.as_secs_f64() / incr.as_secs_f64().max(1e-9);
        final_speedup = speedup;

        let stats = system.profile_store().stats();
        println!(
            "  {n} docs: {} kg nodes, {} profiles from {} papers; query p50 {:.0} µs, \
             p99 {:.0} µs; full rebuild {:.2} ms vs incremental {:.0} µs ({speedup:.1}x)",
            system.kg().len(),
            stats.profiles,
            stats.papers,
            qp50.as_secs_f64() * 1e6,
            qp99.as_secs_f64() * 1e6,
            full.as_secs_f64() * 1e3,
            incr.as_secs_f64() * 1e6,
        );
        rows.push(covidkg::json::obj! {
            "docs" => n,
            "kg_nodes" => system.kg().len(),
            "profiles" => stats.profiles as i64,
            "profile_papers" => stats.papers as i64,
            "observations" => stats.observations as i64,
            "queries" => latencies.len(),
            "hops" => hops as i64,
            "visited" => visited as i64,
            "query_p50_us" => qp50.as_secs_f64() * 1e6,
            "query_p99_us" => qp99.as_secs_f64() * 1e6,
            "full_rebuild_ms" => full.as_secs_f64() * 1e3,
            "incremental_refresh_us" => incr.as_secs_f64() * 1e6,
            "speedup" => speedup,
        });
    }
    if final_speedup < 5.0 {
        eprintln!(
            "warning: largest corpus missed the target (incremental speedup \
             {final_speedup:.1}x >= 5.0x)"
        );
    }
    let report = covidkg::json::obj! {
        "bench" => "kg",
        "seed" => args.seed as i64,
        "fanout" => args.fanout,
        "k" => args.k,
        "sizes" => covidkg::json::Value::Array(rows),
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_kg.json");
    std::fs::write(path, report.to_json_pretty() + "\n")
        .map_err(|e| format!("write BENCH_kg.json: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// The `kg-table` body: regenerate the KG query/materialization table in
/// `EXPERIMENTS.md` between its marker comments from `BENCH_kg.json`.
fn kg_table() -> Result<(), String> {
    let bench_path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_kg.json");
    let exp_path = concat!(env!("CARGO_MANIFEST_DIR"), "/EXPERIMENTS.md");
    let raw = std::fs::read_to_string(bench_path)
        .map_err(|e| format!("read {bench_path}: {e} (run `covidkg kg-bench` first)"))?;
    let bench = covidkg::json::parse(&raw).map_err(|e| format!("parse BENCH_kg.json: {e}"))?;
    let doc = std::fs::read_to_string(exp_path).map_err(|e| format!("read {exp_path}: {e}"))?;
    let updated = splice_marked(&doc, "kg-table", &render_kg_table(&bench))?;
    std::fs::write(exp_path, updated).map_err(|e| format!("write {exp_path}: {e}"))?;
    println!("updated the KG table in EXPERIMENTS.md from BENCH_kg.json");
    Ok(())
}

/// Render the markdown rows of the KG benchmark table.
fn render_kg_table(bench: &covidkg::json::Value) -> String {
    use covidkg::json::Value;
    let num = |v: &Value, k: &str| v.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
    let int = |v: &Value, k: &str| v.get(k).and_then(|x| x.as_i64()).unwrap_or(0);
    let mut out = String::from(
        "| corpus | kg nodes | profiles | query p50 | query p99 | full rebuild | \
         incremental | speedup |\n|---|---|---|---|---|---|---|---|\n",
    );
    if let Some(Value::Array(sizes)) = bench.get("sizes") {
        for r in sizes {
            out.push_str(&format!(
                "| {} docs | {} | {} | {:.0} µs | {:.0} µs | {:.2} ms | {:.0} µs | {:.1}x |\n",
                int(r, "docs"),
                int(r, "kg_nodes"),
                int(r, "profiles"),
                num(r, "query_p50_us"),
                num(r, "query_p99_us"),
                num(r, "full_rebuild_ms"),
                num(r, "incremental_refresh_us"),
                num(r, "speedup"),
            ));
        }
    }
    out
}

/// Percent-encode a path segment so venues with spaces or punctuation
/// survive the request line.
fn encode_path_segment(s: &str) -> String {
    let mut out = String::new();
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// The `trust-smoke` body: the fourth traffic class end to end — node
/// trust, source credibility and the trust-weighted bias report over
/// real TCP, byte-identical to the in-process serializations with the
/// miss→hit cache-header contract checked on every route, plus the
/// `trust` re-rank knob (off ⇒ byte-identical to the default ranking).
/// Used by CI.
fn trust_smoke(args: &Args) -> Result<(), String> {
    let corpus = args.corpus.clamp(48, 120);
    let system = CovidKg::build(CovidKgConfig {
        corpus_size: corpus,
        seed: args.seed,
        max_training_rows: 300,
        ..CovidKgConfig::default()
    })
    .map_err(|e| format!("build failed: {e}"))?;
    let server = Arc::new(Server::start(system, ServeConfig::default()));
    let mut http = HttpServer::start(
        Arc::clone(&server),
        NetConfig {
            addr: "127.0.0.1:0".parse().unwrap(),
            ..NetConfig::default()
        },
    )
    .map_err(|e| format!("bind failed: {e}"))?;
    let mut client = covidkg::HttpClient::connect(http.local_addr(), Duration::from_secs(10))
        .map_err(|e| format!("connect: {e}"))?;

    // 1. All three trust routes: wire body == in-process serialization,
    //    twice each (miss then cache hit), same bytes both times.
    let venue = server
        .with_system(|s| s.trust_store().venues().next().map(str::to_string))
        .ok_or("corpus produced no source venues — cannot smoke /trust/source")?;
    let routes = [
        (
            "/trust/node/0".to_string(),
            server
                .with_system(|s| s.trust_node(0).map(|d| d.to_json()))
                .ok_or("node 0 carries no trust document")?,
        ),
        (
            format!("/trust/source/{}", encode_path_segment(&venue)),
            server
                .with_system(|s| s.trust_source(&venue).map(|d| d.to_json()))
                .ok_or_else(|| format!("venue {venue:?} has no credibility document"))?,
        ),
        (
            "/bias/report".to_string(),
            server.with_system(|s| s.bias_document().to_json()),
        ),
    ];
    for (url, local) in &routes {
        for want_cache in ["miss", "hit"] {
            let resp = client.get(url).map_err(|e| format!("GET {url}: {e}"))?;
            if resp.status != 200 {
                return Err(format!("{url} returned {}", resp.status));
            }
            if resp.header("X-Cache") != Some(want_cache) {
                return Err(format!(
                    "{url} X-Cache = {:?}, wanted {want_cache:?}",
                    resp.header("X-Cache")
                ));
            }
            if resp.body != local.as_bytes() {
                return Err(format!("{url} wire body diverged from the in-process document"));
            }
        }
        println!(
            "{url}: wire response byte-identical to in-process ({} bytes), miss then hit",
            local.len()
        );
    }

    // 2. The `trust` knob defaults off: trust=0 must be byte-identical
    //    to omitting the parameter on both /search and /kg/query.
    for (plain, knobbed) in [
        (
            "/search/all-fields?q=vaccine".to_string(),
            "/search/all-fields?q=vaccine&trust=0".to_string(),
        ),
        (
            "/kg/query?start=kind:category&steps=child&fanout=16&k=10".to_string(),
            "/kg/query?start=kind:category&steps=child&fanout=16&k=10&trust=0".to_string(),
        ),
    ] {
        let a = client.get(&plain).map_err(|e| format!("GET {plain}: {e}"))?;
        let b = client.get(&knobbed).map_err(|e| format!("GET {knobbed}: {e}"))?;
        if a.status != 200 || b.status != 200 {
            return Err(format!("{plain} / {knobbed}: {} / {}", a.status, b.status));
        }
        if a.body != b.body {
            return Err(format!("trust=0 changed the {plain} body"));
        }
        println!("{knobbed}: byte-identical to the default ranking");
    }

    // 3. trust=1 engages the re-rank and says so in a header.
    for url in [
        "/search/all-fields?q=vaccine&trust=1",
        "/kg/query?start=kind:category&steps=child&fanout=16&k=10&trust=1",
    ] {
        let resp = client.get(url).map_err(|e| format!("GET {url}: {e}"))?;
        if resp.status != 200 {
            return Err(format!("{url} returned {}", resp.status));
        }
        if resp.header("X-Trust") != Some("re-ranked") {
            return Err(format!(
                "{url} X-Trust = {:?}, wanted \"re-ranked\"",
                resp.header("X-Trust")
            ));
        }
        println!("{url}: trust re-rank engaged (X-Trust: re-ranked)");
    }

    http.shutdown();
    server.shutdown();
    println!("TRUST SMOKE PASSED");
    Ok(())
}

/// The `trust-bench` body: node-trust lookup latency plus the cost of
/// keeping trust scores fresh — a one-paper incremental refresh against
/// a full re-extract-and-re-propagate rebuild — at three corpus sizes.
/// Emits `BENCH_trust.json`.
fn trust_bench(args: &Args) -> Result<(), String> {
    use covidkg::core::{doc_paper_facts, scan_paper_facts};
    use covidkg::trust::TrustStore;
    const LOOKUP_ITERS: usize = 200;
    const FULL_REPEATS: usize = 5;
    const INCR_REPEATS: usize = 50;
    let sizes = [120usize, 480, 1200];
    println!(
        "trust-bench: {LOOKUP_ITERS} node lookups; one-paper incremental refresh \
         vs full re-extraction + re-propagation rebuild"
    );
    let mut rows = Vec::new();
    let mut final_speedup = 0.0;
    for &n in &sizes {
        let system = CovidKg::build(CovidKgConfig {
            corpus_size: n,
            seed: args.seed,
            max_training_rows: 300,
            ..CovidKgConfig::default()
        })
        .map_err(|e| format!("build at {n} docs failed: {e}"))?;
        let publications = system.publications();
        let kg = system.kg();
        let epoch = publications.mutation_epoch();

        // Phase 1 — node-trust lookup latency across the graph.
        let stride = (kg.len() / 16).max(1);
        let ids: Vec<usize> = (0..kg.len()).step_by(stride).collect();
        let mut latencies = Vec::new();
        for i in 0..LOOKUP_ITERS {
            let id = ids[i % ids.len()];
            let t = Instant::now();
            let doc = system.trust_node(id);
            latencies.push(t.elapsed());
            std::hint::black_box(doc);
        }
        latencies.sort();
        let lp50 = latencies[latencies.len() / 2];
        let lp99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];

        // Phase 2 — maintenance. Full = re-extract every stored paper's
        // trust facts and re-propagate from scratch (what every ingest
        // would cost without the mutation-log store). Incremental =
        // refresh one touched paper (what ingest costs now).
        let mut full_times = Vec::new();
        for _ in 0..FULL_REPEATS {
            let t = Instant::now();
            let mut store = TrustStore::new();
            store.rebuild_all(scan_paper_facts(publications), kg, epoch);
            full_times.push(t.elapsed());
            std::hint::black_box(store.stats());
        }
        full_times.sort();
        let full = full_times[full_times.len() / 2];

        let facts = scan_paper_facts(publications);
        let target = facts
            .iter()
            .max_by_key(|f| f.claims.len())
            .map(|f| f.paper_id.clone())
            .ok_or("no stored papers to refresh")?;
        let mut store = TrustStore::new();
        store.rebuild_all(facts, kg, epoch);
        let mut incr_times = Vec::new();
        for i in 0..INCR_REPEATS {
            let touched = [target.clone()];
            let t = Instant::now();
            store.refresh(epoch + 1 + i as u64, &touched, kg, |id| {
                publications.get(id).map(|doc| doc_paper_facts(&doc, id))
            });
            incr_times.push(t.elapsed());
        }
        incr_times.sort();
        let incr = incr_times[incr_times.len() / 2];
        let speedup = full.as_secs_f64() / incr.as_secs_f64().max(1e-9);
        final_speedup = speedup;

        let stats = system.trust_store().stats();
        println!(
            "  {n} docs: {} trust nodes from {} papers, {} venues; lookup p50 {:.0} µs, \
             p99 {:.0} µs; full rebuild {:.2} ms vs incremental {:.0} µs ({speedup:.1}x)",
            stats.nodes,
            stats.papers,
            stats.venues,
            lp50.as_secs_f64() * 1e6,
            lp99.as_secs_f64() * 1e6,
            full.as_secs_f64() * 1e3,
            incr.as_secs_f64() * 1e6,
        );
        rows.push(covidkg::json::obj! {
            "docs" => n,
            "trust_nodes" => stats.nodes as i64,
            "papers" => stats.papers as i64,
            "venues" => stats.venues as i64,
            "claims" => stats.claims as i64,
            "lookup_p50_us" => lp50.as_secs_f64() * 1e6,
            "lookup_p99_us" => lp99.as_secs_f64() * 1e6,
            "full_rebuild_ms" => full.as_secs_f64() * 1e3,
            "incremental_refresh_us" => incr.as_secs_f64() * 1e6,
            "speedup" => speedup,
        });
    }
    if final_speedup < 5.0 {
        eprintln!(
            "warning: largest corpus missed the target (incremental speedup \
             {final_speedup:.1}x >= 5.0x)"
        );
    }
    let report = covidkg::json::obj! {
        "bench" => "trust",
        "seed" => args.seed as i64,
        "sizes" => covidkg::json::Value::Array(rows),
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_trust.json");
    std::fs::write(path, report.to_json_pretty() + "\n")
        .map_err(|e| format!("write BENCH_trust.json: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// The `trust-table` body: regenerate the trust maintenance table in
/// `EXPERIMENTS.md` between its marker comments from `BENCH_trust.json`.
fn trust_table() -> Result<(), String> {
    let bench_path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_trust.json");
    let exp_path = concat!(env!("CARGO_MANIFEST_DIR"), "/EXPERIMENTS.md");
    let raw = std::fs::read_to_string(bench_path)
        .map_err(|e| format!("read {bench_path}: {e} (run `covidkg trust-bench` first)"))?;
    let bench = covidkg::json::parse(&raw).map_err(|e| format!("parse BENCH_trust.json: {e}"))?;
    let doc = std::fs::read_to_string(exp_path).map_err(|e| format!("read {exp_path}: {e}"))?;
    let updated = splice_marked(&doc, "trust-table", &render_trust_table(&bench))?;
    std::fs::write(exp_path, updated).map_err(|e| format!("write {exp_path}: {e}"))?;
    println!("updated the trust table in EXPERIMENTS.md from BENCH_trust.json");
    Ok(())
}

/// Render the markdown rows of the trust benchmark table.
fn render_trust_table(bench: &covidkg::json::Value) -> String {
    use covidkg::json::Value;
    let num = |v: &Value, k: &str| v.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
    let int = |v: &Value, k: &str| v.get(k).and_then(|x| x.as_i64()).unwrap_or(0);
    let mut out = String::from(
        "| corpus | trust nodes | venues | lookup p50 | lookup p99 | full rebuild | \
         incremental | speedup |\n|---|---|---|---|---|---|---|---|\n",
    );
    if let Some(Value::Array(sizes)) = bench.get("sizes") {
        for r in sizes {
            out.push_str(&format!(
                "| {} docs | {} | {} | {:.0} µs | {:.0} µs | {:.2} ms | {:.0} µs | {:.1}x |\n",
                int(r, "docs"),
                int(r, "trust_nodes"),
                int(r, "venues"),
                num(r, "lookup_p50_us"),
                num(r, "lookup_p99_us"),
                num(r, "full_rebuild_ms"),
                num(r, "incremental_refresh_us"),
                num(r, "speedup"),
            ));
        }
    }
    out
}

/// The `serve-bench` body: a sequential cold-vs-warm cache probe, then a
/// closed-loop concurrent run, then the server's own statistics.
fn serve_bench(server: &Server, args: &Args) -> Result<(), String> {
    // Phase 1 — cache effectiveness, measured sequentially so the two
    // distributions are clean: every query is a miss on the first pass
    // and a hit on the second.
    let probes: Vec<SearchMode> = covidkg::corpus::query_workload(24, args.seed)
        .into_iter()
        .map(SearchMode::AllFields)
        .collect();
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    for mode in &probes {
        let resp = server
            .search(mode, 0)
            .map_err(|e| format!("serve failed: {e}"))?;
        if !resp.cached {
            cold.push(resp.latency);
        }
        let resp = server
            .search(mode, 0)
            .map_err(|e| format!("serve failed: {e}"))?;
        if resp.cached {
            warm.push(resp.latency);
        }
    }
    let (cold_p50, warm_p50) = (median(&mut cold), median(&mut warm));
    println!(
        "cache probe: cold p50 {:.1} µs ({} misses), warm p50 {:.1} µs ({} hits), speedup {:.1}x",
        cold_p50.as_secs_f64() * 1e6,
        cold.len(),
        warm_p50.as_secs_f64() * 1e6,
        warm.len(),
        if warm_p50.as_nanos() == 0 {
            f64::INFINITY
        } else {
            cold_p50.as_secs_f64() / warm_p50.as_secs_f64()
        },
    );

    // Phase 2 — the concurrent closed loop across all three engines.
    let report = covidkg::serve::loadgen::run(
        server,
        &LoadGenConfig {
            clients: args.clients.max(1),
            queries_per_client: args.requests.unwrap_or(50).max(1),
            ..LoadGenConfig::default()
        },
    );
    print!("{}", report.render());
    if report.mismatches > 0 {
        return Err(format!(
            "{} spot checks disagreed with direct search",
            report.mismatches
        ));
    }
    // Phase 3 (optional) — the open-loop sweep: fixed offered rates
    // below, at and above the measured closed-loop capacity, reporting
    // goodput and the coordinated-omission-aware latency tail.
    if args.open_loop {
        let rates = args.rates.clone().unwrap_or_else(|| {
            let capacity = report.throughput().max(10.0);
            vec![capacity * 0.5, capacity, capacity * 2.0]
        });
        println!(
            "open loop ({} ms per rate, latency from scheduled arrival):",
            args.duration_ms
        );
        for rate in rates {
            let r = covidkg::serve::loadgen::run_open_loop(
                server,
                &OpenLoopConfig {
                    rate,
                    duration: Duration::from_millis(args.duration_ms.max(1)),
                    dispatchers: args.clients.max(1),
                },
            );
            println!("  {}", r.render());
        }
    }

    print!("{}", server.stats().render());
    Ok(())
}

/// Minimum open-loop arrivals per phase: percentiles from a few dozen
/// samples are noise, so short durations are stretched until at least
/// this many requests are scheduled.
const NET_BENCH_MIN_ARRIVALS: f64 = 200.0;

/// The `net-bench` body: a single-request RTT micro-bench on the
/// `covidkg_bench::timer` harness, a closed-loop phase, an open-loop
/// offered-rate sweep, a connection-concurrency sweep (N idle
/// keep-alive connections held while open-loop load runs beside them),
/// and a thread-per-connection baseline at equal load; everything
/// lands in `BENCH_net.json`.
fn net_bench(http: &HttpServer, server: &Arc<Server>, args: &Args) -> Result<(), String> {
    let addr = http.local_addr();
    let timeout = Duration::from_secs(10);
    println!("net-bench against http://{addr} (reactor model)");

    // Phase 0 — wire RTT floor: one keep-alive connection, a cached
    // query, timed on the same harness the repo's other benches use so
    // the number is comparable with the in-process figures.
    let mut conn = covidkg::HttpClient::connect(addr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    conn.get("/search/all-fields?q=vaccine&page=0")
        .map_err(|e| format!("warmup request: {e}"))?;
    let mut criterion = covidkg::bench::timer::Criterion::default();
    criterion.bench_function("wire-rtt/cached-search", |b| {
        b.iter(|| conn.get("/search/all-fields?q=vaccine&page=0").unwrap())
    });
    // A plain median over a short burst for the JSON artifact (the
    // criterion harness above prints its own calibrated estimate).
    let mut rtts: Vec<Duration> = Vec::with_capacity(64);
    for _ in 0..64 {
        let t = Instant::now();
        conn.get("/search/all-fields?q=vaccine&page=0")
            .map_err(|e| format!("rtt probe: {e}"))?;
        rtts.push(t.elapsed());
    }
    let rtt_p50 = median(&mut rtts);

    // Phase 1 — closed loop: N keep-alive connections at full tilt.
    let requests_per_client = args.requests.unwrap_or(200).max(1);
    let closed = covidkg::net::run_closed_loop(
        addr,
        args.clients.max(1),
        requests_per_client,
        timeout,
    );
    println!("{}", closed.render());
    if closed.io_errors > 0 {
        return Err(format!("{} socket-level failures in closed loop", closed.io_errors));
    }

    // Open-loop phases stretch short durations until at least
    // NET_BENCH_MIN_ARRIVALS requests are scheduled — tail percentiles
    // from a handful of samples are noise, not measurement.
    let base_duration = Duration::from_millis(args.duration_ms.max(1));
    let duration_for = |rate: f64| -> Duration {
        base_duration.max(Duration::from_secs_f64(
            NET_BENCH_MIN_ARRIVALS / rate.max(1e-3),
        ))
    };

    // Phase 2 — open loop at fixed offered rates (default: half and
    // double the measured closed-loop goodput, so the sweep brackets
    // the saturation point), latency from scheduled arrival.
    let capacity = closed.goodput().max(10.0);
    let rates = args
        .rates
        .clone()
        .unwrap_or_else(|| vec![capacity * 0.5, capacity * 2.0]);
    let mut open_reports = Vec::new();
    println!("open loop (latency from scheduled arrival):");
    for rate in rates {
        let r = covidkg::net::run_open_loop(
            addr,
            rate,
            duration_for(rate),
            args.clients.max(1),
            timeout,
        );
        println!("  {}", r.render());
        open_reports.push(r);
    }

    // Phase 3 — connection-concurrency sweep: hold N idle keep-alive
    // connections for the whole phase while open-loop load runs beside
    // them at a fixed comfortable rate. Under the reactor each held
    // socket is one fd + ~1 KiB of state, so goodput and tail latency
    // should hold flat as N scales into the thousands.
    let sweep_rate = (capacity * 0.5).max(10.0);
    let held_counts = args.connections.clone().unwrap_or_else(|| vec![64, 512, 4096]);
    let mut held_reports = Vec::new();
    println!("connection sweep (open loop at {sweep_rate:.0} req/s beside held idle conns):");
    for held in held_counts {
        let r = covidkg::net::run_held_connections(
            addr,
            held,
            sweep_rate,
            duration_for(sweep_rate),
            args.clients.max(1),
            timeout,
        );
        println!("  {}", r.render());
        if (r.held_connections as usize) < held {
            return Err(format!(
                "held-connection sweep only opened {} of {held} sockets",
                r.held_connections
            ));
        }
        held_reports.push(r);
    }

    // Phase 4 — thread-per-connection baseline at equal load: a second
    // front-end over the *same* serve layer, legacy model, driven with
    // the same open-loop rate (and the same sweep with the thread cap's
    // worth of held connections) for a direct A/B in the table.
    let threaded_held = 64;
    let mut baseline = HttpServer::start(
        Arc::clone(server),
        NetConfig {
            addr: "127.0.0.1:0".parse().expect("literal addr"),
            model: covidkg::net::ConnectionModel::Threaded,
            max_connections: (threaded_held + args.clients.max(1)) * 2,
            ..NetConfig::default()
        },
    )
    .map_err(|e| format!("bind threaded baseline: {e}"))?;
    let baseline_addr = baseline.local_addr();
    println!("thread-per-connection baseline against http://{baseline_addr}:");
    let threaded_open = covidkg::net::run_open_loop(
        baseline_addr,
        sweep_rate,
        duration_for(sweep_rate),
        args.clients.max(1),
        timeout,
    );
    println!("  {}", threaded_open.render());
    let threaded_held_report = covidkg::net::run_held_connections(
        baseline_addr,
        threaded_held,
        sweep_rate,
        duration_for(sweep_rate),
        args.clients.max(1),
        timeout,
    );
    println!("  {}", threaded_held_report.render());
    baseline.shutdown();

    // Emit BENCH_net.json next to the other BENCH_*.json artifacts.
    let wire = http.wire_stats();
    let report = covidkg::json::obj! {
        "bench" => "net",
        "model" => "reactor",
        "clients" => args.clients.max(1),
        "requests_per_client" => requests_per_client,
        "rtt_us" => rtt_p50.as_secs_f64() * 1e6,
        "closed" => closed.to_json(),
        "open" => covidkg::json::Value::Array(
            open_reports.iter().map(|r| r.to_json()).collect()
        ),
        "connections" => covidkg::json::Value::Array(
            held_reports.iter().map(|r| r.to_json()).collect()
        ),
        "threaded" => covidkg::json::obj! {
            "open" => threaded_open.to_json(),
            "held" => threaded_held_report.to_json(),
        },
        "wire" => covidkg::json::obj! {
            "connections_accepted" => wire.connections_accepted as i64,
            "connections_reaped" => wire.connections_reaped as i64,
            "bytes_in" => wire.bytes_in as i64,
            "bytes_out" => wire.bytes_out as i64,
            "parse_errors" => wire.parse_errors as i64,
            "epoll_wakeups" => wire.epoll_wakeups as i64,
            "ready_events" => wire.ready_events as i64,
        },
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_net.json");
    std::fs::write(path, report.to_json_pretty() + "\n")
        .map_err(|e| format!("write BENCH_net.json: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn median(samples: &mut [Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
