//! `covidkg` — command-line front door to the reproduction.
//!
//! Stateless usage builds a fresh in-memory system per invocation; with
//! `--data-dir` the system persists, so `build` once and then `search`,
//! `kg`, `profiles`, `bias` and `stats` reopen it instantly (no
//! retraining), mirroring how COVIDKG.ORG serves a long-lived cluster.
//!
//! ```text
//! covidkg build --corpus 120 --data-dir /tmp/kgdata
//! covidkg search "vaccine side effects" --data-dir /tmp/kgdata
//! covidkg search "ventilators" --engine tables --expanded
//! covidkg kg "side effects" --data-dir /tmp/kgdata
//! covidkg profiles --data-dir /tmp/kgdata
//! covidkg bias --data-dir /tmp/kgdata
//! covidkg stats --data-dir /tmp/kgdata
//! ```

use covidkg::{
    CovidKg, CovidKgConfig, HttpServer, LoadGenConfig, NetConfig, OpenLoopConfig, SearchMode,
    ServeConfig, Server,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
covidkg — COVIDKG.ORG reproduction CLI

USAGE:
    covidkg <command> [args] [options]

COMMANDS:
    build                    build a system (use --data-dir to persist it)
    search <query>           run a search engine over the system
    kg [query]               browse the knowledge graph / search its nodes
    profiles                 print the vaccine side-effect meta-profiles
    bias                     print the corpus bias-interrogation report
    stats                    print the storage report + data generation
    serve                    run the HTTP front-end (stop with EOF/ctrl-d)
    serve-bench              benchmark the concurrent serving frontend
    net-bench                wire-level HTTP load bench (emits BENCH_net.json)
    chaos                    deterministic fault-injection survival run

OPTIONS:
    --data-dir <path>        durable system location (reopened if built)
    --corpus <n>             publications to generate on build [default 120]
    --seed <n>               corpus/model seed [default 42]
    --engine all|tables|scoped   search engine (default all)
    --page <n>               result page, 0-based (default 0)
    --expanded               expand collapsed result sections
    --depth <n>              kg tree depth (default 2)
    --clients <n>            serve-bench/chaos concurrent clients [default 8]
    --requests <n>           serve-bench/chaos queries per client [default 50]
    --workers <n>            serve-bench/chaos worker threads [default 4]
    --faults <n>             chaos injected-fault target [default 100]
    --open-loop              serve-bench: add a fixed-arrival-rate sweep
    --rates <a,b,c>          open-loop offered rates in req/s [default:
                             0.5x / 1x / 2x of the closed-loop throughput]
    --duration-ms <n>        open-loop run length per rate [default 1000]
    --listen <addr>          serve/net-bench bind address
                             [serve: 127.0.0.1:8080; net-bench: 127.0.0.1:0]
";

struct Args {
    command: String,
    positional: Vec<String>,
    data_dir: Option<String>,
    corpus: usize,
    seed: u64,
    engine: String,
    page: usize,
    expanded: bool,
    depth: usize,
    clients: usize,
    requests: usize,
    workers: usize,
    faults: u64,
    open_loop: bool,
    rates: Option<Vec<f64>>,
    duration_ms: u64,
    listen: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(|| USAGE.to_string())?;
    let mut out = Args {
        command,
        positional: Vec::new(),
        data_dir: None,
        corpus: 120,
        seed: 42,
        engine: "all".into(),
        page: 0,
        expanded: false,
        depth: 2,
        clients: 8,
        requests: 50,
        workers: 4,
        faults: 100,
        open_loop: false,
        rates: None,
        duration_ms: 1000,
        listen: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--data-dir" => out.data_dir = Some(value("--data-dir")?),
            "--corpus" => {
                out.corpus = value("--corpus")?
                    .parse()
                    .map_err(|_| "--corpus takes a number".to_string())?
            }
            "--seed" => {
                out.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed takes a number".to_string())?
            }
            "--engine" => out.engine = value("--engine")?,
            "--page" => {
                out.page = value("--page")?
                    .parse()
                    .map_err(|_| "--page takes a number".to_string())?
            }
            "--depth" => {
                out.depth = value("--depth")?
                    .parse()
                    .map_err(|_| "--depth takes a number".to_string())?
            }
            "--clients" => {
                out.clients = value("--clients")?
                    .parse()
                    .map_err(|_| "--clients takes a number".to_string())?
            }
            "--requests" => {
                out.requests = value("--requests")?
                    .parse()
                    .map_err(|_| "--requests takes a number".to_string())?
            }
            "--workers" => {
                out.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers takes a number".to_string())?
            }
            "--faults" => {
                out.faults = value("--faults")?
                    .parse()
                    .map_err(|_| "--faults takes a number".to_string())?
            }
            "--open-loop" => out.open_loop = true,
            "--rates" => {
                let list = value("--rates")?;
                let rates: Result<Vec<f64>, _> =
                    list.split(',').map(|r| r.trim().parse::<f64>()).collect();
                let rates = rates.map_err(|_| {
                    "--rates takes comma-separated numbers (req/s)".to_string()
                })?;
                if rates.is_empty() || rates.iter().any(|r| *r <= 0.0) {
                    return Err("--rates needs positive rates".to_string());
                }
                out.rates = Some(rates);
            }
            "--duration-ms" => {
                out.duration_ms = value("--duration-ms")?
                    .parse()
                    .map_err(|_| "--duration-ms takes a number".to_string())?
            }
            "--listen" => out.listen = Some(value("--listen")?),
            "--expanded" => out.expanded = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}\n\n{USAGE}"))
            }
            other => out.positional.push(other.to_string()),
        }
    }
    Ok(out)
}

/// Open the system: reopen a durable one when possible, else build fresh.
fn open_system(args: &Args, force_build: bool) -> Result<CovidKg, String> {
    let config = CovidKgConfig {
        corpus_size: args.corpus,
        seed: args.seed,
        data_dir: args.data_dir.clone(),
        ..CovidKgConfig::default()
    };
    if !force_build && args.data_dir.is_some() {
        if let Ok(system) = CovidKg::reopen(config.clone()) {
            return Ok(system);
        }
        eprintln!("(no reusable system at the data dir; building fresh)");
    }
    CovidKg::build(config).map_err(|e| format!("build failed: {e}"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    match args.command.as_str() {
        "build" => {
            let system = open_system(&args, true)?;
            let r = system.report();
            println!(
                "built: {} publications, {} tables, {} KG nodes, {} subtrees fused",
                r.publications, r.tables_parsed, r.kg_nodes, r.fusion.auto_fused
            );
            if let Some(dir) = &args.data_dir {
                println!("persisted to {dir} — subsequent commands reopen instantly");
            } else {
                println!("(in-memory only; pass --data-dir to persist)");
            }
        }
        "search" => {
            let query = args.positional.join(" ");
            if query.is_empty() {
                return Err("search needs a query\n\n".to_string() + USAGE);
            }
            let system = open_system(&args, false)?;
            let mode = match args.engine.as_str() {
                "all" => SearchMode::AllFields(query),
                "tables" => SearchMode::Tables(query),
                "scoped" => SearchMode::TitleAbstractCaption {
                    title: query.clone(),
                    abstract_q: query,
                    caption: String::new(),
                },
                other => return Err(format!("unknown engine {other:?} (all|tables|scoped)")),
            };
            let page = system.search(&mode, args.page);
            print!(
                "{}",
                if args.expanded {
                    page.render_expanded()
                } else {
                    page.render()
                }
            );
        }
        "kg" => {
            let system = open_system(&args, false)?;
            let kg = system.kg();
            if args.positional.is_empty() {
                print!("{}", kg.render_tree(0, args.depth));
            } else {
                let query = args.positional.join(" ");
                let hits = kg.search(&query);
                if hits.is_empty() {
                    println!("no KG nodes match {query:?}");
                }
                for hit in hits {
                    print!("{}", kg.render_node(hit.node));
                }
            }
        }
        "profiles" => {
            let system = open_system(&args, false)?;
            if system.profiles().is_empty() {
                println!("no side-effect observations in this corpus");
            }
            for p in system.profiles() {
                print!("{}", p.render());
                println!();
            }
        }
        "bias" => {
            let system = open_system(&args, false)?;
            print!("{}", system.bias_report().render());
        }
        "stats" => {
            let system = open_system(&args, false)?;
            print!("{}", system.stats().render_report());
            println!("data generation: {}", system.generation());
        }
        "serve" => {
            let system = open_system(&args, false)?;
            let addr = args
                .listen
                .as_deref()
                .unwrap_or("127.0.0.1:8080")
                .parse()
                .map_err(|_| "--listen takes an ADDR:PORT".to_string())?;
            let server = Arc::new(Server::start(
                system,
                ServeConfig {
                    workers: args.workers.max(1),
                    ..ServeConfig::default()
                },
            ));
            let mut http = HttpServer::start(
                Arc::clone(&server),
                NetConfig {
                    addr,
                    ..NetConfig::default()
                },
            )
            .map_err(|e| format!("bind {addr} failed: {e}"))?;
            println!("listening on http://{}", http.local_addr());
            println!("  GET /search/{{all-fields|tables|scoped}}?q=&page=");
            println!("  GET /kg/node/{{id}}   GET /stats   GET /metrics");
            println!("(EOF on stdin — ctrl-d — shuts down gracefully)");
            // Block until stdin closes, then drain and exit.
            let mut sink = String::new();
            while std::io::stdin().read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
                sink.clear();
            }
            http.shutdown();
            server.shutdown();
            println!("drained and stopped");
        }
        "net-bench" => {
            let system = open_system(&args, false)?;
            let server = Arc::new(Server::start(
                system,
                ServeConfig {
                    workers: args.workers.max(1),
                    ..ServeConfig::default()
                },
            ));
            let addr = args
                .listen
                .as_deref()
                .unwrap_or("127.0.0.1:0")
                .parse()
                .map_err(|_| "--listen takes an ADDR:PORT".to_string())?;
            let mut http = HttpServer::start(
                Arc::clone(&server),
                NetConfig {
                    addr,
                    max_connections: (args.clients * 2).max(64),
                    ..NetConfig::default()
                },
            )
            .map_err(|e| format!("bind {addr} failed: {e}"))?;
            let result = net_bench(&http, &args);
            http.shutdown();
            server.shutdown();
            result?;
        }
        "serve-bench" => {
            let system = open_system(&args, false)?;
            let server = Server::start(
                system,
                ServeConfig {
                    workers: args.workers.max(1),
                    ..ServeConfig::default()
                },
            );
            serve_bench(&server, &args)?;
        }
        "chaos" => {
            let report = covidkg::chaos::run(&covidkg::ChaosConfig {
                seed: args.seed,
                corpus: args.corpus.clamp(8, 60),
                fault_target: args.faults,
                workers: args.workers.max(1),
                clients: args.clients.max(1),
                requests: args.requests.max(1),
                ..covidkg::ChaosConfig::default()
            })?;
            println!("{report}");
            if !report.passed() {
                return Err(format!(
                    "chaos run violated {} invariants",
                    report.failures.len()
                ));
            }
        }
        other => return Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
    Ok(())
}

/// The `serve-bench` body: a sequential cold-vs-warm cache probe, then a
/// closed-loop concurrent run, then the server's own statistics.
fn serve_bench(server: &Server, args: &Args) -> Result<(), String> {
    // Phase 1 — cache effectiveness, measured sequentially so the two
    // distributions are clean: every query is a miss on the first pass
    // and a hit on the second.
    let probes: Vec<SearchMode> = covidkg::corpus::query_workload(24, args.seed)
        .into_iter()
        .map(SearchMode::AllFields)
        .collect();
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    for mode in &probes {
        let resp = server
            .search(mode, 0)
            .map_err(|e| format!("serve failed: {e}"))?;
        if !resp.cached {
            cold.push(resp.latency);
        }
        let resp = server
            .search(mode, 0)
            .map_err(|e| format!("serve failed: {e}"))?;
        if resp.cached {
            warm.push(resp.latency);
        }
    }
    let (cold_p50, warm_p50) = (median(&mut cold), median(&mut warm));
    println!(
        "cache probe: cold p50 {:.1} µs ({} misses), warm p50 {:.1} µs ({} hits), speedup {:.1}x",
        cold_p50.as_secs_f64() * 1e6,
        cold.len(),
        warm_p50.as_secs_f64() * 1e6,
        warm.len(),
        if warm_p50.as_nanos() == 0 {
            f64::INFINITY
        } else {
            cold_p50.as_secs_f64() / warm_p50.as_secs_f64()
        },
    );

    // Phase 2 — the concurrent closed loop across all three engines.
    let report = covidkg::serve::loadgen::run(
        server,
        &LoadGenConfig {
            clients: args.clients.max(1),
            queries_per_client: args.requests.max(1),
            ..LoadGenConfig::default()
        },
    );
    print!("{}", report.render());
    if report.mismatches > 0 {
        return Err(format!(
            "{} spot checks disagreed with direct search",
            report.mismatches
        ));
    }
    // Phase 3 (optional) — the open-loop sweep: fixed offered rates
    // below, at and above the measured closed-loop capacity, reporting
    // goodput and the coordinated-omission-aware latency tail.
    if args.open_loop {
        let rates = args.rates.clone().unwrap_or_else(|| {
            let capacity = report.throughput().max(10.0);
            vec![capacity * 0.5, capacity, capacity * 2.0]
        });
        println!(
            "open loop ({} ms per rate, latency from scheduled arrival):",
            args.duration_ms
        );
        for rate in rates {
            let r = covidkg::serve::loadgen::run_open_loop(
                server,
                &OpenLoopConfig {
                    rate,
                    duration: Duration::from_millis(args.duration_ms.max(1)),
                    dispatchers: args.clients.max(1),
                },
            );
            println!("  {}", r.render());
        }
    }

    print!("{}", server.stats().render());
    Ok(())
}

/// The `net-bench` body: a single-request RTT micro-bench on the
/// `covidkg_bench::timer` harness, a closed-loop phase, then an
/// open-loop offered-rate sweep; everything lands in `BENCH_net.json`.
fn net_bench(http: &HttpServer, args: &Args) -> Result<(), String> {
    let addr = http.local_addr();
    let timeout = Duration::from_secs(10);
    println!("net-bench against http://{addr}");

    // Phase 0 — wire RTT floor: one keep-alive connection, a cached
    // query, timed on the same harness the repo's other benches use so
    // the number is comparable with the in-process figures.
    let mut conn = covidkg::HttpClient::connect(addr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    conn.get("/search/all-fields?q=vaccine&page=0")
        .map_err(|e| format!("warmup request: {e}"))?;
    let mut criterion = covidkg::bench::timer::Criterion::default();
    criterion.bench_function("wire-rtt/cached-search", |b| {
        b.iter(|| conn.get("/search/all-fields?q=vaccine&page=0").unwrap())
    });

    // Phase 1 — closed loop: N keep-alive connections at full tilt.
    let closed = covidkg::net::run_closed_loop(
        addr,
        args.clients.max(1),
        args.requests.max(1),
        timeout,
    );
    println!("{}", closed.render());
    if closed.io_errors > 0 {
        return Err(format!("{} socket-level failures in closed loop", closed.io_errors));
    }

    // Phase 2 — open loop at fixed offered rates (default: half and
    // double the measured closed-loop goodput, so the sweep brackets
    // the saturation point), latency from scheduled arrival.
    let rates = args.rates.clone().unwrap_or_else(|| {
        let capacity = closed.goodput().max(10.0);
        vec![capacity * 0.5, capacity * 2.0]
    });
    let duration = Duration::from_millis(args.duration_ms.max(1));
    let mut open_reports = Vec::new();
    println!("open loop ({} ms per rate, latency from scheduled arrival):", args.duration_ms);
    for rate in rates {
        let r = covidkg::net::run_open_loop(addr, rate, duration, args.clients.max(1), timeout);
        println!("  {}", r.render());
        open_reports.push(r);
    }

    // Emit BENCH_net.json next to the other BENCH_*.json artifacts.
    let wire = http.wire_stats();
    let report = covidkg::json::obj! {
        "bench" => "net",
        "clients" => args.clients.max(1),
        "requests_per_client" => args.requests.max(1),
        "closed" => closed.to_json(),
        "open" => covidkg::json::Value::Array(
            open_reports.iter().map(|r| r.to_json()).collect()
        ),
        "wire" => covidkg::json::obj! {
            "connections_accepted" => wire.connections_accepted as i64,
            "connections_reaped" => wire.connections_reaped as i64,
            "bytes_in" => wire.bytes_in as i64,
            "bytes_out" => wire.bytes_out as i64,
            "parse_errors" => wire.parse_errors as i64,
        },
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_net.json");
    std::fs::write(path, report.to_json_pretty() + "\n")
        .map_err(|e| format!("write BENCH_net.json: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn median(samples: &mut [Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
