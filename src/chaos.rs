//! Chaos harness: one deterministic end-to-end survival run.
//!
//! Three phases, all driven by a single seed so a failure replays
//! exactly:
//!
//! 1. **Crash gauntlet** — [`covidkg_store::run_gauntlet`] simulates a
//!    crash at every WAL frame boundary (plus mid-frame cuts and a
//!    flipped byte per frame) and asserts prefix-consistent recovery.
//! 2. **Faulty ingest** — a durable [`CovidKg`] ingests batches while a
//!    seeded [`FaultPlan`] injects fail/short-write/delay faults into
//!    its WAL and snapshot I/O, until at least `fault_target` faults
//!    have fired. The system is then reopened from disk and every
//!    *acknowledged* publication must be present: retried transients
//!    never ack a lost write.
//! 3. **Panic-injected serving** — a [`Server`] runs the closed-loop
//!    load generator while a deterministic schedule panics every n-th
//!    query and two whole workers are crashed outright. Every request
//!    must resolve (fresh, stale-degraded or typed `Degraded` — never a
//!    hang), the pool must respawn to full strength, and spot checks
//!    must agree with direct search.
//! 4. **Replication gauntlet** — [`covidkg_repl::run_repl_gauntlet`]
//!    kills and restarts a replica mid-stream, truncates its WAL at
//!    every frame boundary (plus seeded mid-frame cuts and byte flips),
//!    corrupts the wire through a faulty proxy, and demands
//!    byte-identical convergence (content checksums) every time.
//! 5. **Failover gauntlet** — [`covidkg_repl::run_failover_gauntlet`]
//!    kills the *primary* — at a frame boundary, mid-frame, and during
//!    a snapshot bootstrap — and asserts exactly one survivor is
//!    promoted (deterministic election, fencing-epoch bump), a revived
//!    ex-primary is fenced out (its stale frames rejected, no
//!    split-brain), a cascaded chain survives mid-chain promotion, and
//!    every survivor converges to byte-identical content checksums.
//!
//! The CLI front-end is `covidkg chaos` (see `main.rs`); the survival
//! report renders PASS/FAIL per invariant.

use covidkg_core::{CovidKg, CovidKgConfig};
use covidkg_corpus::CorpusGenerator;
use covidkg_repl::{
    run_failover_gauntlet, run_repl_gauntlet, FailoverConfig, FailoverReport, ReplGauntletConfig,
    ReplGauntletReport,
};
use covidkg_serve::loadgen::{self, LoadGenConfig, LoadGenReport};
use covidkg_serve::{InjectedFaults, ServeConfig, ServeStats, Server};
use covidkg_store::{
    run_gauntlet, FaultConfig, FaultPlan, FaultStats, Flusher, FlusherStats, GauntletConfig,
    GauntletReport, RetryPolicy,
};
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Parameters of a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the corpus, the models and the fault schedule.
    pub seed: u64,
    /// Publications in the initially built system.
    pub corpus: usize,
    /// Training-row cap (keeps the build phase fast).
    pub max_training_rows: usize,
    /// Publications per faulty-ingest batch.
    pub batch_size: usize,
    /// Upper bound on ingest batches (safety rail).
    pub max_batches: usize,
    /// Keep ingesting under faults until this many have been injected.
    pub fault_target: u64,
    /// Serving worker threads.
    pub workers: usize,
    /// Load-generator client threads.
    pub clients: usize,
    /// Queries per load-generator client.
    pub requests: usize,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0xC0BD,
            corpus: 36,
            max_training_rows: 400,
            batch_size: 6,
            max_batches: 64,
            fault_target: 100,
            workers: 4,
            clients: 6,
            requests: 30,
        }
    }
}

/// Outcome of a chaos run — the survival report.
#[derive(Debug)]
pub struct ChaosReport {
    /// Phase 1: crash-at-every-point recovery.
    pub gauntlet: GauntletReport,
    /// Phase 2: what the fault plan injected.
    pub faults: FaultStats,
    /// Ingest batches acknowledged (`Ok`) under faults.
    pub acked_batches: usize,
    /// Ingest batches rejected after retries were exhausted (their
    /// writes are unacknowledged, so they carry no durability promise).
    pub rejected_batches: usize,
    /// Publications acknowledged under faults.
    pub acked: usize,
    /// Of `acked`, found intact after closing and reopening from disk.
    pub verified: usize,
    /// Store-level retries absorbed by bounded backoff.
    pub io_retries: u64,
    /// The background flusher's counters: its sync/compaction ticks ran
    /// *during* the fault storm, so its skips are injected compaction
    /// faults absorbed without losing acknowledged writes.
    pub flusher: FlusherStats,
    /// Attempts before the mid-storm `create_hash_index` backfill (an
    /// [`covidkg_store::FaultOp::IndexRebuild`] point) succeeded.
    pub index_rebuild_attempts: usize,
    /// Phase 3: the closed-loop load-generator tallies.
    pub serve: LoadGenReport,
    /// Phase 3: the server's own counters (panics, respawns, breaker).
    pub serve_stats: ServeStats,
    /// Phase 4: replication kill/cut/corrupt convergence.
    pub repl: ReplGauntletReport,
    /// Phase 5: kill-the-primary failover (fenced promotion).
    pub failover: FailoverReport,
    /// Worker threads alive at the end of phase 3.
    pub workers_alive: usize,
    /// Worker threads the pool was configured with.
    pub workers_configured: usize,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Every violated invariant (empty = survived).
    pub failures: Vec<String>,
}

impl ChaosReport {
    /// True when every invariant held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.gauntlet)?;
        writeln!(
            f,
            "faulty ingest: {} faults injected ({} fails, {} short writes, {} delays) \
             over {} decisions",
            self.faults.injected(),
            self.faults.fails,
            self.faults.short_writes,
            self.faults.delays,
            self.faults.decisions,
        )?;
        writeln!(
            f,
            "  {} batches acked, {} rejected; {} acked writes, {} verified after reopen; \
             {} retries absorbed",
            self.acked_batches, self.rejected_batches, self.acked, self.verified, self.io_retries,
        )?;
        writeln!(
            f,
            "  flusher under fire: {} syncs, {} compactions, {} faulted ticks skipped; \
             index backfill landed after {} attempt(s)",
            self.flusher.syncs,
            self.flusher.snapshots,
            self.flusher.transient_skips,
            self.index_rebuild_attempts,
        )?;
        write!(f, "panic-injected serving: {}", self.serve.render())?;
        write!(f, "{}", self.serve_stats.render())?;
        writeln!(
            f,
            "  {} of {} workers alive at shutdown",
            self.workers_alive, self.workers_configured
        )?;
        writeln!(f, "{}", self.repl)?;
        writeln!(f, "{}", self.failover)?;
        writeln!(f, "chaos wall clock: {:.2} s", self.wall.as_secs_f64())?;
        if self.passed() {
            write!(f, "SURVIVED: all chaos invariants held")
        } else {
            writeln!(f, "FAILED: {} invariants violated:", self.failures.len())?;
            for failure in &self.failures {
                writeln!(f, "  - {failure}")?;
            }
            Ok(())
        }
    }
}

/// Run the three chaos phases and aggregate the survival report.
pub fn run(config: &ChaosConfig) -> Result<ChaosReport, String> {
    let start = Instant::now();
    let mut failures = Vec::new();

    // Phase 1 — crash-at-every-point recovery gauntlet.
    let gauntlet = run_gauntlet(&GauntletConfig {
        tag: format!("chaos-{:x}", config.seed),
        ..GauntletConfig::default()
    })
    .map_err(|e| format!("gauntlet setup failed: {e}"))?;
    if !gauntlet.passed() {
        failures.push(format!(
            "crash gauntlet: {} crash points broke prefix-consistent recovery",
            gauntlet.failures.len()
        ));
    }

    // Phase 2 — ingest under an armed fault plan, then verify every
    // acknowledged write survives a cold reopen.
    let data_dir: PathBuf = std::env::temp_dir().join(format!(
        "covidkg-chaos-{:x}-{}",
        config.seed,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&data_dir);
    let ingest = faulty_ingest(config, &data_dir, &mut failures);
    let _ = std::fs::remove_dir_all(&data_dir);
    let storm = ingest?;

    // Phase 3 — panic-injected serving over the recovered system.
    let (serve, serve_stats, workers_alive) = panic_serving(config, storm.system, &mut failures);

    // Phase 4 — replication: kill/restart, cut-at-every-boundary, wire
    // corruption; every scenario must converge byte-identically.
    let repl = run_repl_gauntlet(&ReplGauntletConfig {
        seed: config.seed,
        docs: (config.corpus / 2).clamp(8, 18),
        kill_rounds: 2,
        tag: format!("chaos-{:x}", config.seed),
        ..ReplGauntletConfig::default()
    })
    .map_err(|e| format!("replication gauntlet setup failed: {e}"))?;
    if !repl.converged() {
        failures.push(format!(
            "replication gauntlet: {} scenarios failed to converge",
            repl.failures.len()
        ));
    }

    // Phase 5 — failover: kill the *primary* at the nasty moments,
    // demand exactly-one fenced promotion and checksum convergence.
    let failover = run_failover_gauntlet(&FailoverConfig {
        seed: config.seed,
        docs: (config.corpus / 2).clamp(8, 18),
        tag: format!("chaos-{:x}", config.seed),
    })
    .map_err(|e| format!("failover gauntlet setup failed: {e}"))?;
    if !failover.converged() {
        failures.push(format!(
            "failover gauntlet: {} invariants broke",
            failover.failures.len()
        ));
    }

    Ok(ChaosReport {
        gauntlet,
        faults: storm.faults,
        acked_batches: storm.acked_batches,
        rejected_batches: storm.rejected_batches,
        acked: storm.acked,
        verified: storm.verified,
        io_retries: storm.io_retries,
        flusher: storm.flusher,
        index_rebuild_attempts: storm.index_rebuild_attempts,
        serve,
        serve_stats,
        repl,
        failover,
        workers_alive,
        workers_configured: config.workers.max(1),
        wall: start.elapsed(),
        failures,
    })
}

/// Everything phase 2 measured, plus the recovered system phase 3
/// serves.
struct FaultStorm {
    faults: FaultStats,
    acked_batches: usize,
    rejected_batches: usize,
    acked: usize,
    verified: usize,
    io_retries: u64,
    flusher: FlusherStats,
    index_rebuild_attempts: usize,
    system: CovidKg,
}

/// Phase 2 body. Returns the recovered system so phase 3 serves the
/// exact state that survived the fault storm.
fn faulty_ingest(
    config: &ChaosConfig,
    data_dir: &Path,
    failures: &mut Vec<String>,
) -> Result<FaultStorm, String> {
    let kg_config = CovidKgConfig {
        corpus_size: config.corpus,
        seed: config.seed,
        max_training_rows: config.max_training_rows,
        data_dir: Some(data_dir.display().to_string()),
        ..CovidKgConfig::default()
    };
    let mut system =
        CovidKg::build(kg_config.clone()).map_err(|e| format!("chaos build failed: {e}"))?;

    // Arm the plan only now: the build must be clean so every later
    // divergence is attributable to injected faults.
    let plan = FaultPlan::new(FaultConfig {
        seed: config.seed,
        fail: 0.25,
        short_write: 0.10,
        delay: 0.10,
        // Never inject ENOSPC here: disk-full is a *permanent* fault and
        // the gauntlet's invariants assume every injected fault is
        // survivable via retry/repair.
        disk_full: 0.0,
        delay_for: Duration::from_micros(100),
        max_faults: 0,
    });
    system.publications().set_fault_plan(Some(plan.clone()));
    system.publications().set_retry_policy(RetryPolicy::default());

    // The durability daemon runs *through* the storm on a tight
    // interval, so its group commits and snapshot compactions hit the
    // armed [`covidkg_store::FaultOp::Compaction`] points while the
    // ingest loop is mutating the collection.
    let flusher = Flusher::start(
        std::sync::Arc::clone(system.publications()),
        Duration::from_millis(3),
        2,
    );

    let fresh: Vec<_> = CorpusGenerator::with_size(
        config.corpus + config.batch_size * config.max_batches,
        config.seed,
    )
    .generate()
    .into_iter()
    .skip(config.corpus)
    .collect();

    let mut acked_ids: Vec<String> = Vec::new();
    let mut acked_batches = 0usize;
    let mut rejected_batches = 0usize;
    // Mid-storm index backfill: `create_hash_index` is an
    // [`covidkg_store::FaultOp::IndexRebuild`] point, attempted each
    // batch until it lands (a transient rejection promises nothing).
    let mut index_rebuild_attempts = 0usize;
    let mut index_built = false;
    for batch in fresh.chunks(config.batch_size.max(1)) {
        if plan.stats().injected() >= config.fault_target {
            break;
        }
        match system.ingest(batch) {
            Ok(_) => {
                acked_batches += 1;
                acked_ids.extend(batch.iter().map(|p| p.id.clone()));
            }
            // A rejected batch made no durability promise; the next
            // batch has fresh ids, so the storm just moves on.
            Err(e) if e.is_transient() => rejected_batches += 1,
            Err(e) => return Err(format!("permanent error under injected faults: {e}")),
        }
        if !index_built {
            index_rebuild_attempts += 1;
            match system.publications().create_hash_index("venue") {
                Ok(_) => index_built = true,
                Err(e) if e.is_transient() => {}
                Err(e) => return Err(format!("permanent index-rebuild fault: {e}")),
            }
        }
    }
    if !index_built {
        failures.push(format!(
            "index backfill never survived the storm ({index_rebuild_attempts} attempts)"
        ));
    }
    let faults = plan.stats();
    let io_retries = system.publications().io_retries();
    if faults.injected() < config.fault_target {
        failures.push(format!(
            "fault storm too small: {} injected < target {} (raise max_batches)",
            faults.injected(),
            config.fault_target
        ));
    }

    // The daemon must come down cleanly *before* the cold reopen: a
    // permanent error inside it would be a survived-by-accident lie.
    let flusher_stats = match flusher.stop() {
        Ok(stats) => stats,
        Err(e) => {
            failures.push(format!("flusher died under injected faults: {e}"));
            FlusherStats::default()
        }
    };

    // Cold recovery: drop the faulted system, reopen from disk with the
    // plan gone, and demand every acknowledged publication back.
    drop(system);
    let system = CovidKg::reopen(kg_config).map_err(|e| format!("chaos reopen failed: {e}"))?;
    let verified = acked_ids
        .iter()
        .filter(|id| system.publications().get(id).is_some())
        .count();
    if verified != acked_ids.len() {
        failures.push(format!(
            "lost acknowledged writes: only {verified} of {} survived recovery",
            acked_ids.len()
        ));
    }
    Ok(FaultStorm {
        faults,
        acked_batches,
        rejected_batches,
        acked: acked_ids.len(),
        verified,
        io_retries,
        flusher: flusher_stats,
        index_rebuild_attempts,
        system,
    })
}

/// Phase 3 body: serve under injected query panics + worker crashes.
fn panic_serving(
    config: &ChaosConfig,
    system: CovidKg,
    failures: &mut Vec<String>,
) -> (LoadGenReport, ServeStats, usize) {
    let workers = config.workers.max(1);
    let server = Server::start(
        system,
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
    );
    // Deterministic schedule: every 17th query panics mid-search, every
    // 13th is delayed — and two whole workers are crashed outright.
    server.set_injected_faults(Some(InjectedFaults {
        panic_every: 17,
        delay_every: 13,
        delay: Duration::from_micros(300),
    }));
    for _ in 0..2 {
        let _ = server.inject_worker_panic();
    }

    let serve = loadgen::run(
        &server,
        &LoadGenConfig {
            clients: config.clients.max(1),
            queries_per_client: config.requests.max(1),
            ..LoadGenConfig::default()
        },
    );
    if serve.abandoned > 0 {
        failures.push(format!("{} requests abandoned (hung or closed)", serve.abandoned));
    }
    if serve.mismatches > 0 {
        failures.push(format!(
            "{} fresh responses disagreed with direct search",
            serve.mismatches
        ));
    }

    // Heal and prove the pool recovered: full worker strength and a
    // clean query after the storm.
    server.set_injected_faults(None);
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.worker_count() < workers && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let workers_alive = server.worker_count();
    if workers_alive < workers {
        failures.push(format!(
            "worker pool shrank: {workers_alive} of {workers} alive after the storm"
        ));
    }
    let healthy = server
        .search(&covidkg_search::SearchMode::AllFields("vaccine".into()), 0)
        .is_ok();
    if !healthy {
        failures.push("post-storm health-check query failed".into());
    }
    let stats = server.stats();
    if stats.worker_respawns < 2 {
        failures.push(format!(
            "expected ≥2 worker respawns after injected crashes, saw {}",
            stats.worker_respawns
        ));
    }
    server.shutdown();
    (serve, stats, workers_alive)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down storm end to end: deterministic seed, every
    /// invariant checked, report renders as SURVIVED.
    #[test]
    fn small_chaos_run_survives() {
        let report = run(&ChaosConfig {
            corpus: 14,
            max_training_rows: 150,
            batch_size: 4,
            max_batches: 24,
            fault_target: 30,
            workers: 2,
            clients: 3,
            requests: 8,
            ..ChaosConfig::default()
        })
        .expect("chaos run completes");
        assert!(report.passed(), "{report}");
        assert!(report.faults.injected() >= 30);
        assert_eq!(report.verified, report.acked);
        assert!(report.gauntlet.passed());
        assert!(report.flusher.syncs > 0, "flusher must have ticked mid-storm");
        assert!(report.index_rebuild_attempts >= 1);
        assert!(report.repl.converged(), "{}", report.repl);
        assert!(report.repl.kills >= 2);
        assert!(report.failover.converged(), "{}", report.failover);
        assert!(report.failover.kills >= 4, "every failover scenario kills the primary");
        assert_eq!(
            report.failover.promotions, report.failover.kills,
            "exactly one promotion per primary kill"
        );
        assert!(report.failover.fenced_sessions >= 1, "revival was fenced");
        assert!(report.failover.stale_rejects >= 1, "stale frames were rejected");
        let rendered = report.to_string();
        assert!(rendered.contains("SURVIVED"), "{rendered}");
        assert!(rendered.contains("faults injected"));
        assert!(rendered.contains("failover gauntlet"), "{rendered}");
    }
}
