#![warn(missing_docs)]

//! # covidkg
//!
//! Umbrella crate for the COVIDKG.ORG reproduction (EDBT 2023). Re-exports
//! every subsystem plus the assembled [`CovidKg`] system.
//!
//! ```
//! use covidkg::{CovidKg, CovidKgConfig, SearchMode};
//!
//! let system = CovidKg::build(CovidKgConfig {
//!     corpus_size: 12,
//!     max_training_rows: 150,
//!     ..CovidKgConfig::default()
//! }).unwrap();
//! let page = system.search(&SearchMode::AllFields("vaccine".into()), 0);
//! assert!(page.total > 0);
//! ```

pub mod chaos;

pub use chaos::{ChaosConfig, ChaosReport};
pub use covidkg_core::{
    CovidKg, CovidKgConfig, CvReport, IngestReport, ModelRegistry,
};
pub use covidkg_core::system::ClassifierChoice;
pub use covidkg_search::{DenseMode, HybridConfig, SearchMode, SearchPage};
pub use covidkg_serve::{LoadGenConfig, OpenLoopConfig, OpenLoopReport, ServeConfig, ServeError, ServeStats, Server};

/// JSON document model.
pub use covidkg_json as json;
/// Regular-expression engine.
pub use covidkg_regex as regex;
/// Text utilities (tokenizer, stemmer, TF-IDF, snippets).
pub use covidkg_text as text;
/// Table parsing, pre-processing and positional features.
pub use covidkg_tables as tables;
/// The sharded document store.
pub use covidkg_store as store;
/// From-scratch ML (SVM, Word2Vec, BiGRU/BiLSTM, k-means).
pub use covidkg_ml as ml;
/// Synthetic CORD-19/WDC corpus generators.
pub use covidkg_corpus as corpus;
/// The knowledge graph, fusion engine and meta-profiles.
pub use covidkg_kg as kg;
/// The three advanced search engines.
pub use covidkg_search as search;
/// System facade, training harness and model registry.
pub use covidkg_core as core;
/// Concurrent query serving (thread pool, admission control, result cache).
pub use covidkg_serve as serve;
/// HTTP/1.1 network front-end (std::net only) + wire client/load-bench.
pub use covidkg_net as net;
/// WAL-shipping replication: primary listener, replica nodes, routing.
pub use covidkg_repl as repl;
/// Std-only micro-benchmark harness (criterion-compatible surface).
pub use covidkg_bench as bench;
/// HNSW approximate-nearest-neighbour index (the dense retrieval tier).
pub use covidkg_ann as ann;
/// Provenance-weighted trust scoring (the fourth wire traffic class).
pub use covidkg_trust as trust;

pub use covidkg_ann::{AnnStats, HnswConfig, HnswIndex};
pub use covidkg_net::{HttpClient, HttpServer, NetConfig};
