#!/usr/bin/env sh
# Regenerate the KG query/materialization benchmark table in
# EXPERIMENTS.md from the committed BENCH_kg.json. The table lives
# between the `<!-- kg-table:begin -->` / `<!-- kg-table:end -->`
# markers and is rewritten in place by `covidkg kg-table`, so prose and
# artifact cannot drift. Run a fresh bench first if you want new
# numbers:
#
#   ./target/release/covidkg kg-bench --seed 42
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline -q
./target/release/covidkg kg-table
