#!/usr/bin/env sh
# Regenerate the dense-tier benchmark table in EXPERIMENTS.md from the
# committed BENCH_ann.json. The table lives between the
# `<!-- ann-table:begin -->` / `<!-- ann-table:end -->` markers and is
# rewritten in place by `covidkg ann-table`, so prose and artifact
# cannot drift. Run a fresh bench first if you want new numbers:
#
#   ./target/release/covidkg ann-bench --seed 42
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline -q
./target/release/covidkg ann-table
