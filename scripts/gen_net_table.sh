#!/usr/bin/env sh
# Regenerate the wire-benchmark table in EXPERIMENTS.md from the
# committed BENCH_net.json. The table lives between the
# `<!-- net-table:begin -->` / `<!-- net-table:end -->` markers and is
# rewritten in place by `covidkg net-table`, so prose and artifact
# cannot drift. Run a fresh bench first if you want new numbers:
#
#   ./target/release/covidkg net-bench --corpus 120 --clients 8 \
#       --requests 50 --rates 500,2000 --duration-ms 1000
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline -q
./target/release/covidkg net-table
