#!/bin/sh
# Regenerate the trust bench table in EXPERIMENTS.md from BENCH_trust.json.
set -eu
cd "$(dirname "$0")/.."
cargo build --release --offline -q
./target/release/covidkg trust-table
