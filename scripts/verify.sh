#!/usr/bin/env sh
# Offline verification: the whole workspace must build, test and (when
# clippy is installed) lint with the network disabled. This is the
# hermeticity gate — a crates.io dependency sneaking into any manifest
# fails resolution here immediately.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test --offline -q (tier-1: root package)"
cargo test --offline -q

echo "==> cargo test --workspace --offline -q"
cargo test --workspace --offline -q

echo "==> search equivalence property test (pruned top-k vs naive oracle)"
cargo test -p covidkg-search --test equivalence --offline -q

echo "==> chaos gauntlet (deterministic seed, scaled-down storm)"
./target/release/covidkg chaos --seed 42 --corpus 12 --faults 40 \
    --clients 3 --requests 8 --workers 2

echo "==> serve-bench open-loop smoke (fixed arrival rate)"
./target/release/covidkg serve-bench --corpus 20 --clients 2 --requests 10 \
    --workers 2 --open-loop --rates 200,400 --duration-ms 250

echo "==> HTTP parser property tests (incl. one-byte split reads)"
cargo test -p covidkg-net --test parser_prop --offline -q

echo "==> reactor regression suite (1000 idle conns, pipelining, churn, threaded parity)"
cargo test -p covidkg-net --test reactor_e2e --offline -q

echo "==> protocol regression suite on the reactor path (slowloris 408, 431/413/400, drain)"
cargo test -p covidkg-net --test wire_e2e --offline -q

echo "==> EXPERIMENTS.md wire tables regenerate from the committed BENCH_net.json"
./target/release/covidkg net-table
grep -q '<!-- net-table:begin -->' EXPERIMENTS.md
grep -q '<!-- conn-table:begin -->' EXPERIMENTS.md

echo "==> wire smoke: TCP end-to-end with the in-repo client (no curl)"
./target/release/covidkg net-bench --corpus 16 --clients 2 --requests 10 \
    --workers 2 --rates 100,300 --duration-ms 250 --connections 32,128
test -s BENCH_net.json

echo "==> replication smoke: WAL shipping, checksum convergence, read-your-writes"
./target/release/covidkg repl-smoke --corpus 16 --seed 7

echo "==> failover property test (random kill points, election + fencing)"
cargo test -p covidkg-repl --test failover_prop --offline -q

echo "==> ANN recall property tests (HNSW vs brute-force oracle)"
cargo test -p covidkg-ann --test recall_prop --offline -q

echo "==> ANN smoke: dense-tier recall + wire byte-identity over TCP"
./target/release/covidkg ann-smoke --corpus 32

echo "==> EXPERIMENTS.md ANN table regenerates from the committed BENCH_ann.json"
./target/release/covidkg ann-table
grep -q '<!-- ann-table:begin -->' EXPERIMENTS.md

echo "==> KG equivalence property tests (engine vs DFS oracle, incremental vs full rebuild)"
cargo test -p covidkg-kg --test query_prop --offline -q

echo "==> KG smoke: query/profile/node wire byte-identity + cache headers over TCP"
./target/release/covidkg kg-smoke --corpus 48

echo "==> EXPERIMENTS.md KG table regenerates from the committed BENCH_kg.json"
./target/release/covidkg kg-table
grep -q '<!-- kg-table:begin -->' EXPERIMENTS.md

echo "==> trust equivalence property tests (incremental vs full rebuild, prior ledger)"
cargo test -p covidkg-trust --test trust_prop --offline -q

echo "==> trust smoke: trust/bias wire byte-identity + re-rank knob over TCP"
./target/release/covidkg trust-smoke --corpus 48

echo "==> EXPERIMENTS.md trust table regenerates from the committed BENCH_trust.json"
./target/release/covidkg trust-table
grep -q '<!-- trust-table:begin -->' EXPERIMENTS.md

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets --offline"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> clippy not installed; skipping lint"
fi

echo "==> verify OK"
