#!/usr/bin/env sh
# Offline verification: the whole workspace must build, test and (when
# clippy is installed) lint with the network disabled. This is the
# hermeticity gate — a crates.io dependency sneaking into any manifest
# fails resolution here immediately.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test --offline -q (tier-1: root package)"
cargo test --offline -q

echo "==> cargo test --workspace --offline -q"
cargo test --workspace --offline -q

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets --offline"
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "==> clippy not installed; skipping lint"
fi

echo "==> verify OK"
