//! Cross-crate integration tests: the full Fig 1 flow, exercised through
//! the public facade.

use covidkg::{ClassifierChoice, CovidKg, CovidKgConfig, SearchMode};

fn system() -> CovidKg {
    CovidKg::build(CovidKgConfig {
        corpus_size: 36,
        seed: 1234,
        max_training_rows: 400,
        ..CovidKgConfig::default()
    })
    .expect("system builds")
}

#[test]
fn construction_produces_every_fig1_artifact() {
    let s = system();
    let r = s.report();
    assert_eq!(r.publications, 36);
    assert!(r.tables_parsed >= r.publications);
    assert!(r.subtrees > 0);
    assert!(r.kg_nodes >= 18);
    assert!(r.fusion.auto_fused > 0);
    assert!(!s.profiles().is_empty());
    assert!(s.registry().fetch_embeddings("cord19-wdc-w2v").is_some());
}

#[test]
fn all_three_search_engines_answer() {
    let s = system();
    let all = s.search(&SearchMode::AllFields("vaccine".into()), 0);
    assert!(all.total > 0);
    let tables = s.search(&SearchMode::Tables("side-effects".into()), 0);
    assert!(tables.total > 0);
    let scoped = s.search(
        &SearchMode::TitleAbstractCaption {
            title: String::new(),
            abstract_q: "symptom".into(),
            caption: String::new(),
        },
        0,
    );
    assert!(scoped.total > 0);
    // Every result renders with at least one highlighted snippet or title.
    for r in &all.results {
        assert!(!r.id.is_empty());
        assert!(r.score > 0.0);
    }
}

#[test]
fn kg_paths_reach_provenance() {
    let s = system();
    let kg = s.kg();
    let mut checked = 0;
    for node in kg.nodes() {
        if node.provenance.is_empty() {
            continue;
        }
        checked += 1;
        // Every provenance id resolves to a stored publication.
        for paper in &node.provenance {
            assert!(
                s.publications().get(paper).is_some(),
                "dangling provenance {paper} on {}",
                node.label
            );
        }
        // And the node is reachable from the root.
        assert_eq!(kg.path_to_root(node.id)[0], 0);
    }
    assert!(checked > 0, "no fused nodes carry provenance");
}

#[test]
fn search_results_resolve_to_full_documents() {
    let s = system();
    let page = s.search(&SearchMode::AllFields("fever".into()), 0);
    for result in &page.results {
        let doc = s.publications().get(&result.id).expect("result id resolves");
        assert!(doc.path("title").is_some());
        assert!(doc.path("abstract").is_some());
    }
}

#[test]
fn released_svm_is_reusable() {
    // №11/13: the registry payload must round-trip into a working model.
    let s = system();
    let svm = s
        .registry()
        .fetch_svm("metadata-classifier")
        .expect("released SVM deserializes");
    assert!(svm.n_support() > 0);
    // The fetched model makes finite decisions on arbitrary vectors.
    let d = svm.decision(&vec![(0u32, 1.0f32), (3, 0.5)]);
    assert!(d.is_finite());
}

#[test]
fn documents_carry_enrichment_after_build() {
    // §2: publications are "enriched with different classified
    // characteristics by our Deep-Learning models".
    let s = system();
    let enriched = s
        .publications()
        .scan_all()
        .iter()
        .filter(|d| d.path("enrichment.tables").is_some())
        .count();
    assert_eq!(enriched, s.report().publications);
    let doc = s.publications().get("paper-000000").unwrap();
    assert!(doc.path("enrichment.metadata_rows").is_some());
}

#[test]
fn builds_are_deterministic_for_a_seed() {
    let a = system();
    let b = system();
    assert_eq!(a.report().subtrees, b.report().subtrees);
    assert_eq!(a.report().kg_nodes, b.report().kg_nodes);
    let pa = a.search(&SearchMode::AllFields("mask".into()), 0);
    let pb = b.search(&SearchMode::AllFields("mask".into()), 0);
    let ids_a: Vec<&str> = pa.results.iter().map(|r| r.id.as_str()).collect();
    let ids_b: Vec<&str> = pb.results.iter().map(|r| r.id.as_str()).collect();
    assert_eq!(ids_a, ids_b);
}

#[test]
fn durable_system_reopens_without_retraining() {
    let dir = std::env::temp_dir().join(format!("covidkg-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = CovidKgConfig {
        corpus_size: 24,
        seed: 77,
        max_training_rows: 300,
        data_dir: Some(dir.to_string_lossy().into_owned()),
        ..CovidKgConfig::default()
    };
    let (kg_nodes, total_hits) = {
        let s = CovidKg::build(config.clone()).expect("durable build");
        let page = s.search(&SearchMode::AllFields("vaccine".into()), 0);
        (s.kg().len(), page.total)
    };

    // Reopen from disk: no corpus generation, no training.
    let s = CovidKg::reopen(config.clone()).expect("reopen");
    assert_eq!(s.report().publications, 24);
    assert_eq!(s.kg().len(), kg_nodes);
    let page = s.search(&SearchMode::AllFields("vaccine".into()), 0);
    assert_eq!(page.total, total_hits);
    assert!(s.registry().fetch_svm("metadata-classifier").is_some());
    assert!(!s.profiles().is_empty());

    // The reopened system keeps working: ingest new documents.
    let mut s = s;
    let extra: Vec<_> = covidkg::corpus::CorpusGenerator::with_size(30, 77)
        .generate()
        .into_iter()
        .skip(24)
        .collect();
    s.ingest(&extra).expect("ingest after reopen");
    assert_eq!(s.publications().len(), 30);

    // And its post-ingest state persists for the next reopen.
    drop(s);
    let s = CovidKg::reopen(config).expect("second reopen");
    assert_eq!(s.report().publications, 30);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bigru_system_reopens_too() {
    let dir = std::env::temp_dir().join(format!("covidkg-bigru-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = CovidKgConfig {
        corpus_size: 10,
        seed: 3,
        classifier: ClassifierChoice::BiGru,
        max_training_rows: 100,
        data_dir: Some(dir.to_string_lossy().into_owned()),
        ..CovidKgConfig::default()
    };
    let kg_nodes = {
        let s = CovidKg::build(config.clone()).expect("bigru durable build");
        s.kg().len()
    };
    let s = CovidKg::reopen(config).expect("bigru reopen");
    assert_eq!(s.kg().len(), kg_nodes);
    assert_eq!(s.report().publications, 10);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bigru_backed_build_works() {
    let s = CovidKg::build(CovidKgConfig {
        corpus_size: 12,
        seed: 5,
        classifier: ClassifierChoice::BiGru,
        max_training_rows: 120,
        ..CovidKgConfig::default()
    })
    .expect("bigru system builds");
    assert!(s.report().rows_classified > 0);
}
