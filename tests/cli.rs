//! End-to-end tests of the `covidkg` CLI binary.

use std::process::Command;

fn covidkg(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_covidkg"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn build_then_query_a_durable_system() {
    let dir = std::env::temp_dir().join(format!("covidkg-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_string_lossy().into_owned();

    let (stdout, stderr, ok) = covidkg(&[
        "build", "--corpus", "24", "--data-dir", &dir_s, "--seed", "5",
    ]);
    assert!(ok, "build failed: {stderr}");
    assert!(stdout.contains("built: 24 publications"), "{stdout}");
    assert!(stdout.contains("persisted"));

    // Search reopens the persisted system.
    let (stdout, stderr, ok) = covidkg(&["search", "vaccine", "--data-dir", &dir_s]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("results for"), "{stdout}");
    assert!(!stderr.contains("building fresh"), "must reopen, not rebuild: {stderr}");

    // Tables engine + expanded view.
    let (stdout, _, ok) = covidkg(&[
        "search", "side-effects", "--engine", "tables", "--expanded", "--data-dir", &dir_s,
    ]);
    assert!(ok);
    assert!(stdout.contains("matches"));

    // KG browse and node detail.
    let (stdout, _, ok) = covidkg(&["kg", "--depth", "1", "--data-dir", &dir_s]);
    assert!(ok);
    assert!(stdout.starts_with("COVID-19"), "{stdout}");
    let (stdout, _, ok) = covidkg(&["kg", "vaccine", "--data-dir", &dir_s]);
    assert!(ok);
    assert!(stdout.contains("COVID-19 → Vaccine(s)"), "{stdout}");

    // Stats report.
    let (stdout, _, ok) = covidkg(&["stats", "--data-dir", &dir_s]);
    assert!(ok);
    assert!(stdout.contains("storage report"));
    assert!(stdout.contains("publications"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_command_prints_a_survival_report() {
    let (stdout, stderr, ok) = covidkg(&[
        "chaos", "--corpus", "12", "--faults", "25", "--clients", "3", "--requests", "6",
        "--workers", "2", "--seed", "7",
    ]);
    assert!(ok, "chaos run failed: {stderr}\n{stdout}");
    assert!(stdout.contains("crash gauntlet:"), "{stdout}");
    assert!(stdout.contains("faults injected"), "{stdout}");
    assert!(stdout.contains("SURVIVED"), "{stdout}");
}

#[test]
fn bad_usage_fails_with_help() {
    let (_, stderr, ok) = covidkg(&[]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));

    let (_, stderr, ok) = covidkg(&["bogus-command"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (_, stderr, ok) = covidkg(&["search"]);
    assert!(!ok);
    assert!(stderr.contains("needs a query"));

    let (_, stderr, ok) = covidkg(&["search", "x", "--engine", "bogus", "--corpus", "8"]);
    assert!(!ok);
    assert!(stderr.contains("unknown engine"));
}
