//! Integration tests spanning store + search + corpus: the aggregation
//! pipeline semantics the paper's §2.1 engines depend on.

use covidkg::corpus::{CorpusGenerator, Publication};
use covidkg::json::Value;
use covidkg::store::pipeline::{Accumulator, Pipeline};
use covidkg::store::{Collection, CollectionConfig, Filter};
use std::sync::Arc;

fn pubs_collection(n: usize, seed: u64) -> (Arc<Collection>, Vec<Publication>) {
    let pubs = CorpusGenerator::with_size(n, seed).generate();
    let c = Collection::new(
        CollectionConfig::new("publications")
            .with_shards(4)
            .with_text_fields(Publication::text_fields()),
    );
    c.insert_many(pubs.iter().map(Publication::to_doc)).unwrap();
    (Arc::new(c), pubs)
}

#[test]
fn match_first_pipeline_equals_match_late() {
    // The paper's ordering claim is a performance optimization; results
    // must be identical either way.
    let (c, _) = pubs_collection(40, 3);
    let spec = covidkg::json::obj! { "$text" => covidkg::json::obj!{ "$search" => "vaccine" } };
    let fields = Publication::text_fields();

    let early = Pipeline::new()
        .match_spec(&spec, &fields)
        .unwrap()
        .project(["title"])
        .sort_asc("_id");
    let late = Pipeline::new()
        .project(["title", "abstract", "tables", "figure_captions", "body"])
        .match_spec(&spec, &fields)
        .unwrap()
        .project(["title"])
        .sort_asc("_id");
    let a = c.aggregate(&early);
    let b = c.aggregate(&late);
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

#[test]
fn text_index_candidates_agree_with_full_scan() {
    let (c, _) = pubs_collection(40, 9);
    let filter = Filter::text("ventilator", Publication::text_fields());
    // Indexed path (collection.find uses candidates).
    let indexed: Vec<String> = {
        let mut ids: Vec<String> = c
            .find(&filter)
            .iter()
            .filter_map(|d| d.get("_id").and_then(Value::as_str).map(str::to_string))
            .collect();
        ids.sort();
        ids
    };
    // Brute-force path.
    let brute: Vec<String> = {
        let mut ids: Vec<String> = c
            .scan_all()
            .iter()
            .filter(|d| filter.matches(d))
            .filter_map(|d| d.get("_id").and_then(Value::as_str).map(str::to_string))
            .collect();
        ids.sort();
        ids
    };
    assert_eq!(indexed, brute);
    assert!(!indexed.is_empty());
}

#[test]
fn group_by_topic_counts_match_generator() {
    let (c, pubs) = pubs_collection(48, 5);
    let out = c.aggregate(
        &Pipeline::new()
            .group(
                Some("_truth.topic".into()),
                vec![("n".into(), Accumulator::Count)],
            )
            .sort_asc("_id"),
    );
    let topics = covidkg::corpus::all_topics().len();
    assert_eq!(out.len(), topics);
    for g in &out {
        let topic = g.get("_id").unwrap().as_str().unwrap();
        let n = g.get("n").unwrap().as_i64().unwrap() as usize;
        let expected = pubs.iter().filter(|p| p.topic_name == topic).count();
        assert_eq!(n, expected, "topic {topic}");
    }
}

#[test]
fn unwind_tables_then_count() {
    let (c, pubs) = pubs_collection(20, 7);
    let out = c.aggregate(&Pipeline::new().unwind("tables").count("tables_total"));
    let expected: usize = pubs.iter().map(|p| p.tables.len()).sum();
    assert_eq!(
        out[0].get("tables_total").unwrap().as_i64().unwrap() as usize,
        expected
    );
}

#[test]
fn persistence_round_trips_a_corpus() {
    let dir = std::env::temp_dir().join(format!("covidkg-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pubs = CorpusGenerator::with_size(15, 2).generate();
    {
        let db = covidkg::store::Database::open(&dir).unwrap();
        let c = db
            .create_collection(
                CollectionConfig::new("publications")
                    .with_text_fields(Publication::text_fields()),
            )
            .unwrap();
        c.insert_many(pubs.iter().map(Publication::to_doc)).unwrap();
        db.snapshot_all().unwrap();
    }
    {
        let db = covidkg::store::Database::open(&dir).unwrap();
        let c = db
            .create_collection(
                CollectionConfig::new("publications")
                    .with_text_fields(Publication::text_fields()),
            )
            .unwrap();
        assert_eq!(c.len(), 15);
        // Text search works after recovery (index rebuilt).
        let hits = c.find(&Filter::text("study", Publication::text_fields()));
        assert!(!hits.is_empty());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn html_tables_round_trip_through_store_and_parser() {
    let (c, pubs) = pubs_collection(10, 11);
    for p in &pubs {
        let doc = c.get(&p.id).unwrap();
        let tables = doc.path("tables").unwrap().as_array().unwrap();
        assert_eq!(tables.len(), p.tables.len());
        for (stored, original) in tables.iter().zip(&p.tables) {
            let html = stored.path("html").unwrap().as_str().unwrap();
            let parsed = covidkg::tables::parse_tables(html).unwrap();
            assert_eq!(parsed[0].rows, original.rows);
            assert_eq!(parsed[0].caption, original.caption);
        }
    }
}
