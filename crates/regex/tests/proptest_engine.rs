//! Property tests for the regex engine: escaped literals always self-match,
//! match offsets are valid char boundaries, and the engine never panics.

use covidkg_regex::{escape, Regex};
use proptest::prelude::*;

proptest! {
    #[test]
    fn escaped_literal_matches_itself(s in "\\PC{0,24}") {
        let re = Regex::new(&escape(&s)).expect("escaped pattern must compile");
        prop_assert!(re.is_match(&s));
        if !s.is_empty() {
            let hay = format!("@@{s}@@");
            let m = re.find(&hay).expect("must find embedded literal");
            prop_assert_eq!(m.as_str(&hay), s.as_str());
        }
    }

    #[test]
    fn match_offsets_are_char_boundaries(hay in "\\PC{0,48}") {
        let re = Regex::new(r"\w+").unwrap();
        for m in re.find_iter(&hay) {
            prop_assert!(hay.is_char_boundary(m.start));
            prop_assert!(hay.is_char_boundary(m.end));
            prop_assert!(m.start <= m.end);
        }
    }

    #[test]
    fn find_iter_is_non_overlapping_and_ordered(hay in "[ab ]{0,48}") {
        let re = Regex::new("a+b?").unwrap();
        let mut last_end = 0;
        for m in re.find_iter(&hay) {
            prop_assert!(m.start >= last_end);
            last_end = m.end.max(last_end + usize::from(m.start == m.end));
        }
    }

    #[test]
    fn replace_then_no_match_remains(hay in "[a-z0-9 .-]{0,48}") {
        let re = Regex::new(r"\d+").unwrap();
        let replaced = re.replace_all(&hay, "NUM");
        prop_assert!(!Regex::new(r"\d").unwrap().is_match(&replaced));
    }

    #[test]
    fn compiler_never_panics(pattern in "\\PC{0,16}") {
        if let Ok(re) = Regex::new(&pattern) {
            let _ = re.is_match("the quick brown fox 123");
        }
    }

    #[test]
    fn case_insensitive_agrees_with_lowercased_input(word in "[a-zA-Z]{1,12}", hay in "[a-zA-Z ]{0,32}") {
        let ci = Regex::new_ci(&escape(&word)).unwrap();
        let cs = Regex::new(&escape(&word.to_ascii_lowercase())).unwrap();
        prop_assert_eq!(ci.is_match(&hay), cs.is_match(&hay.to_ascii_lowercase()));
    }
}
