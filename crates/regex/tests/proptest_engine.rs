//! Property tests for the regex engine: escaped literals always self-match,
//! match offsets are valid char boundaries, and the engine never panics.
//! Runs on the in-repo `covidkg_rand::prop` harness.

use covidkg_rand::prop::{self, any_string, charset_string};
use covidkg_regex::{escape, Regex};

const AB_SPACE: &[char] = &['a', 'b', ' '];
const HAY_CHARS: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', '0', '1', '2', '9', ' ', '.', '-',
];
const ALPHA: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'A', 'B', 'C', 'D', 'E', 'Z',
];
const ALPHA_SPACE: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'A', 'B', 'C', 'D', 'E', ' ', ' ',
];

#[test]
fn escaped_literal_matches_itself() {
    prop::run(192, |rng| {
        let s = any_string(rng, 0, 24);
        let re = Regex::new(&escape(&s)).expect("escaped pattern must compile");
        assert!(re.is_match(&s));
        if !s.is_empty() {
            let hay = format!("@@{s}@@");
            let m = re.find(&hay).expect("must find embedded literal");
            assert_eq!(m.as_str(&hay), s.as_str());
        }
    });
}

#[test]
fn match_offsets_are_char_boundaries() {
    prop::run(192, |rng| {
        let hay = any_string(rng, 0, 48);
        let re = Regex::new(r"\w+").unwrap();
        for m in re.find_iter(&hay) {
            assert!(hay.is_char_boundary(m.start));
            assert!(hay.is_char_boundary(m.end));
            assert!(m.start <= m.end);
        }
    });
}

#[test]
fn find_iter_is_non_overlapping_and_ordered() {
    prop::run(192, |rng| {
        let hay = charset_string(rng, AB_SPACE, 0, 48);
        let re = Regex::new("a+b?").unwrap();
        let mut last_end = 0;
        for m in re.find_iter(&hay) {
            assert!(m.start >= last_end);
            last_end = m.end.max(last_end + usize::from(m.start == m.end));
        }
    });
}

#[test]
fn replace_then_no_match_remains() {
    prop::run(192, |rng| {
        let hay = charset_string(rng, HAY_CHARS, 0, 48);
        let re = Regex::new(r"\d+").unwrap();
        let replaced = re.replace_all(&hay, "NUM");
        assert!(!Regex::new(r"\d").unwrap().is_match(&replaced));
    });
}

#[test]
fn compiler_never_panics() {
    prop::run(256, |rng| {
        let pattern = any_string(rng, 0, 16);
        if let Ok(re) = Regex::new(&pattern) {
            let _ = re.is_match("the quick brown fox 123");
        }
    });
}

#[test]
fn case_insensitive_agrees_with_lowercased_input() {
    prop::run(192, |rng| {
        let word = charset_string(rng, ALPHA, 1, 12);
        let hay = charset_string(rng, ALPHA_SPACE, 0, 32);
        let ci = Regex::new_ci(&escape(&word)).unwrap();
        let cs = Regex::new(&escape(&word.to_ascii_lowercase())).unwrap();
        assert_eq!(ci.is_match(&hay), cs.is_match(&hay.to_ascii_lowercase()));
    });
}
