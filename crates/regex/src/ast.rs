//! Pattern parser: pattern text → [`Ast`].

use std::fmt;

/// Parsed regular-expression syntax tree.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal character.
    Literal(char),
    /// `.` — any character except `\n`.
    AnyChar,
    /// A character class.
    Class(ClassSet),
    /// `^`
    StartAnchor,
    /// `$`
    EndAnchor,
    /// `\b` (true) / `\B` (false)
    WordBoundary(bool),
    /// Concatenation of sub-expressions.
    Concat(Vec<Ast>),
    /// Alternation between branches.
    Alternate(Vec<Ast>),
    /// Repetition of a sub-expression.
    Repeat {
        /// Repeated expression.
        inner: Box<Ast>,
        /// Minimum repetitions.
        min: u32,
        /// Maximum repetitions (`None` = unbounded).
        max: Option<u32>,
        /// Greedy (default) or lazy (`?` suffix).
        greedy: bool,
    },
    /// A `( … )` group (no capture semantics needed by covidkg).
    Group(Box<Ast>),
}

/// A set of characters: ranges plus negation flag.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct ClassSet {
    /// Inclusive character ranges.
    pub ranges: Vec<(char, char)>,
    /// True for `[^…]`.
    pub negated: bool,
}

impl ClassSet {
    pub(crate) fn single(c: char) -> Self {
        ClassSet {
            ranges: vec![(c, c)],
            negated: false,
        }
    }

    pub(crate) fn push(&mut self, lo: char, hi: char) {
        self.ranges.push((lo, hi));
    }

    /// Built-in `\d`.
    pub(crate) fn digit() -> Self {
        ClassSet {
            ranges: vec![('0', '9')],
            negated: false,
        }
    }

    /// Built-in `\w`.
    pub(crate) fn word() -> Self {
        ClassSet {
            ranges: vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')],
            negated: false,
        }
    }

    /// Built-in `\s`.
    pub(crate) fn space() -> Self {
        ClassSet {
            ranges: vec![
                (' ', ' '),
                ('\t', '\t'),
                ('\n', '\n'),
                ('\r', '\r'),
                ('\u{b}', '\u{c}'),
            ],
            negated: false,
        }
    }

    pub(crate) fn negate(mut self) -> Self {
        self.negated = !self.negated;
        self
    }

    /// Membership test (before case folding, which compilation handles).
    pub(crate) fn contains(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
        inside != self.negated
    }
}

/// Error produced when a pattern fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// Byte position in the pattern.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

pub(crate) fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut p = PatParser { chars, pos: 0 };
    let ast = p.alternate()?;
    if p.pos != p.chars.len() {
        return Err(p.err("unexpected ')'"));
    }
    Ok(ast)
}

struct PatParser {
    chars: Vec<char>,
    pos: usize,
}

impl PatParser {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn alternate(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.concat()?];
        while self.peek() == Some('|') {
            self.pos += 1;
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alternate(branches)
        })
    }

    fn concat(&mut self) -> Result<Ast, ParseError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.atom()?;
            parts.push(self.maybe_repeat(atom)?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().unwrap(),
            _ => Ast::Concat(parts),
        })
    }

    fn atom(&mut self) -> Result<Ast, ParseError> {
        match self.bump() {
            Some('(') => {
                let inner = self.alternate()?;
                if self.bump() != Some(')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(Ast::Group(Box::new(inner)))
            }
            Some('[') => Ok(Ast::Class(self.class()?)),
            Some('.') => Ok(Ast::AnyChar),
            Some('^') => Ok(Ast::StartAnchor),
            Some('$') => Ok(Ast::EndAnchor),
            Some('\\') => self.escape(),
            Some(c @ ('*' | '+' | '?')) => Err(self.err(format!("dangling quantifier '{c}'"))),
            Some(c) => Ok(Ast::Literal(c)),
            None => Err(self.err("unexpected end of pattern")),
        }
    }

    fn escape(&mut self) -> Result<Ast, ParseError> {
        match self.bump() {
            Some('d') => Ok(Ast::Class(ClassSet::digit())),
            Some('D') => Ok(Ast::Class(ClassSet::digit().negate())),
            Some('w') => Ok(Ast::Class(ClassSet::word())),
            Some('W') => Ok(Ast::Class(ClassSet::word().negate())),
            Some('s') => Ok(Ast::Class(ClassSet::space())),
            Some('S') => Ok(Ast::Class(ClassSet::space().negate())),
            Some('b') => Ok(Ast::WordBoundary(true)),
            Some('B') => Ok(Ast::WordBoundary(false)),
            Some('n') => Ok(Ast::Literal('\n')),
            Some('t') => Ok(Ast::Literal('\t')),
            Some('r') => Ok(Ast::Literal('\r')),
            Some(c) if !c.is_alphanumeric() => Ok(Ast::Literal(c)),
            Some(c) => Err(self.err(format!("unknown escape '\\{c}'"))),
            None => Err(self.err("trailing backslash")),
        }
    }

    fn class(&mut self) -> Result<ClassSet, ParseError> {
        let mut set = ClassSet::default();
        if self.peek() == Some('^') {
            self.pos += 1;
            set.negated = true;
        }
        // A leading ']' or '-' is a literal.
        let mut first = true;
        loop {
            let c = match self.bump() {
                Some(']') if !first => return Ok(set),
                Some(c) => c,
                None => return Err(self.err("unclosed character class")),
            };
            first = false;
            let lo = match c {
                '\\' => match self.bump() {
                    Some('d') => {
                        set.push('0', '9');
                        continue;
                    }
                    Some('w') => {
                        for (a, b) in ClassSet::word().ranges {
                            set.push(a, b);
                        }
                        continue;
                    }
                    Some('s') => {
                        for (a, b) in ClassSet::space().ranges {
                            set.push(a, b);
                        }
                        continue;
                    }
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('r') => '\r',
                    Some(e) => e,
                    None => return Err(self.err("trailing backslash in class")),
                },
                c => c,
            };
            // Range if followed by '-' and a non-']' char.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.pos += 1; // consume '-'
                let hi = match self.bump() {
                    Some('\\') => match self.bump() {
                        Some('n') => '\n',
                        Some('t') => '\t',
                        Some('r') => '\r',
                        Some(e) => e,
                        None => return Err(self.err("trailing backslash in class")),
                    },
                    Some(h) => h,
                    None => return Err(self.err("unclosed character class")),
                };
                if hi < lo {
                    return Err(self.err(format!("invalid class range {lo}-{hi}")));
                }
                set.push(lo, hi);
            } else {
                set.push(lo, lo);
            }
        }
    }

    /// Apply `* + ? {m,n}` suffixes (with optional lazy `?`).
    fn maybe_repeat(&mut self, atom: Ast) -> Result<Ast, ParseError> {
        let (min, max) = match self.peek() {
            Some('*') => (0, None),
            Some('+') => (1, None),
            Some('?') => (0, Some(1)),
            Some('{') => {
                // `{…}` only counts as a quantifier if it parses as one;
                // otherwise it is a literal brace (Perl-compatible).
                if let Some((min, max, len)) = self.try_braces() {
                    self.pos += len;
                    let greedy = if self.peek() == Some('?') {
                        self.pos += 1;
                        false
                    } else {
                        true
                    };
                    if let Some(m) = max {
                        if m < min {
                            return Err(self.err("repetition max below min"));
                        }
                    }
                    if !repeatable(&atom) {
                        return Err(self.err("quantifier on anchor"));
                    }
                    return Ok(Ast::Repeat {
                        inner: Box::new(atom),
                        min,
                        max,
                        greedy,
                    });
                }
                return Ok(atom);
            }
            _ => return Ok(atom),
        };
        self.pos += 1;
        let greedy = if self.peek() == Some('?') {
            self.pos += 1;
            false
        } else {
            true
        };
        if !repeatable(&atom) {
            return Err(self.err("quantifier on anchor"));
        }
        Ok(Ast::Repeat {
            inner: Box::new(atom),
            min,
            max,
            greedy,
        })
    }

    /// Try to read `{m}`, `{m,}` or `{m,n}` starting at the current `{`.
    /// Returns `(min, max, consumed_chars)` without consuming on failure.
    fn try_braces(&self) -> Option<(u32, Option<u32>, usize)> {
        let rest = &self.chars[self.pos..];
        debug_assert_eq!(rest.first(), Some(&'{'));
        let close = rest.iter().position(|&c| c == '}')?;
        let body: String = rest[1..close].iter().collect();
        let (min_s, max_s) = match body.split_once(',') {
            Some((a, b)) => (a, Some(b)),
            None => (body.as_str(), None),
        };
        let min: u32 = min_s.parse().ok()?;
        let max = match max_s {
            None => Some(min),
            Some("") => None,
            Some(m) => Some(m.parse().ok()?),
        };
        Some((min, max, close + 1))
    }
}

fn repeatable(ast: &Ast) -> bool {
    !matches!(
        ast,
        Ast::StartAnchor | Ast::EndAnchor | Ast::WordBoundary(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_concat() {
        assert_eq!(
            parse("ab").unwrap(),
            Ast::Concat(vec![Ast::Literal('a'), Ast::Literal('b')])
        );
    }

    #[test]
    fn parses_alternation_precedence() {
        // a|bc == a | (bc)
        let ast = parse("a|bc").unwrap();
        match ast {
            Ast::Alternate(branches) => {
                assert_eq!(branches[0], Ast::Literal('a'));
                assert!(matches!(branches[1], Ast::Concat(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantifier_binds_to_atom() {
        let ast = parse("ab*").unwrap();
        match ast {
            Ast::Concat(parts) => {
                assert_eq!(parts[0], Ast::Literal('a'));
                assert!(matches!(parts[1], Ast::Repeat { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn class_membership() {
        let mut set = ClassSet::default();
        set.push('a', 'f');
        set.push('0', '3');
        assert!(set.contains('c'));
        assert!(set.contains('2'));
        assert!(!set.contains('z'));
        let neg = set.negate();
        assert!(neg.contains('z'));
        assert!(!neg.contains('c'));
    }

    #[test]
    fn braces_parse_forms() {
        assert!(matches!(
            parse("a{3}").unwrap(),
            Ast::Repeat { min: 3, max: Some(3), .. }
        ));
        assert!(matches!(
            parse("a{2,}").unwrap(),
            Ast::Repeat { min: 2, max: None, .. }
        ));
        assert!(matches!(
            parse("a{2,5}").unwrap(),
            Ast::Repeat { min: 2, max: Some(5), .. }
        ));
    }

    #[test]
    fn non_quantifier_braces_are_literals() {
        let ast = parse("{x}").unwrap();
        assert!(matches!(ast, Ast::Concat(_)));
    }

    #[test]
    fn empty_pattern_is_empty_ast() {
        assert_eq!(parse("").unwrap(), Ast::Empty);
        assert_eq!(parse("a|").unwrap(), Ast::Alternate(vec![Ast::Literal('a'), Ast::Empty]));
    }

    #[test]
    fn quantified_anchor_rejected() {
        assert!(parse("^*").is_err());
        assert!(parse(r"\b+").is_err());
    }
}
