//! Pike-style NFA virtual machine.
//!
//! Runs every thread in lock-step over the input, so runtime is
//! `O(len(input) × len(program))` regardless of pattern shape. Thread order
//! encodes priority: earlier threads win, which yields Perl-style
//! leftmost-first semantics (greedy/lazy behaviour falls out of the order
//! of `Split` targets chosen at compile time).

use crate::compile::{Assertion, Inst, Program};
use crate::Match;

/// A live NFA thread: program counter plus the match start position.
#[derive(Clone, Copy)]
struct Thread {
    pc: usize,
    start: usize,
}

/// Priority-ordered thread list with O(1) pc-dedup via generation stamps.
struct ThreadList {
    threads: Vec<Thread>,
    seen_gen: Vec<u32>,
    gen: u32,
}

impl ThreadList {
    fn new(len: usize) -> Self {
        ThreadList {
            threads: Vec::with_capacity(len),
            seen_gen: vec![0; len],
            gen: 0,
        }
    }

    fn clear(&mut self) {
        self.threads.clear();
        self.gen += 1;
    }

    fn contains(&self, pc: usize) -> bool {
        self.seen_gen[pc] == self.gen
    }

    fn mark(&mut self, pc: usize) {
        self.seen_gen[pc] = self.gen;
    }
}

/// Zero-width context at an input position.
#[derive(Clone, Copy)]
struct Ctx {
    /// Absolute byte offset in the haystack.
    at: usize,
    /// Haystack length in bytes.
    len: usize,
    /// Character before the position, if any.
    prev: Option<char>,
    /// Character at the position, if any.
    next: Option<char>,
}

impl Ctx {
    fn check(&self, a: Assertion) -> bool {
        match a {
            Assertion::StartText => self.at == 0,
            Assertion::EndText => self.at == self.len,
            Assertion::WordBoundary => self.word_boundary(),
            Assertion::NotWordBoundary => !self.word_boundary(),
        }
    }

    fn word_boundary(&self) -> bool {
        is_word(self.prev) != is_word(self.next)
    }
}

fn is_word(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Add `pc`'s epsilon closure to `list`, stopping at consuming instructions
/// and `Match`. Recursion depth is bounded by program length (each pc is
/// visited at most once per step thanks to the dedup marks).
fn add_thread(prog: &Program, list: &mut ThreadList, pc: usize, start: usize, ctx: Ctx) {
    if list.contains(pc) {
        return;
    }
    list.mark(pc);
    match &prog.insts[pc] {
        Inst::Jmp(to) => add_thread(prog, list, *to, start, ctx),
        Inst::Split(a, b) => {
            add_thread(prog, list, *a, start, ctx);
            add_thread(prog, list, *b, start, ctx);
        }
        Inst::Assert(a) => {
            if ctx.check(*a) {
                add_thread(prog, list, pc + 1, start, ctx);
            }
        }
        Inst::Class(_) | Inst::AnyChar | Inst::Match => {
            list.threads.push(Thread { pc, start });
        }
    }
}

/// Search `haystack[from..]` for the leftmost match.
pub(crate) fn search(prog: &Program, haystack: &str, from: usize) -> Option<Match> {
    let n_insts = prog.insts.len();
    let mut clist = ThreadList::new(n_insts);
    let mut nlist = ThreadList::new(n_insts);
    clist.clear();
    nlist.clear();

    let tail = &haystack[from..];
    let prev_of_from = haystack[..from].chars().next_back();
    let mut matched: Option<Match> = None;

    // Iterate over char positions from..=len. `iter` yields the char at the
    // current position; `prev` tracks the previous char for \b.
    let mut chars = tail.char_indices().peekable();
    let mut prev = prev_of_from;
    loop {
        let (at, cur) = match chars.peek().copied() {
            Some((i, c)) => (from + i, Some(c)),
            None => (haystack.len(), None),
        };
        let ctx = Ctx {
            at,
            len: haystack.len(),
            prev,
            next: cur,
        };

        // Spawn a fresh lowest-priority thread at this position while no
        // match has been committed (leftmost semantics).
        if matched.is_none() && (!prog.anchored_start || at == 0) {
            add_thread(prog, &mut clist, 0, at, ctx);
        }
        if clist.threads.is_empty()
            && (matched.is_some() || cur.is_none() || prog.anchored_start) {
                break;
            }

        nlist.clear();
        let next_ctx = |consumed: char| {
            // Context at the position after consuming `cur`.
            let next_at = at + consumed.len_utf8();
            let next_char = {
                let rest = &haystack[next_at..];
                rest.chars().next()
            };
            Ctx {
                at: next_at,
                len: haystack.len(),
                prev: Some(consumed),
                next: next_char,
            }
        };

        let mut i = 0;
        while i < clist.threads.len() {
            let th = clist.threads[i];
            match &prog.insts[th.pc] {
                Inst::Class(set) => {
                    if let Some(c) = cur {
                        let c = if prog.case_insensitive {
                            c.to_ascii_lowercase()
                        } else {
                            c
                        };
                        if set.contains(c) {
                            add_thread(prog, &mut nlist, th.pc + 1, th.start, next_ctx(cur.unwrap()));
                        }
                    }
                }
                Inst::AnyChar => {
                    if let Some(c) = cur {
                        if c != '\n' {
                            add_thread(prog, &mut nlist, th.pc + 1, th.start, next_ctx(c));
                        }
                    }
                }
                Inst::Match => {
                    matched = Some(Match {
                        start: th.start,
                        end: at,
                    });
                    // Lower-priority threads can only produce a later or
                    // lower-priority match; cut them.
                    break;
                }
                // Epsilon instructions never appear in the list.
                Inst::Jmp(_) | Inst::Split(_, _) | Inst::Assert(_) => unreachable!(),
            }
            i += 1;
        }

        std::mem::swap(&mut clist, &mut nlist);
        if cur.is_none() {
            break;
        }
        prev = cur;
        chars.next();
    }
    matched
}

#[cfg(test)]
mod tests {
    use crate::Regex;

    // The VM is exercised end-to-end through the public API in lib.rs;
    // these tests pin down edge cases in the search loop itself.

    #[test]
    fn match_at_end_of_input() {
        let re = Regex::new("d$").unwrap();
        let m = re.find("covid").unwrap();
        assert_eq!((m.start, m.end), (4, 5));
    }

    #[test]
    fn empty_pattern_matches_empty_prefix() {
        let re = Regex::new("").unwrap();
        let m = re.find("abc").unwrap();
        assert_eq!((m.start, m.end), (0, 0));
    }

    #[test]
    fn anchored_search_fails_fast_mid_string() {
        let re = Regex::new("^x").unwrap();
        assert!(!re.is_match("yyyyx"));
    }

    #[test]
    fn find_from_offset_respects_word_boundary_context() {
        // When find_iter resumes after "un", \bmask must not match inside
        // "unmask" even though the scan starts at byte 2.
        let re = Regex::new(r"\bmask").unwrap();
        let hay = "unmask mask";
        let ms: Vec<_> = re.find_iter(hay).collect();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].start, 7);
    }

    #[test]
    fn multibyte_offsets_are_byte_accurate() {
        let re = Regex::new("19").unwrap();
        let hay = "é COVID‑19"; // non-ASCII dash
        let m = re.find(hay).unwrap();
        assert_eq!(m.as_str(hay), "19");
    }
}
