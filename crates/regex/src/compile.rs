//! AST → NFA program compilation (Thompson construction over a flat
//! instruction list, as in Pike's VM).

use crate::ast::{Ast, ClassSet};

/// One NFA instruction.
#[derive(Debug, Clone)]
pub(crate) enum Inst {
    /// Consume one character matching the class.
    Class(ClassSet),
    /// Consume any character except `\n`.
    AnyChar,
    /// Split execution: try `a` first (higher priority), then `b`.
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Zero-width assertion.
    Assert(Assertion),
    /// Successful match.
    Match,
}

/// Zero-width assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Assertion {
    StartText,
    EndText,
    WordBoundary,
    NotWordBoundary,
}

/// Compiled program plus match-time flags.
#[derive(Debug, Clone)]
pub(crate) struct Program {
    pub insts: Vec<Inst>,
    /// Case-insensitive matching: input chars are lowercased before class
    /// tests (classes are compiled lowercased too).
    pub case_insensitive: bool,
    /// True when the pattern starts with `^` on every branch — lets the
    /// search loop skip restarting at every position.
    pub anchored_start: bool,
}

pub(crate) fn compile(ast: &Ast, case_insensitive: bool) -> Program {
    let mut c = Compiler {
        insts: Vec::new(),
        ci: case_insensitive,
    };
    c.emit(ast);
    c.insts.push(Inst::Match);
    let anchored_start = starts_anchored(ast);
    Program {
        insts: c.insts,
        case_insensitive,
        anchored_start,
    }
}

fn starts_anchored(ast: &Ast) -> bool {
    match ast {
        Ast::StartAnchor => true,
        Ast::Concat(parts) => parts.first().is_some_and(starts_anchored),
        Ast::Alternate(branches) => branches.iter().all(starts_anchored),
        Ast::Group(inner) => starts_anchored(inner),
        _ => false,
    }
}

struct Compiler {
    insts: Vec<Inst>,
    ci: bool,
}

impl Compiler {
    fn emit(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Literal(c) => {
                let c = if self.ci { c.to_ascii_lowercase() } else { *c };
                self.insts.push(Inst::Class(ClassSet::single(c)));
            }
            Ast::AnyChar => self.insts.push(Inst::AnyChar),
            Ast::Class(set) => {
                let set = if self.ci { fold_class(set) } else { set.clone() };
                self.insts.push(Inst::Class(set));
            }
            Ast::StartAnchor => self.insts.push(Inst::Assert(Assertion::StartText)),
            Ast::EndAnchor => self.insts.push(Inst::Assert(Assertion::EndText)),
            Ast::WordBoundary(true) => self.insts.push(Inst::Assert(Assertion::WordBoundary)),
            Ast::WordBoundary(false) => {
                self.insts.push(Inst::Assert(Assertion::NotWordBoundary))
            }
            Ast::Group(inner) => self.emit(inner),
            Ast::Concat(parts) => {
                for p in parts {
                    self.emit(p);
                }
            }
            Ast::Alternate(branches) => self.emit_alternate(branches),
            Ast::Repeat {
                inner,
                min,
                max,
                greedy,
            } => self.emit_repeat(inner, *min, *max, *greedy),
        }
    }

    fn emit_alternate(&mut self, branches: &[Ast]) {
        // For branches b1..bn:
        //   split L1, next1 ; L1: b1 ; jmp END ; next1: split L2, next2 ; …
        let mut jump_to_end = Vec::new();
        for (i, branch) in branches.iter().enumerate() {
            if i + 1 < branches.len() {
                let split_at = self.insts.len();
                self.insts.push(Inst::Split(0, 0)); // patched below
                self.emit(branch);
                jump_to_end.push(self.insts.len());
                self.insts.push(Inst::Jmp(0)); // patched below
                let after = self.insts.len();
                self.insts[split_at] = Inst::Split(split_at + 1, after);
            } else {
                self.emit(branch);
            }
        }
        let end = self.insts.len();
        for j in jump_to_end {
            self.insts[j] = Inst::Jmp(end);
        }
    }

    fn emit_repeat(&mut self, inner: &Ast, min: u32, max: Option<u32>, greedy: bool) {
        // Mandatory prefix: `min` copies.
        for _ in 0..min {
            self.emit(inner);
        }
        match max {
            None => {
                if min == 0 {
                    // e* :  L: split B, END ; B: e ; jmp L ; END:
                    let l = self.insts.len();
                    self.insts.push(Inst::Split(0, 0));
                    self.emit(inner);
                    self.insts.push(Inst::Jmp(l));
                    let end = self.insts.len();
                    self.insts[l] = if greedy {
                        Inst::Split(l + 1, end)
                    } else {
                        Inst::Split(end, l + 1)
                    };
                } else {
                    // e+ tail after min copies: L: split B, END with loop back.
                    let l = self.insts.len();
                    self.insts.push(Inst::Split(0, 0));
                    self.emit(inner);
                    self.insts.push(Inst::Jmp(l));
                    let end = self.insts.len();
                    self.insts[l] = if greedy {
                        Inst::Split(l + 1, end)
                    } else {
                        Inst::Split(end, l + 1)
                    };
                }
            }
            Some(max) => {
                // (max - min) optional copies, each with its own exit split.
                let mut splits = Vec::new();
                for _ in min..max {
                    let s = self.insts.len();
                    self.insts.push(Inst::Split(0, 0));
                    splits.push(s);
                    self.emit(inner);
                }
                let end = self.insts.len();
                for s in splits {
                    self.insts[s] = if greedy {
                        Inst::Split(s + 1, end)
                    } else {
                        Inst::Split(end, s + 1)
                    };
                }
            }
        }
    }
}

/// Case-fold a class for ASCII case-insensitive matching: ranges that
/// intersect A-Z get a lowercase twin and vice versa, then the VM
/// lowercases input characters. (ASCII folding is sufficient for the
/// search/pre-processing workloads in covidkg.)
fn fold_class(set: &ClassSet) -> ClassSet {
    let mut out = ClassSet {
        ranges: Vec::with_capacity(set.ranges.len() * 2),
        negated: set.negated,
    };
    for &(lo, hi) in &set.ranges {
        out.push(lo, hi);
        // Add the lowercase image of the uppercase overlap.
        let ulo = lo.max('A');
        let uhi = hi.min('Z');
        if ulo <= uhi {
            out.push(
                ulo.to_ascii_lowercase(),
                uhi.to_ascii_lowercase(),
            );
        }
        // The VM lowercases input, so lowercase ranges already cover a-z
        // input from either case; nothing more needed.
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;

    #[test]
    fn literal_compiles_to_class_then_match() {
        let p = compile(&parse("ab").unwrap(), false);
        assert_eq!(p.insts.len(), 3);
        assert!(matches!(p.insts[2], Inst::Match));
    }

    #[test]
    fn star_emits_split_loop() {
        let p = compile(&parse("a*").unwrap(), false);
        assert!(matches!(p.insts[0], Inst::Split(1, 3)));
        assert!(matches!(p.insts[2], Inst::Jmp(0)));
    }

    #[test]
    fn lazy_star_swaps_split_priority() {
        let p = compile(&parse("a*?").unwrap(), false);
        assert!(matches!(p.insts[0], Inst::Split(3, 1)));
    }

    #[test]
    fn anchored_detection() {
        assert!(compile(&parse("^a").unwrap(), false).anchored_start);
        assert!(compile(&parse("^a|^b").unwrap(), false).anchored_start);
        assert!(!compile(&parse("a").unwrap(), false).anchored_start);
        assert!(!compile(&parse("^a|b").unwrap(), false).anchored_start);
    }

    #[test]
    fn case_fold_adds_lowercase_twins() {
        let folded = fold_class(&ClassSet {
            ranges: vec![('A', 'Z')],
            negated: false,
        });
        assert!(folded.contains('q'));
        assert!(folded.contains('Q'));
    }
}
