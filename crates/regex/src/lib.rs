#![warn(missing_docs)]

//! # covidkg-regex
//!
//! A small regular-expression engine built on a Thompson NFA executed by a
//! Pike-style virtual machine (linear time in `input × program` — no
//! exponential backtracking, so the store can safely run user-supplied
//! `$regex` queries from the search front-end).
//!
//! The COVIDKG paper uses regular expressions in two places, both covered by
//! this engine:
//!
//! * §2.1 — the `$match` stage performs "text-based search through regular
//!   expressions that are stemmed from the root users searched terms";
//! * §3.4 — the numeric pre-processor encodes numbers/ranges/dates/units via
//!   ordered regular-expression substitutions.
//!
//! Supported syntax: literals, `.`, classes `[a-z0-9_]` / `[^…]`, escapes
//! `\d \D \w \W \s \S \b \B` and punctuation escapes, groups `(…)`,
//! alternation `|`, repetition `* + ? {m} {m,} {m,n}` (greedy and lazy `?`
//! suffix), anchors `^ $`. Matching is leftmost-first (like Perl/RE2 thread
//! priority). Case-insensitive matching is available via [`Regex::new_ci`].

mod ast;
mod compile;
mod vm;

pub use ast::ParseError;

use compile::Program;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
}

/// A single match: byte offsets into the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Byte offset of the first matched character.
    pub start: usize,
    /// Byte offset one past the last matched character.
    pub end: usize,
}

impl Match {
    /// The matched slice of `haystack`.
    pub fn as_str<'h>(&self, haystack: &'h str) -> &'h str {
        &haystack[self.start..self.end]
    }
}

impl Regex {
    /// Compile a pattern (case-sensitive).
    pub fn new(pattern: &str) -> Result<Regex, ParseError> {
        Self::with_case(pattern, false)
    }

    /// Compile a pattern with case-insensitive matching.
    pub fn new_ci(pattern: &str) -> Result<Regex, ParseError> {
        Self::with_case(pattern, true)
    }

    fn with_case(pattern: &str, ci: bool) -> Result<Regex, ParseError> {
        let ast = ast::parse(pattern)?;
        let program = compile::compile(&ast, ci);
        Ok(Regex {
            pattern: pattern.to_string(),
            program,
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Does the pattern match anywhere in `haystack`?
    pub fn is_match(&self, haystack: &str) -> bool {
        vm::search(&self.program, haystack, 0).is_some()
    }

    /// Leftmost match, if any.
    pub fn find(&self, haystack: &str) -> Option<Match> {
        vm::search(&self.program, haystack, 0)
    }

    /// Iterator over non-overlapping matches, left to right.
    pub fn find_iter<'r, 'h>(&'r self, haystack: &'h str) -> FindIter<'r, 'h> {
        FindIter {
            re: self,
            haystack,
            at: 0,
        }
    }

    /// Replace every non-overlapping match with `replacement` (literal, no
    /// capture interpolation — the pre-processor never needs it).
    pub fn replace_all(&self, haystack: &str, replacement: &str) -> String {
        let mut out = String::with_capacity(haystack.len());
        let mut last = 0;
        for m in self.find_iter(haystack) {
            out.push_str(&haystack[last..m.start]);
            out.push_str(replacement);
            last = m.end;
        }
        out.push_str(&haystack[last..]);
        out
    }

    /// Replace every match using a closure over the matched text.
    pub fn replace_all_with<F>(&self, haystack: &str, mut f: F) -> String
    where
        F: FnMut(&str) -> String,
    {
        let mut out = String::with_capacity(haystack.len());
        let mut last = 0;
        for m in self.find_iter(haystack) {
            out.push_str(&haystack[last..m.start]);
            out.push_str(&f(m.as_str(haystack)));
            last = m.end;
        }
        out.push_str(&haystack[last..]);
        out
    }

    /// Split `haystack` around matches.
    pub fn split<'h>(&self, haystack: &'h str) -> Vec<&'h str> {
        let mut out = Vec::new();
        let mut last = 0;
        for m in self.find_iter(haystack) {
            out.push(&haystack[last..m.start]);
            last = m.end;
        }
        out.push(&haystack[last..]);
        out
    }
}

/// Escape a literal string so it matches itself when compiled.
pub fn escape(literal: &str) -> String {
    let mut out = String::with_capacity(literal.len());
    for ch in literal.chars() {
        if "\\.+*?()|[]{}^$".contains(ch) {
            out.push('\\');
        }
        out.push(ch);
    }
    out
}

/// Iterator over non-overlapping matches. See [`Regex::find_iter`].
pub struct FindIter<'r, 'h> {
    re: &'r Regex,
    haystack: &'h str,
    at: usize,
}

impl Iterator for FindIter<'_, '_> {
    type Item = Match;

    fn next(&mut self) -> Option<Match> {
        if self.at > self.haystack.len() {
            return None;
        }
        let m = vm::search(&self.re.program, self.haystack, self.at)?;
        // Advance past the match; for empty matches step one char to
        // guarantee progress.
        self.at = if m.end == m.start {
            next_char_boundary(self.haystack, m.end)
        } else {
            m.end
        };
        Some(m)
    }
}

fn next_char_boundary(s: &str, at: usize) -> usize {
    if at >= s.len() {
        return s.len() + 1;
    }
    let mut next = at + 1;
    while next < s.len() && !s.is_char_boundary(next) {
        next += 1;
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all(re: &Regex, hay: &str) -> Vec<String> {
        re.find_iter(hay).map(|m| m.as_str(hay).to_string()).collect()
    }

    #[test]
    fn literal_match() {
        let re = Regex::new("mask").unwrap();
        assert!(re.is_match("face masks work"));
        assert!(!re.is_match("vaccine"));
        let m = re.find("face masks").unwrap();
        assert_eq!((m.start, m.end), (5, 9));
    }

    #[test]
    fn alternation_and_groups() {
        let re = Regex::new("(covid|corona)(virus)?").unwrap();
        assert_eq!(all(&re, "covid coronavirus"), ["covid", "coronavirus"]);
    }

    #[test]
    fn repetition_operators() {
        let re = Regex::new("ab*c").unwrap();
        assert!(re.is_match("ac"));
        assert!(re.is_match("abbbc"));
        let re = Regex::new("ab+c").unwrap();
        assert!(!re.is_match("ac"));
        assert!(re.is_match("abc"));
        let re = Regex::new("ab?c").unwrap();
        assert!(re.is_match("ac"));
        assert!(re.is_match("abc"));
        assert!(!re.is_match("abbc"));
    }

    #[test]
    fn counted_repetition() {
        let re = Regex::new("a{3}").unwrap();
        assert!(re.is_match("aaa"));
        assert!(!re.is_match("aa"));
        let re = Regex::new("^a{2,4}$").unwrap();
        assert!(re.is_match("aa"));
        assert!(re.is_match("aaaa"));
        assert!(!re.is_match("aaaaa"));
        assert!(!re.is_match("a"));
        let re = Regex::new("^a{2,}$").unwrap();
        assert!(re.is_match("aaaaaa"));
        assert!(!re.is_match("a"));
    }

    #[test]
    fn classes_and_escapes() {
        let re = Regex::new(r"\d+\.\d+").unwrap();
        assert_eq!(all(&re, "pH 7.4 at 37.0C"), ["7.4", "37.0"]);
        let re = Regex::new(r"[A-Za-z_]\w*").unwrap();
        assert_eq!(all(&re, "x1 _y2"), ["x1", "_y2"]);
        let re = Regex::new(r"[^aeiou ]+").unwrap();
        assert_eq!(all(&re, "dose one"), ["d", "s", "n"]);
    }

    #[test]
    fn anchors() {
        let re = Regex::new("^covid$").unwrap();
        assert!(re.is_match("covid"));
        assert!(!re.is_match(" covid"));
        assert!(!re.is_match("covid "));
    }

    #[test]
    fn word_boundaries() {
        let re = Regex::new(r"\bmask\b").unwrap();
        assert!(re.is_match("wear a mask now"));
        assert!(!re.is_match("unmasked"));
        let re = Regex::new(r"\Bask\B").unwrap();
        assert!(re.is_match("unmasked"));
        assert!(!re.is_match("ask"));
    }

    #[test]
    fn dot_matches_any_but_newline() {
        let re = Regex::new("a.c").unwrap();
        assert!(re.is_match("abc"));
        assert!(re.is_match("a-c"));
        assert!(!re.is_match("a\nc"));
    }

    #[test]
    fn case_insensitive() {
        let re = Regex::new_ci("covid-19").unwrap();
        assert!(re.is_match("COVID-19 findings"));
        assert!(re.is_match("CoViD-19"));
        assert!(!Regex::new("covid-19").unwrap().is_match("COVID-19"));
    }

    #[test]
    fn replace_all_literal() {
        let re = Regex::new(r"\d+").unwrap();
        assert_eq!(re.replace_all("5-10 mg", "NUM"), "NUM-NUM mg");
    }

    #[test]
    fn replace_all_with_closure() {
        let re = Regex::new(r"\d+").unwrap();
        let out = re.replace_all_with("3 and 12", |m| format!("<{m}>"));
        assert_eq!(out, "<3> and <12>");
    }

    #[test]
    fn split_around_matches() {
        let re = Regex::new(r"\s*,\s*").unwrap();
        assert_eq!(re.split("a, b ,c"), ["a", "b", "c"]);
    }

    #[test]
    fn leftmost_first_semantics() {
        // Alternation prefers the earlier branch at the same start point.
        let re = Regex::new("a|ab").unwrap();
        assert_eq!(re.find("ab").map(|m| m.end), Some(1));
        // Greedy star takes the longest.
        let re = Regex::new("a*").unwrap();
        assert_eq!(re.find("aaa").map(|m| m.end), Some(3));
    }

    #[test]
    fn lazy_repetition() {
        let re = Regex::new("<.+?>").unwrap();
        assert_eq!(all(&re, "<a><b>"), ["<a>", "<b>"]);
        let greedy = Regex::new("<.+>").unwrap();
        assert_eq!(all(&greedy, "<a><b>"), ["<a><b>"]);
    }

    #[test]
    fn empty_match_iteration_terminates() {
        let re = Regex::new("x*").unwrap();
        let ms: Vec<_> = re.find_iter("ab").collect();
        // One empty match at each position: 0, 1, 2.
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn unicode_haystacks() {
        let re = Regex::new("médec.ne").unwrap();
        assert!(re.is_match("la médecine moderne"));
        let re = Regex::new(".").unwrap();
        assert_eq!(all(&re, "é漢"), ["é", "漢"]);
    }

    #[test]
    fn escape_produces_literal_pattern() {
        let special = "a.b*c?(d)[e]{f}|g^h$i\\j";
        let re = Regex::new(&escape(special)).unwrap();
        assert!(re.is_match(special));
        assert!(!re.is_match("axb"));
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in ["(", ")", "[", "a{2,1}", "*", "a\\", "[z-a]"] {
            assert!(Regex::new(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn pathological_pattern_is_linear() {
        // Classic exponential-backtracking killer: (a+)+b against aaaa…c.
        let re = Regex::new("(a+)+b").unwrap();
        let hay = "a".repeat(2_000) + "c";
        let start = std::time::Instant::now();
        assert!(!re.is_match(&hay));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "Pike VM must stay linear"
        );
    }

    #[test]
    fn class_ranges_with_dash_literal() {
        let re = Regex::new(r"[a\-z]+").unwrap();
        assert!(re.is_match("a-z"));
        assert!(!re.is_match("b"));
        let re = Regex::new("[-az]+").unwrap(); // leading dash is literal
        assert_eq!(all(&re, "a-z"), ["a-z"]);
    }

    #[test]
    fn negated_class_allows_newline_unless_listed() {
        let re = Regex::new("[^a]").unwrap();
        assert!(re.is_match("\n"));
    }

    #[test]
    fn braces_without_quantifier_are_literal() {
        let re = Regex::new("a{x}").unwrap();
        assert!(re.is_match("a{x}"));
    }
}
