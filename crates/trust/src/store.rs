//! The incrementally-maintained trust store.
//!
//! [`TrustStore`] mirrors the shape of
//! `covidkg_kg::materialize::ProfileStore`: it holds per-paper facts
//! keyed by source paper, rebuilds everything on
//! [`TrustStore::rebuild_all`] (initial build, or the bounded mutation
//! log overflowed), and replays only touched papers on
//! [`TrustStore::refresh`] — the same `Collection::touched_since` hook
//! the profile store uses. From the facts it derives venue credibility
//! priors ([`SourceLedger`]), per-node base trust (prior mass of a
//! node's provenance papers × corroboration across *independent*
//! venues), and propagated node trust (damped sweeps over child/parent
//! edges, [`crate::propagate`]).
//!
//! Equivalence contract: after any mutation sequence the store's trust
//! vector and every served document are **bit-identical** to a
//! from-scratch [`TrustStore::rebuild_all`] over the same papers and
//! graph. Priors are a pure function of delta-maintained aggregates;
//! bases are a pure function of priors + facts + graph; propagation
//! re-sweeps exactly the dirty ball against the stored sweep history.
//! The property test in `tests/trust_prop.rs` pins the whole chain.
//!
//! Freshness contract: the store is stamped with the collection
//! mutation epoch it replayed up to and the system generation it was
//! refreshed at; every document embeds both, and the serve-layer cache
//! keys on the generation — so a stale trust score is never served
//! after an ingest.

use crate::prior::{PaperFacts, SourceLedger, VenueScore, PRIOR_FLOOR};
use crate::propagate::{propagate_dirty, propagate_full, SWEEPS};
use covidkg_json::{obj, Value};
use covidkg_kg::{KnowledgeGraph, NodeKind};
use std::collections::{BTreeMap, BTreeSet};

/// Base trust of a node with no literature provenance (seeded by the
/// medical expert): scaled by the node's fusion confidence.
pub const SEEDED_BASE: f64 = 0.25;

/// Counters for the `covidkg_trust_*` metrics series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrustStoreStats {
    /// Papers currently contributing facts.
    pub papers: usize,
    /// Venues currently holding papers.
    pub venues: usize,
    /// Distinct claims across all venues.
    pub claims: usize,
    /// Graph nodes with a propagated trust score.
    pub nodes: usize,
    /// Incremental refreshes applied (mutation-log driven).
    pub incremental_refreshes: u64,
    /// Full rebuilds (initial build, or the bounded log overflowed).
    pub full_rebuilds: u64,
    /// Node-sweep recomputations across all refreshes (dirty-ball work).
    pub nodes_repropagated: u64,
    /// Collection mutation epoch the store has replayed up to.
    pub epoch: u64,
    /// System generation the store was last refreshed at.
    pub generation: u64,
}

/// Live trust scores over sources and KG nodes, kept fresh per-paper.
#[derive(Debug, Clone, Default)]
pub struct TrustStore {
    /// paper id → its extracted facts. BTreeMap is the canonical order
    /// the equivalence contract depends on.
    by_paper: BTreeMap<String, PaperFacts>,
    /// Delta-maintained venue aggregates.
    ledger: SourceLedger,
    /// Venue scores, recomputed from the ledger every refresh.
    scores: BTreeMap<String, VenueScore>,
    // --- graph snapshot (labels are immutable; topology only grows) ---
    labels: Vec<String>,
    kinds: Vec<NodeKind>,
    /// Sorted, deduplicated parents ∪ children per node.
    neigh: Vec<Vec<usize>>,
    prov: Vec<Vec<String>>,
    conf: Vec<f64>,
    /// Per-node base trust (pure function of scores + facts + graph).
    base: Vec<f64>,
    /// Jacobi sweep history, `SWEEPS + 1` rows; the last row is the
    /// trust vector. Kept so dirty-ball updates can read unchanged
    /// iterates at the frontier.
    history: Vec<Vec<f64>>,
    epoch: u64,
    generation: u64,
    incremental_refreshes: u64,
    full_rebuilds: u64,
    nodes_repropagated: u64,
}

impl TrustStore {
    /// Empty store.
    pub fn new() -> TrustStore {
        TrustStore::default()
    }

    /// Replace the whole corpus and graph snapshot: the initial build,
    /// and the fallback when the bounded mutation log no longer covers
    /// the window (`touched_since` returned `None`). Paper order does
    /// not matter — the store canonicalizes by paper id.
    pub fn rebuild_all(&mut self, papers: Vec<PaperFacts>, kg: &KnowledgeGraph, epoch: u64) {
        self.by_paper.clear();
        self.ledger = SourceLedger::new();
        for f in papers {
            self.apply(f.paper_id.clone(), Some(f));
        }
        self.scores = self.ledger.score();
        self.snapshot_graph(kg);
        self.base = self.compute_bases();
        self.history = propagate_full(&self.neigh, &self.base);
        self.nodes_repropagated += (self.base.len() as u64) * (SWEEPS as u64);
        self.epoch = epoch;
        self.full_rebuilds += 1;
    }

    /// Incremental refresh: replay only the given papers (the mutation
    /// log's touched ids unioned with the ingest new-id list), rescore
    /// venues from the delta-maintained aggregates, and re-propagate
    /// only the dirty ball. `extract` re-derives one paper's facts
    /// (`None` = paper gone).
    pub fn refresh(
        &mut self,
        epoch: u64,
        paper_ids: &[String],
        kg: &KnowledgeGraph,
        mut extract: impl FnMut(&str) -> Option<PaperFacts>,
    ) {
        let mut ids: Vec<&String> = paper_ids.iter().collect();
        ids.sort();
        ids.dedup();
        for id in ids {
            let facts = extract(id);
            self.apply(id.clone(), facts);
        }
        self.scores = self.ledger.score();
        let mut dirty = self.snapshot_graph(kg);
        let new_base = self.compute_bases();
        for (n, &b) in new_base.iter().enumerate() {
            if self.base.get(n) != Some(&b) {
                dirty.insert(n);
            }
        }
        self.base = new_base;
        self.nodes_repropagated += propagate_dirty(&mut self.history, &self.neigh, &self.base, &dirty);
        self.epoch = epoch;
        self.incremental_refreshes += 1;
    }

    /// Upsert or remove one paper's facts, keeping the ledger in exact
    /// sync with `by_paper`.
    fn apply(&mut self, paper_id: String, facts: Option<PaperFacts>) {
        if let Some(old) = self.by_paper.remove(&paper_id) {
            self.ledger.remove(&old);
        }
        if let Some(f) = facts {
            let f = f.canonicalize();
            self.ledger.add(&f);
            self.by_paper.insert(paper_id, f);
        }
    }

    /// Re-snapshot the graph, returning nodes whose adjacency changed
    /// (new nodes included). Labels are immutable and confidence /
    /// provenance changes surface through the base diff, so adjacency
    /// is the only topology signal propagation needs.
    fn snapshot_graph(&mut self, kg: &KnowledgeGraph) -> BTreeSet<usize> {
        let old_len = self.neigh.len();
        let mut dirty = BTreeSet::new();
        let mut labels = Vec::with_capacity(kg.len());
        let mut kinds = Vec::with_capacity(kg.len());
        let mut neigh = Vec::with_capacity(kg.len());
        let mut prov = Vec::with_capacity(kg.len());
        let mut conf = Vec::with_capacity(kg.len());
        for n in kg.nodes() {
            let mut adj: Vec<usize> = n.parents.iter().chain(n.children.iter()).copied().collect();
            adj.sort_unstable();
            adj.dedup();
            if n.id >= old_len || adj != self.neigh[n.id] {
                dirty.insert(n.id);
            }
            labels.push(n.label.clone());
            kinds.push(n.kind);
            neigh.push(adj);
            prov.push(n.provenance.clone());
            conf.push(n.confidence);
        }
        self.labels = labels;
        self.kinds = kinds;
        self.neigh = neigh;
        self.prov = prov;
        self.conf = conf;
        dirty
    }

    /// Base trust for every node: mean venue prior of the node's
    /// provenance papers, scaled by independent-venue corroboration
    /// (`|V| / (|V| + 1)`) and fusion confidence. Venue sets iterate in
    /// sorted order so the float sum is order-independent.
    fn compute_bases(&self) -> Vec<f64> {
        (0..self.neigh.len())
            .map(|n| {
                let mut venues: BTreeSet<&str> = BTreeSet::new();
                for p in &self.prov[n] {
                    if let Some(f) = self.by_paper.get(p) {
                        venues.insert(f.venue.as_str());
                    }
                }
                if venues.is_empty() {
                    SEEDED_BASE * self.conf[n]
                } else {
                    let vcount = venues.len() as f64;
                    let mass: f64 = venues
                        .iter()
                        .map(|v| self.scores.get(*v).map(|s| s.prior).unwrap_or(PRIOR_FLOOR))
                        .sum();
                    (mass / vcount) * (vcount / (vcount + 1.0)) * (0.5 + 0.5 * self.conf[n])
                }
            })
            .collect()
    }

    /// Propagated trust of one node, or `None` for an unknown id.
    pub fn trust(&self, id: usize) -> Option<f64> {
        self.history.last()?.get(id).copied()
    }

    /// The venue credibility prior weighting one paper (for
    /// trust-weighted bias mass and search re-ranking). Unknown papers
    /// get the floor prior.
    pub fn paper_weight(&self, paper_id: &str) -> f64 {
        self.by_paper
            .get(paper_id)
            .and_then(|f| self.scores.get(&f.venue))
            .map(|s| s.prior)
            .unwrap_or(PRIOR_FLOOR)
    }

    /// One venue's computed credibility.
    pub fn venue_score(&self, venue: &str) -> Option<&VenueScore> {
        self.scores.get(venue)
    }

    /// Venues currently holding papers, ascending.
    pub fn venues(&self) -> impl Iterator<Item = &str> {
        self.scores.keys().map(String::as_str)
    }

    /// Mutation epoch the store has replayed up to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stamp the system generation the store is current as of.
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Epoch-stamped trust document for one KG node: label, kind,
    /// propagated trust, base trust, and the distinct venues behind its
    /// provenance. `None` for an unknown id.
    pub fn node_document(&self, id: usize) -> Option<Value> {
        if id >= self.labels.len() {
            return None;
        }
        let mut venues: BTreeSet<&str> = BTreeSet::new();
        for p in &self.prov[id] {
            if let Some(f) = self.by_paper.get(p) {
                venues.insert(f.venue.as_str());
            }
        }
        Some(obj! {
            "id" => id,
            "label" => self.labels[id].as_str(),
            "kind" => self.kinds[id].as_str(),
            "trust" => self.trust(id).unwrap_or(0.0),
            "base" => self.base.get(id).copied().unwrap_or(0.0),
            "venues" => Value::Array(venues.iter().map(|v| Value::str(v.to_string())).collect()),
            "papers" => self.prov[id].len(),
            "neighbors" => self.neigh[id].len(),
            "epoch" => self.epoch as i64,
            "generation" => self.generation as i64,
        })
    }

    /// Epoch-stamped credibility document for one venue, or `None` for
    /// a venue with no papers.
    pub fn source_document(&self, venue: &str) -> Option<Value> {
        let s = self.scores.get(venue)?;
        Some(obj! {
            "venue" => venue,
            "prior" => s.prior,
            "seed" => s.seed,
            "corroboration" => s.corroboration,
            "papers" => s.papers,
            "claims" => s.claims,
            "corroborated" => s.corroborated,
            "mean_year" => s.mean_year,
            "tables" => s.tables,
            "captions" => s.captions,
            "epoch" => self.epoch as i64,
            "generation" => self.generation as i64,
        })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TrustStoreStats {
        TrustStoreStats {
            papers: self.by_paper.len(),
            venues: self.ledger.venue_count(),
            claims: self.ledger.claim_count(),
            nodes: self.labels.len(),
            incremental_refreshes: self.incremental_refreshes,
            full_rebuilds: self.full_rebuilds,
            nodes_repropagated: self.nodes_repropagated,
            epoch: self.epoch,
            generation: self.generation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(id: &str, venue: &str, claims: &[&str]) -> PaperFacts {
        PaperFacts {
            paper_id: id.into(),
            venue: venue.into(),
            year: 2021,
            tables: 1,
            captions: 1,
            claims: claims.iter().map(|c| c.to_string()).collect(),
        }
    }

    fn sample_graph() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let root = kg.add_root("COVID-19");
        let vaccines = kg.add_child(root, "Vaccine(s)", NodeKind::Category, 1.0);
        let pfizer = kg.add_child(vaccines, "Pfizer", NodeKind::Entity, 0.9);
        kg.add_provenance(pfizer, "p1");
        kg.add_provenance(pfizer, "p2");
        let moderna = kg.add_child(vaccines, "Moderna", NodeKind::Entity, 0.9);
        kg.add_provenance(moderna, "p2");
        kg
    }

    fn assert_matches_full_rebuild(store: &TrustStore, kg: &KnowledgeGraph) {
        let mut fresh = TrustStore::new();
        fresh.rebuild_all(store.by_paper.values().cloned().collect(), kg, store.epoch());
        for id in 0..kg.len() {
            assert_eq!(store.trust(id), fresh.trust(id), "node {id} trust");
            assert_eq!(
                store.node_document(id).map(|d| d.to_json()),
                fresh.node_document(id).map(|d| d.to_json()),
                "node {id} document"
            );
        }
        let venues: Vec<String> = fresh.venues().map(str::to_string).collect();
        assert_eq!(store.venues().collect::<Vec<_>>(), venues);
        for v in &venues {
            assert_eq!(
                store.source_document(v).map(|d| d.to_json()),
                fresh.source_document(v).map(|d| d.to_json()),
                "venue {v}"
            );
        }
    }

    #[test]
    fn corroborated_multi_venue_node_outranks_solo() {
        let kg = sample_graph();
        let mut store = TrustStore::new();
        store.rebuild_all(
            vec![
                facts("p1", "lancet", &["pfizer|fever"]),
                facts("p2", "nejm", &["pfizer|fever"]),
            ],
            &kg,
            1,
        );
        // Pfizer (two independent venues, corroborated claim) must beat
        // Moderna (one venue) even though both share confidence.
        let pfizer = store.trust(2).unwrap();
        let moderna = store.trust(3).unwrap();
        assert!(pfizer > moderna, "pfizer {pfizer} vs moderna {moderna}");
        assert!(store.trust(99).is_none());
        assert_matches_full_rebuild(&store, &kg);
    }

    #[test]
    fn incremental_refresh_matches_full_rebuild() {
        let kg = sample_graph();
        let mut store = TrustStore::new();
        store.rebuild_all(vec![facts("p1", "lancet", &["pfizer|fever"])], &kg, 1);
        // Upsert p2, update p1, delete p2: every path through apply().
        store.refresh(2, &["p2".into()], &kg, |_| Some(facts("p2", "nejm", &["pfizer|fever"])));
        assert_matches_full_rebuild(&store, &kg);
        store.refresh(3, &["p1".into()], &kg, |_| Some(facts("p1", "lancet", &["moderna|chills"])));
        assert_matches_full_rebuild(&store, &kg);
        store.refresh(4, &["p2".into()], &kg, |_| None);
        assert_matches_full_rebuild(&store, &kg);
        let s = store.stats();
        assert_eq!(s.incremental_refreshes, 3);
        assert_eq!(s.full_rebuilds, 1);
        assert_eq!(s.epoch, 4);
        assert_eq!(s.papers, 1);
    }

    #[test]
    fn refresh_tracks_graph_growth() {
        let mut kg = sample_graph();
        let mut store = TrustStore::new();
        store.rebuild_all(vec![facts("p1", "lancet", &["pfizer|fever"])], &kg, 1);
        // Fusion adds a node and provenance after the build.
        let side = kg.add_child(0, "Side-effects", NodeKind::Category, 1.0);
        let rash = kg.add_child(side, "Rash", NodeKind::Entity, 0.8);
        kg.add_provenance(rash, "p9");
        store.refresh(2, &["p9".into()], &kg, |_| Some(facts("p9", "medrxiv", &["rash"])));
        assert!(store.trust(rash).is_some());
        assert_matches_full_rebuild(&store, &kg);
    }

    #[test]
    fn documents_are_epoch_and_generation_stamped() {
        let kg = sample_graph();
        let mut store = TrustStore::new();
        store.rebuild_all(vec![facts("p1", "lancet", &["pfizer|fever"])], &kg, 7);
        store.set_generation(4);
        let node = store.node_document(2).unwrap();
        assert_eq!(node.get("label").unwrap().as_str(), Some("Pfizer"));
        assert_eq!(node.get("kind").unwrap().as_str(), Some("entity"));
        assert_eq!(node.get("epoch").unwrap().as_i64(), Some(7));
        assert_eq!(node.get("generation").unwrap().as_i64(), Some(4));
        assert_eq!(node.get("venues").unwrap().as_array().unwrap().len(), 1);
        assert!(store.node_document(99).is_none());
        let src = store.source_document("lancet").unwrap();
        assert_eq!(src.get("papers").unwrap().as_i64(), Some(1));
        assert_eq!(src.get("epoch").unwrap().as_i64(), Some(7));
        assert!(store.source_document("nature").is_none());
        // Documents re-stamp on refresh: a later epoch shows through.
        store.refresh(9, &[], &kg, |_| unreachable!("no papers touched"));
        assert_eq!(store.node_document(2).unwrap().get("epoch").unwrap().as_i64(), Some(9));
    }

    #[test]
    fn untouched_refresh_repropagates_nothing() {
        let kg = sample_graph();
        let mut store = TrustStore::new();
        store.rebuild_all(vec![facts("p1", "lancet", &["pfizer|fever"])], &kg, 1);
        let before = store.stats().nodes_repropagated;
        store.refresh(2, &[], &kg, |_| unreachable!("no papers touched"));
        assert_eq!(store.stats().nodes_repropagated, before, "no dirty ball, no sweeps");
    }

    #[test]
    fn paper_weight_reflects_venue_prior() {
        let kg = sample_graph();
        let mut store = TrustStore::new();
        store.rebuild_all(
            vec![
                facts("p1", "lancet", &["pfizer|fever"]),
                facts("p2", "nejm", &["pfizer|fever"]),
            ],
            &kg,
            1,
        );
        let w = store.paper_weight("p1");
        assert_eq!(w, store.venue_score("lancet").unwrap().prior);
        assert_eq!(store.paper_weight("unknown"), PRIOR_FLOOR);
    }
}
