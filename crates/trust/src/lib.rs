#![warn(missing_docs)]

//! # covidkg-trust
//!
//! The title's *Trustworthy* half: per-source credibility scoring and
//! trust propagation over the knowledge graph, kept fresh
//! incrementally off the collection mutation log and served as its own
//! wire traffic class.
//!
//! * [`prior`] — the source ledger: per-venue structural aggregates
//!   (breadth, recency, table/caption density) blended with claim
//!   corroboration across *other* venues into a credibility prior per
//!   venue. Priors are a pure function of the aggregates, and the
//!   aggregates are maintained by exact add/remove deltas — so the
//!   incremental path is equal to a from-scratch rebuild by
//!   construction.
//! * [`propagate`] — damped Jacobi trust propagation over the KG's
//!   child/parent edges: a fixed number of deterministic sweeps from a
//!   per-node base trust (provenance prior mass × independent-venue
//!   corroboration). The dirty-region variant re-sweeps only the ball
//!   reachable from changed nodes, reading the stored sweep history at
//!   the frontier, and is float-identical to a cold full run.
//! * [`store`] — [`TrustStore`]: the incrementally-maintained store
//!   behind `GET /trust/node/{id}`, `GET /trust/source/{venue}` and
//!   the trust-weighted `/bias/report`, epoch- and generation-stamped
//!   exactly like `covidkg_kg::materialize::ProfileStore` so a stale
//!   trust document is never served after an ingest.

pub mod prior;
pub mod propagate;
pub mod store;

pub use prior::{PaperFacts, SourceLedger, VenueScore};
pub use propagate::{propagate_dirty, propagate_full, DAMPING, SWEEPS};
pub use store::{TrustStore, TrustStoreStats};
