//! Damped iterative trust propagation over the KG hierarchy.
//!
//! Node trust starts at a per-node *base* (provenance prior mass ×
//! independent-venue corroboration, computed by the store) and is
//! pushed along child/parent edges by damped Jacobi sweeps:
//!
//! ```text
//! x⁰[n]     = base[n]
//! xᵗ⁺¹[n]   = (1 − d)·base[n] + d·mean(xᵗ[j] for j in neighbors(n))
//! ```
//!
//! A *fixed* sweep count ([`SWEEPS`]) makes the result a pure function
//! of `(neighbors, base)` — no convergence epsilon, no float drift
//! between runs — which is what lets the incremental path promise
//! bit-identical results. Sweep order is ascending node id and every
//! node's mean reads the previous sweep's vector (Jacobi, not
//! Gauss-Seidel), so shard or scan order cannot leak into the values.
//!
//! [`propagate_dirty`] is the incremental variant: after a mutation
//! only nodes whose base or adjacency changed — and the ball reachable
//! from them, growing one hop per sweep — can differ from the previous
//! run, so only that active region is recomputed, reading the stored
//! sweep history at the frontier. By induction the updated history is
//! float-identical to a cold [`propagate_full`] run; the property test
//! in `tests/trust_prop.rs` pins it across random mutation sequences.

use std::collections::BTreeSet;

/// Damped sweeps run to the (finite) fixed point.
pub const SWEEPS: usize = 12;
/// Neighbor-mean weight; `1 − DAMPING` anchors a node to its own base.
pub const DAMPING: f64 = 0.35;

/// One Jacobi update for node `n` at sweep `t`, reading sweep `t − 1`.
fn sweep_node(neigh: &[usize], base: f64, prev: &[f64], own_prev: f64) -> f64 {
    let mean = if neigh.is_empty() {
        own_prev
    } else {
        neigh.iter().map(|&j| prev[j]).sum::<f64>() / neigh.len() as f64
    };
    (1.0 - DAMPING) * base + DAMPING * mean
}

/// The naive full recomputation: all [`SWEEPS`] sweeps over every
/// node, cold. Returns the whole sweep history (`SWEEPS + 1` rows,
/// row 0 = base) — the store keeps it so the dirty-region variant can
/// read unchanged iterates at the frontier. Row `SWEEPS` is the trust
/// vector. This is the equivalence oracle for [`propagate_dirty`].
pub fn propagate_full(neigh: &[Vec<usize>], base: &[f64]) -> Vec<Vec<f64>> {
    let v = base.len();
    let mut history = Vec::with_capacity(SWEEPS + 1);
    history.push(base.to_vec());
    for t in 1..=SWEEPS {
        let prev = &history[t - 1];
        let next: Vec<f64> = (0..v)
            .map(|n| sweep_node(&neigh[n], base[n], prev, prev[n]))
            .collect();
        history.push(next);
    }
    history
}

/// Incremental re-propagation: `history` is the previous run's sweep
/// history (for the previous graph/base), `dirty` the nodes whose base
/// or adjacency changed (new nodes included). Updates `history` in
/// place to exactly what [`propagate_full`]`(neigh, base)` would
/// return, touching only the dirty ball. Returns the number of
/// node-sweep recomputations performed (the work metric).
pub fn propagate_dirty(
    history: &mut Vec<Vec<f64>>,
    neigh: &[Vec<usize>],
    base: &[f64],
    dirty: &BTreeSet<usize>,
) -> u64 {
    let v = base.len();
    if history.len() != SWEEPS + 1 {
        // No usable history (fresh store): fall back to the full run.
        *history = propagate_full(neigh, base);
        return (v as u64) * (SWEEPS as u64);
    }
    if dirty.is_empty() {
        return 0;
    }
    // Grow rows for new nodes; their values are only ever read after
    // being written because every new node is dirty (active at t = 0).
    for row in history.iter_mut() {
        row.resize(v, 0.0);
    }
    let mut active = vec![false; v];
    let mut active_list: Vec<usize> = Vec::with_capacity(dirty.len());
    for &n in dirty {
        active[n] = true;
        active_list.push(n);
        history[0][n] = base[n];
    }
    let mut work = 0u64;
    for t in 1..=SWEEPS {
        // A node's sweep-t value can differ only if the node itself is
        // dirty or a neighbor differed at sweep t − 1: expand the
        // active ball by one hop, then recompute it against the
        // previous row (stored history supplies unchanged frontier
        // values).
        let mut grown: Vec<usize> = Vec::new();
        for &n in &active_list {
            for &j in &neigh[n] {
                if !active[j] {
                    active[j] = true;
                    grown.push(j);
                }
            }
        }
        active_list.extend(grown);
        let (before, after) = history.split_at_mut(t);
        let prev = &before[t - 1];
        let row = &mut after[0];
        for &n in &active_list {
            row[n] = sweep_node(&neigh[n], base[n], prev, prev[n]);
            work += 1;
        }
    }
    work
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small multi-parent hierarchy: 0 → {1, 2}, 1 → {3, 4}, 2 → {4}.
    fn diamond() -> Vec<Vec<usize>> {
        vec![vec![1, 2], vec![0, 3, 4], vec![0, 4], vec![1], vec![1, 2]]
    }

    #[test]
    fn full_run_stays_in_unit_interval_and_blends_neighbors() {
        let neigh = diamond();
        let base = vec![0.9, 0.5, 0.1, 0.8, 0.2];
        let h = propagate_full(&neigh, &base);
        assert_eq!(h.len(), SWEEPS + 1);
        let trust = &h[SWEEPS];
        for &x in trust {
            assert!((0.0..=1.0).contains(&x), "{trust:?}");
        }
        // Node 2 (base 0.1) borrows trust from its strong neighbors.
        assert!(trust[2] > base[2]);
        // Node 0 (base 0.9) is pulled toward its weaker children.
        assert!(trust[0] < base[0]);
    }

    #[test]
    fn isolated_node_keeps_its_base() {
        let neigh = vec![Vec::new()];
        let base = vec![0.42];
        let h = propagate_full(&neigh, &base);
        assert!((h[SWEEPS][0] - 0.42).abs() < 1e-12);
    }

    #[test]
    fn dirty_region_update_is_bit_identical_to_full() {
        let neigh = diamond();
        let mut base = vec![0.9, 0.5, 0.1, 0.8, 0.2];
        let mut history = propagate_full(&neigh, &base);
        // Change one node's base: the dirty update must land exactly on
        // the cold full run.
        base[3] = 0.05;
        let work = propagate_dirty(&mut history, &neigh, &base, &[3usize].into_iter().collect());
        assert!(work > 0);
        let cold = propagate_full(&neigh, &base);
        assert_eq!(history, cold, "warm dirty-ball ≡ cold full, bit for bit");
        // Untouched refresh: zero work, history unchanged.
        let w0 = propagate_dirty(&mut history, &neigh, &base, &BTreeSet::new());
        assert_eq!(w0, 0);
        assert_eq!(history, cold);
    }

    #[test]
    fn dirty_update_handles_graph_growth() {
        let mut neigh = diamond();
        let mut base = vec![0.9, 0.5, 0.1, 0.8, 0.2];
        let mut history = propagate_full(&neigh, &base);
        // A new node appears under 2; both endpoints are dirty.
        neigh[2].push(5);
        neigh[2].sort_unstable();
        neigh.push(vec![2]);
        base.push(0.7);
        propagate_dirty(&mut history, &neigh, &base, &[2usize, 5].into_iter().collect());
        assert_eq!(history, propagate_full(&neigh, &base));
    }

    #[test]
    fn dirty_update_touches_less_than_full_on_far_nodes() {
        // A long chain: a change at one end must not recompute the
        // whole far end on early sweeps.
        let v = 64;
        let neigh: Vec<Vec<usize>> = (0..v)
            .map(|n| {
                let mut adj = Vec::new();
                if n > 0 {
                    adj.push(n - 1);
                }
                if n + 1 < v {
                    adj.push(n + 1);
                }
                adj
            })
            .collect();
        let mut base: Vec<f64> = (0..v).map(|n| (n % 7) as f64 / 10.0).collect();
        let mut history = propagate_full(&neigh, &base);
        base[0] = 0.95;
        let work = propagate_dirty(&mut history, &neigh, &base, &[0usize].into_iter().collect());
        assert_eq!(history, propagate_full(&neigh, &base));
        let full_work = (v as u64) * (SWEEPS as u64);
        assert!(work < full_work / 2, "dirty ball {work} vs full {full_work}");
    }
}
