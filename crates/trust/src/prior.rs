//! Per-source credibility priors.
//!
//! Every paper contributes *structural facts* to its venue — breadth
//! (paper count), recency (publication year), extraction density
//! (tables and captions) — plus the claims its side-effect tables
//! support. A venue's prior blends a citation-free structural seed
//! with *corroboration*: the fraction of the venue's distinct claims
//! that at least one other venue independently supports (the
//! edge-weighting idea in Wise et al.'s COVID-19 Knowledge Graph,
//! transplanted to sources).
//!
//! Determinism/equivalence contract: the ledger's aggregates are plain
//! counters maintained by symmetric `add`/`remove` deltas, and
//! [`SourceLedger::score`] is a pure function of those aggregates — so
//! any mutation sequence leaving the same paper set produces the same
//! scores, bit for bit, as a from-scratch rebuild. The property tests
//! in `tests/trust_prop.rs` pin this across random sequences.

use std::collections::BTreeMap;

/// Floor for any venue prior: even an uncorroborated single-paper
/// venue keeps a sliver of credibility rather than zeroing out the
/// trust of every node it supports.
pub const PRIOR_FLOOR: f64 = 0.05;

/// Structural + claim facts extracted from one paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaperFacts {
    /// Document `_id`.
    pub paper_id: String,
    /// Publishing venue (the source being scored).
    pub venue: String,
    /// Publication year, `0` when unknown.
    pub year: u32,
    /// Side-effect tables in the paper.
    pub tables: usize,
    /// Table captions in the paper.
    pub captions: usize,
    /// Claim keys the paper supports (e.g. `vaccine|effect` pairs).
    /// Canonicalized to sorted + deduplicated on construction.
    pub claims: Vec<String>,
}

impl PaperFacts {
    /// Canonicalize: sort and deduplicate the claim keys so the ledger
    /// counts each (paper, claim) pair once regardless of extraction
    /// order.
    pub fn canonicalize(mut self) -> PaperFacts {
        self.claims.sort_unstable();
        self.claims.dedup();
        self
    }
}

/// Per-venue aggregates, maintained by exact deltas.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct VenueAgg {
    papers: usize,
    /// Sum of years over dated papers (`year > 0`).
    year_sum: u64,
    dated: usize,
    tables: usize,
    captions: usize,
    /// claim → number of this venue's papers supporting it.
    claims: BTreeMap<String, usize>,
}

/// One venue's computed credibility, all components exposed for the
/// `GET /trust/source/{venue}` document.
#[derive(Debug, Clone, PartialEq)]
pub struct VenueScore {
    /// Papers the venue published.
    pub papers: usize,
    /// Mean publication year over dated papers (0.0 when none).
    pub mean_year: f64,
    /// Side-effect tables across the venue's papers.
    pub tables: usize,
    /// Captions across the venue's papers.
    pub captions: usize,
    /// Distinct claims the venue supports.
    pub claims: usize,
    /// Distinct claims also supported by at least one *other* venue.
    pub corroborated: usize,
    /// Structural seed in `[0, 1]` (breadth + recency + density).
    pub seed: f64,
    /// Corroborated fraction in `[0, 1]` (0 when claimless).
    pub corroboration: f64,
    /// The blended prior in `[PRIOR_FLOOR, 1]`.
    pub prior: f64,
}

/// The source ledger: every venue's aggregates plus the cross-venue
/// claim index, maintained incrementally.
#[derive(Debug, Clone, Default)]
pub struct SourceLedger {
    venues: BTreeMap<String, VenueAgg>,
    /// claim → venue → papers of that venue supporting it.
    claim_venues: BTreeMap<String, BTreeMap<String, usize>>,
    /// Publication-year multiset over dated papers (for the global
    /// recency normalization window).
    years: BTreeMap<u32, usize>,
}

impl SourceLedger {
    /// Empty ledger.
    pub fn new() -> SourceLedger {
        SourceLedger::default()
    }

    /// Account one paper's facts.
    pub fn add(&mut self, facts: &PaperFacts) {
        let agg = self.venues.entry(facts.venue.clone()).or_default();
        agg.papers += 1;
        if facts.year > 0 {
            agg.year_sum += facts.year as u64;
            agg.dated += 1;
            *self.years.entry(facts.year).or_insert(0) += 1;
        }
        agg.tables += facts.tables;
        agg.captions += facts.captions;
        for c in &facts.claims {
            *agg.claims.entry(c.clone()).or_insert(0) += 1;
            *self
                .claim_venues
                .entry(c.clone())
                .or_default()
                .entry(facts.venue.clone())
                .or_insert(0) += 1;
        }
    }

    /// Unaccount one paper's facts (the exact inverse of [`add`]:
    /// zeroed entries are removed so the ledger is structurally equal
    /// to one that never saw the paper).
    ///
    /// [`add`]: SourceLedger::add
    pub fn remove(&mut self, facts: &PaperFacts) {
        let agg = self.venues.get_mut(&facts.venue).expect("venue accounted");
        agg.papers -= 1;
        if facts.year > 0 {
            agg.year_sum -= facts.year as u64;
            agg.dated -= 1;
            let n = self.years.get_mut(&facts.year).expect("year accounted");
            *n -= 1;
            if *n == 0 {
                self.years.remove(&facts.year);
            }
        }
        agg.tables -= facts.tables;
        agg.captions -= facts.captions;
        for c in &facts.claims {
            let n = agg.claims.get_mut(c).expect("claim accounted");
            *n -= 1;
            if *n == 0 {
                agg.claims.remove(c);
            }
            let per_venue = self.claim_venues.get_mut(c).expect("claim indexed");
            let n = per_venue.get_mut(&facts.venue).expect("venue indexed");
            *n -= 1;
            if *n == 0 {
                per_venue.remove(&facts.venue);
            }
            if per_venue.is_empty() {
                self.claim_venues.remove(c);
            }
        }
        if agg.papers == 0 {
            self.venues.remove(&facts.venue);
        }
    }

    /// Venues currently holding papers, ascending.
    pub fn venues(&self) -> impl Iterator<Item = &str> {
        self.venues.keys().map(String::as_str)
    }

    /// Distinct claims across all venues.
    pub fn claim_count(&self) -> usize {
        self.claim_venues.len()
    }

    /// Number of venues currently holding papers.
    pub fn venue_count(&self) -> usize {
        self.venues.len()
    }

    /// Compute every venue's credibility from the current aggregates.
    /// Pure: two ledgers with equal aggregates score identically.
    pub fn score(&self) -> BTreeMap<String, VenueScore> {
        let max_papers = self.venues.values().map(|a| a.papers).max().unwrap_or(0);
        let min_year = self.years.keys().next().copied();
        let max_year = self.years.keys().next_back().copied();
        self.venues
            .iter()
            .map(|(venue, agg)| {
                let breadth = if max_papers == 0 {
                    0.0
                } else {
                    (agg.papers as f64).ln_1p() / (max_papers as f64).ln_1p()
                };
                let mean_year = if agg.dated == 0 {
                    0.0
                } else {
                    agg.year_sum as f64 / agg.dated as f64
                };
                let recency = match (min_year, max_year) {
                    (Some(lo), Some(hi)) if hi > lo && agg.dated > 0 => {
                        (mean_year - lo as f64) / (hi as f64 - lo as f64)
                    }
                    _ => 0.5,
                };
                let density = if agg.papers == 0 {
                    0.0
                } else {
                    ((agg.tables + agg.captions) as f64 / (2.0 * agg.papers as f64)).min(1.0)
                };
                let seed = 0.15 + 0.45 * breadth + 0.25 * recency + 0.15 * density;
                let corroborated = agg
                    .claims
                    .keys()
                    .filter(|c| {
                        self.claim_venues
                            .get(*c)
                            .is_some_and(|vs| vs.keys().any(|v| v != venue))
                    })
                    .count();
                let corroboration = if agg.claims.is_empty() {
                    0.0
                } else {
                    corroborated as f64 / agg.claims.len() as f64
                };
                let prior = (seed * (0.5 + 0.5 * corroboration)).clamp(PRIOR_FLOOR, 1.0);
                (
                    venue.clone(),
                    VenueScore {
                        papers: agg.papers,
                        mean_year,
                        tables: agg.tables,
                        captions: agg.captions,
                        claims: agg.claims.len(),
                        corroborated,
                        seed,
                        corroboration,
                        prior,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(id: &str, venue: &str, year: u32, claims: &[&str]) -> PaperFacts {
        PaperFacts {
            paper_id: id.into(),
            venue: venue.into(),
            year,
            tables: 1,
            captions: 1,
            claims: claims.iter().map(|c| c.to_string()).collect(),
        }
        .canonicalize()
    }

    #[test]
    fn corroboration_requires_another_venue() {
        let mut l = SourceLedger::new();
        l.add(&facts("p1", "lancet", 2021, &["pfizer|fever"]));
        let solo = l.score();
        assert_eq!(solo["lancet"].corroborated, 0);
        assert_eq!(solo["lancet"].corroboration, 0.0);
        // A second paper in the SAME venue does not corroborate…
        l.add(&facts("p2", "lancet", 2021, &["pfizer|fever"]));
        assert_eq!(l.score()["lancet"].corroborated, 0);
        // …but one in another venue does, lifting the prior.
        l.add(&facts("p3", "nejm", 2021, &["pfizer|fever"]));
        let s = l.score();
        assert_eq!(s["lancet"].corroborated, 1);
        assert_eq!(s["lancet"].corroboration, 1.0);
        assert!(s["lancet"].prior > solo["lancet"].prior);
        assert_eq!(s["nejm"].corroborated, 1);
    }

    #[test]
    fn breadth_and_recency_shape_the_seed() {
        let mut l = SourceLedger::new();
        for i in 0..8 {
            l.add(&facts(&format!("a{i}"), "big-old", 2019, &[]));
        }
        l.add(&facts("b0", "small-new", 2022, &[]));
        let s = l.score();
        // More papers → higher breadth; later mean year → higher recency.
        assert!(s["big-old"].papers > s["small-new"].papers);
        assert!(s["big-old"].seed > 0.15 && s["big-old"].seed <= 1.0);
        assert!(s["small-new"].mean_year > s["big-old"].mean_year);
        for v in s.values() {
            assert!(v.prior >= PRIOR_FLOOR && v.prior <= 1.0);
        }
    }

    #[test]
    fn remove_is_the_exact_inverse_of_add() {
        let mut l = SourceLedger::new();
        let base = [
            facts("p1", "lancet", 2021, &["a", "b"]),
            facts("p2", "nejm", 2020, &["a"]),
        ];
        for f in &base {
            l.add(f);
        }
        let snapshot = l.score();
        let extra = facts("p3", "medrxiv", 2022, &["b", "c"]);
        l.add(&extra);
        assert_ne!(l.score(), snapshot);
        l.remove(&extra);
        assert_eq!(l.score(), snapshot, "add/remove must round-trip");
        assert_eq!(l.venue_count(), 2);
        assert_eq!(l.claim_count(), 2);
    }

    #[test]
    fn scores_are_order_independent() {
        let fs = [
            facts("p1", "lancet", 2021, &["a"]),
            facts("p2", "nejm", 2020, &["a", "b"]),
            facts("p3", "medrxiv", 0, &["c"]),
        ];
        let mut fwd = SourceLedger::new();
        let mut rev = SourceLedger::new();
        for f in &fs {
            fwd.add(f);
        }
        for f in fs.iter().rev() {
            rev.add(f);
        }
        assert_eq!(fwd.score(), rev.score());
    }

    #[test]
    fn canonicalize_dedupes_claims() {
        let f = facts("p1", "v", 2021, &["b", "a", "b"]);
        assert_eq!(f.claims, ["a", "b"]);
    }
}
