//! Seeded equivalence properties for the trust store.
//!
//! Property 1 drives a [`TrustStore`] through random mutation
//! sequences — paper upserts/deletes interleaved with graph growth
//! (new nodes, extra parents, extra provenance) — and demands that
//! after every step the propagated trust vector and every served
//! document (node and source) be **bit-identical** to a from-scratch
//! `rebuild_all` over the same papers and graph: incremental
//! propagation ≡ full fixed-point. Property 2 feeds the same paper set
//! in shuffled scan orders and demands identical output: propagation
//! is deterministic regardless of shard or scan order. Failures shrink
//! to a minimal op sequence via `covidkg_rand::prop::run_shrink` and
//! print a replay seed.

use std::collections::BTreeMap;

use covidkg_kg::{KnowledgeGraph, NodeKind};
use covidkg_rand::rngs::SmallRng;
use covidkg_rand::{prop, Rng};
use covidkg_trust::{PaperFacts, TrustStore};

const VENUES: &[&str] = &["lancet", "nejm", "medrxiv", "jama"];
const CLAIMS: &[&str] = &["pfizer|fever", "pfizer|chills", "moderna|fever", "az|fatigue"];
const LABELS: &[&str] = &["fever", "chills", "pfizer", "moderna", "dose"];
const PAPERS: usize = 6;

/// One step: a collection mutation, a graph mutation, or both — the
/// store must stay equivalent to a full rebuild through any interleave.
#[derive(Debug, Clone)]
enum Op {
    /// Insert-or-replace one paper's facts.
    Upsert { paper: usize, venue: usize, year: u32, tables: usize, claims: Vec<usize> },
    /// Drop the paper entirely.
    Delete { paper: usize },
    /// Grow the graph: `add_child` with provenance into the paper pool.
    Grow { parent: usize, label: usize, papers: Vec<usize> },
    /// `add_parent` between existing nodes (skipped when identical).
    Link { node: usize, parent: usize },
}

fn gen_op(rng: &mut SmallRng) -> Op {
    match rng.gen_range(0u8..10) {
        0..=4 => Op::Upsert {
            paper: rng.gen_range(0..PAPERS),
            venue: rng.gen_range(0..VENUES.len()),
            year: 2019 + rng.gen_range(0u32..4),
            tables: rng.gen_range(0usize..3),
            claims: prop::vec_of(rng, 0, 3, |r| r.gen_range(0..CLAIMS.len())),
        },
        5 => Op::Delete { paper: rng.gen_range(0..PAPERS) },
        6..=8 => Op::Grow {
            parent: rng.gen_range(0usize..32),
            label: rng.gen_range(0..LABELS.len()),
            papers: prop::vec_of(rng, 0, 2, |r| r.gen_range(0..PAPERS)),
        },
        _ => Op::Link { node: rng.gen_range(0usize..32), parent: rng.gen_range(0usize..32) },
    }
}

fn paper_id(i: usize) -> String {
    format!("paper-{:02}", i % PAPERS)
}

fn make_facts(paper: usize, venue: usize, year: u32, tables: usize, claims: &[usize]) -> PaperFacts {
    PaperFacts {
        paper_id: paper_id(paper),
        venue: VENUES[venue].to_string(),
        year,
        tables,
        captions: tables,
        claims: claims.iter().map(|&c| CLAIMS[c].to_string()).collect(),
    }
}

/// Compare every observable surface of the incremental store against a
/// from-scratch rebuild over the same papers and graph.
fn assert_equiv(
    store: &TrustStore,
    model: &BTreeMap<String, PaperFacts>,
    kg: &KnowledgeGraph,
    ctx: &str,
) -> Result<(), String> {
    let mut fresh = TrustStore::new();
    fresh.rebuild_all(model.values().cloned().collect(), kg, store.epoch());
    for id in 0..kg.len() {
        let got = store.node_document(id).map(|d| d.to_json());
        let want = fresh.node_document(id).map(|d| d.to_json());
        if got != want {
            return Err(format!("{ctx}: node {id} diverged\n  incr: {got:?}\n  full: {want:?}"));
        }
    }
    let got: Vec<&str> = store.venues().collect();
    let want: Vec<&str> = fresh.venues().collect();
    if got != want {
        return Err(format!("{ctx}: venue sets diverged {got:?} vs {want:?}"));
    }
    for v in want {
        let got = store.source_document(v).map(|d| d.to_json());
        let want = fresh.source_document(v).map(|d| d.to_json());
        if got != want {
            return Err(format!("{ctx}: venue {v} diverged\n  incr: {got:?}\n  full: {want:?}"));
        }
    }
    Ok(())
}

#[test]
fn incremental_propagation_matches_full_fixed_point() {
    prop::run_shrink(
        48,
        |rng| prop::vec_of(rng, 1, 24, gen_op),
        |ops| prop::shrink_vec(ops, |_| Vec::new()),
        |ops| {
            let mut kg = KnowledgeGraph::new();
            kg.add_root("covid");
            let mut model: BTreeMap<String, PaperFacts> = BTreeMap::new();
            let mut store = TrustStore::new();
            store.rebuild_all(Vec::new(), &kg, 0);
            for (epoch0, op) in ops.iter().enumerate() {
                let epoch = epoch0 as u64 + 1;
                let mut touched: Vec<String> = Vec::new();
                match op {
                    Op::Upsert { paper, venue, year, tables, claims } => {
                        let f = make_facts(*paper, *venue, *year, *tables, claims);
                        model.insert(f.paper_id.clone(), f.clone().canonicalize());
                        touched.push(f.paper_id);
                    }
                    Op::Delete { paper } => {
                        let id = paper_id(*paper);
                        model.remove(&id);
                        touched.push(id);
                    }
                    Op::Grow { parent, label, papers } => {
                        let id = kg.add_child(parent % kg.len(), LABELS[*label], NodeKind::Entity, 0.8);
                        for p in papers {
                            kg.add_provenance(id, paper_id(*p));
                        }
                    }
                    Op::Link { node, parent } => {
                        let len = kg.len();
                        if node % len != parent % len {
                            kg.add_parent(node % len, parent % len);
                        }
                    }
                }
                store.refresh(epoch, &touched, &kg, |id| model.get(id).cloned());
                assert_equiv(&store, &model, &kg, &format!("after epoch {epoch} ({op:?})"))?;
            }
            Ok(())
        },
    );
}

#[test]
fn propagation_is_deterministic_across_scan_orders() {
    prop::run_shrink(
        32,
        |rng| {
            let papers: Vec<Op> = (0..PAPERS)
                .map(|i| Op::Upsert {
                    paper: i,
                    venue: rng.gen_range(0..VENUES.len()),
                    year: 2019 + rng.gen_range(0u32..4),
                    tables: rng.gen_range(0usize..3),
                    claims: prop::vec_of(rng, 0, 3, |r| r.gen_range(0..CLAIMS.len())),
                })
                .collect();
            let grows = prop::vec_of(rng, 0, 8, gen_op);
            (papers, grows)
        },
        |(papers, grows)| {
            prop::shrink_vec(grows, |_| Vec::new())
                .into_iter()
                .map(|g| (papers.clone(), g))
                .collect()
        },
        |(papers, grows)| {
            let mut kg = KnowledgeGraph::new();
            kg.add_root("covid");
            for op in grows {
                match op {
                    Op::Grow { parent, label, papers } => {
                        let id = kg.add_child(parent % kg.len(), LABELS[*label], NodeKind::Entity, 0.8);
                        for p in papers {
                            kg.add_provenance(id, paper_id(*p));
                        }
                    }
                    Op::Link { node, parent } => {
                        let len = kg.len();
                        if node % len != parent % len {
                            kg.add_parent(node % len, parent % len);
                        }
                    }
                    _ => {}
                }
            }
            let facts: Vec<PaperFacts> = papers
                .iter()
                .map(|op| match op {
                    Op::Upsert { paper, venue, year, tables, claims } => {
                        make_facts(*paper, *venue, *year, *tables, claims)
                    }
                    _ => unreachable!("papers are all upserts"),
                })
                .collect();
            let mut fwd = TrustStore::new();
            fwd.rebuild_all(facts.clone(), &kg, 1);
            let mut rev = TrustStore::new();
            rev.rebuild_all(facts.iter().rev().cloned().collect(), &kg, 1);
            // Interleaved arrival through the incremental path, odd
            // papers first: same papers, third order.
            let mut incr = TrustStore::new();
            incr.rebuild_all(Vec::new(), &kg, 0);
            for pass in [1usize, 0] {
                for (i, f) in facts.iter().enumerate() {
                    if i % 2 == pass {
                        incr.refresh(1, std::slice::from_ref(&f.paper_id), &kg, |_| Some(f.clone()));
                    }
                }
            }
            for id in 0..kg.len() {
                let a = fwd.node_document(id).map(|d| d.to_json());
                let b = rev.node_document(id).map(|d| d.to_json());
                let c = incr.node_document(id).map(|d| d.to_json());
                if a != b || a != c {
                    return Err(format!(
                        "node {id} depends on scan order:\n  fwd: {a:?}\n  rev: {b:?}\n  incr: {c:?}"
                    ));
                }
            }
            for v in fwd.venues().map(str::to_string).collect::<Vec<_>>() {
                let a = fwd.source_document(&v).map(|d| d.to_json());
                let b = rev.source_document(&v).map(|d| d.to_json());
                if a != b {
                    return Err(format!("venue {v} depends on scan order"));
                }
            }
            Ok(())
        },
    );
}
