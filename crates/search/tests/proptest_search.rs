//! Property tests for the search layer: engines never panic on arbitrary
//! queries, pages respect their size, scores order monotonically, and
//! pagination partitions the result set. Runs on the in-repo
//! `covidkg_rand::prop` harness.

use covidkg_json::{arr, obj};
use covidkg_rand::prop::{self, any_string, pick};
use covidkg_rand::Rng;
use covidkg_search::{SearchEngine, SearchMode};
use covidkg_store::{Collection, CollectionConfig};
use std::sync::Arc;

fn engine() -> SearchEngine {
    let c = Collection::new(
        CollectionConfig::new("pubs")
            .with_shards(3)
            .with_text_fields(["title", "abstract", "tables", "body"]),
    );
    let topics = ["mask usage", "vaccine doses", "ventilator capacity", "symptom onset"];
    for i in 0..40 {
        let topic = topics[i % topics.len()];
        c.insert(obj! {
            "_id" => format!("p{i:02}"),
            "title" => format!("{topic} study {i}"),
            "abstract" => format!("analysis of {topic} across cohorts"),
            "date" => format!("202{}-0{}", i % 3, 1 + i % 9),
            "tables" => arr![ obj!{ "caption" => format!("Table: {topic}") } ],
            "body" => arr![ obj!{ "heading" => "Intro", "text" => format!("{topic} details") } ],
        })
        .unwrap();
    }
    SearchEngine::new(Arc::new(c))
}

#[test]
fn engines_never_panic_on_arbitrary_queries() {
    prop::run(48, |rng| {
        let q = any_string(rng, 0, 32);
        let page = rng.gen_range(0usize..4);
        let e = engine();
        for mode in [
            SearchMode::AllFields(q.clone()),
            SearchMode::Tables(q.clone()),
            SearchMode::TitleAbstractCaption {
                title: q.clone(),
                abstract_q: String::new(),
                caption: String::new(),
            },
        ] {
            let result = e.search(&mode, page);
            assert!(result.results.len() <= result.page_size);
            // Scores are non-increasing down the page.
            for w in result.results.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
        }
    });
}

#[test]
fn pagination_partitions_results() {
    prop::run(48, |rng| {
        let word = pick(rng, &["mask", "vaccine", "study", "cohorts"]).to_string();
        let e = engine();
        let mode = SearchMode::AllFields(word);
        let first = e.search(&mode, 0);
        let mut seen = Vec::new();
        for page in 0..first.page_count() {
            let p = e.search(&mode, page);
            assert_eq!(p.total, first.total, "total stable across pages");
            seen.extend(p.results.iter().map(|r| r.id.clone()));
        }
        assert_eq!(seen.len(), first.total, "pages cover every match");
        let mut dedup = seen.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len(), "no document on two pages");
    });
}

#[test]
fn rendering_never_panics() {
    prop::run(48, |rng| {
        let q = any_string(rng, 0, 24);
        let e = engine();
        let page = e.search(&SearchMode::AllFields(q), 0);
        let brief = page.render();
        let full = page.render_expanded();
        assert!(brief.len() <= full.len() + brief.len()); // both built fine
    });
}
