//! Property test: the index-pruned, shard-parallel, postings-scored top-k
//! fast path must return **byte-identical** pages to the naive full-scan,
//! tokenizing-scorer, full-sort oracle — same totals, same ids in the same
//! order (including `(score, _id)` tie-breaks), and bit-equal `f64` scores.

use covidkg_json::{arr, obj, Value};
use covidkg_rand::prop;
use covidkg_rand::{Rng, SmallRng};
use covidkg_search::{SearchEngine, SearchMode, SearchPage};
use covidkg_store::{Collection, CollectionConfig};
use std::sync::Arc;

/// Word pool: includes stems the default synonym table links
/// ("vaccine"/"immunization", "mask"/"face covering") plus generic noise,
/// so random queries exercise direct, synonym, proximity and phrase paths.
const WORDS: &[&str] = &[
    "vaccine",
    "immunization",
    "mask",
    "masks",
    "covering",
    "transmission",
    "ventilator",
    "icu",
    "antibody",
    "variant",
    "dose",
    "efficacy",
    "trial",
    "cohort",
    "surge",
    "policy",
    "mandate",
    "aerosol",
    "testing",
    "outbreak",
];

fn sentence(rng: &mut SmallRng, min_words: usize, max_words: usize) -> String {
    let n = rng.gen_range(min_words..=max_words);
    (0..n)
        .map(|_| *prop::pick(rng, WORDS))
        .collect::<Vec<_>>()
        .join(" ")
}

fn random_doc(rng: &mut SmallRng, id: usize, clone_pool: &[Value]) -> Value {
    // Occasionally clone a previous doc's content (new _id) so several
    // documents share an exact score and the `_id` tie-break is exercised.
    if !clone_pool.is_empty() && rng.gen_bool(0.25) {
        let src = &clone_pool[rng.gen_range(0..clone_pool.len())];
        let mut doc = src.clone();
        doc.insert("_id", format!("d{id:04}"));
        return doc;
    }
    let year = 2019 + rng.gen_range(0u32..4);
    let month = 1 + rng.gen_range(0u32..12);
    obj! {
        "_id" => format!("d{id:04}"),
        "title" => sentence(rng, 2, 6),
        "abstract" => sentence(rng, 4, 12),
        "date" => format!("{year}-{month:02}"),
        "body" => arr![
            obj!{ "heading" => sentence(rng, 1, 2), "text" => sentence(rng, 3, 10) }
        ],
        "tables" => arr![
            obj!{ "caption" => sentence(rng, 2, 5), "html" => "<table></table>" }
        ],
    }
}

fn random_corpus(rng: &mut SmallRng, n_docs: usize, shards: usize) -> Arc<Collection> {
    let c = Collection::new(
        CollectionConfig::new("pubs")
            .with_shards(shards)
            .with_text_fields(["title", "abstract", "tables", "figure_captions", "body"]),
    );
    let mut inserted: Vec<Value> = Vec::new();
    for i in 0..n_docs {
        let doc = random_doc(rng, i, &inserted);
        inserted.push(doc.clone());
        c.insert(doc).unwrap();
    }
    // A few mutations so the postings index has seen remove/re-add churn.
    let n_mut = rng.gen_range(0..=3usize.min(n_docs));
    for _ in 0..n_mut {
        let victim = format!("d{:04}", rng.gen_range(0..n_docs));
        if rng.gen_bool(0.5) {
            let _ = c.delete(&victim);
        } else if c.get(&victim).is_some() {
            let fresh_id = 9000 + rng.gen_range(0..1000usize);
            let mut fresh = random_doc(rng, fresh_id, &[]);
            fresh.insert("_id", victim.clone());
            let _ = c.replace(&victim, fresh);
        }
    }
    Arc::new(c)
}

fn random_query(rng: &mut SmallRng) -> String {
    let n = rng.gen_range(1..=3usize);
    let mut q = (0..n)
        .map(|_| *prop::pick(rng, WORDS))
        .collect::<Vec<_>>()
        .join(" ");
    if rng.gen_bool(0.3) {
        // Add a quoted phrase, sometimes multi-word.
        let phrase = sentence(rng, 1, 2);
        q = format!("{q} \"{phrase}\"");
    }
    q
}

fn random_mode(rng: &mut SmallRng) -> SearchMode {
    match rng.gen_range(0..4u32) {
        0 => SearchMode::AllFields(random_query(rng)),
        1 => SearchMode::Tables(random_query(rng)),
        2 => SearchMode::TitleAbstractCaption {
            title: random_query(rng),
            abstract_q: String::new(),
            caption: String::new(),
        },
        _ => SearchMode::TitleAbstractCaption {
            title: if rng.gen_bool(0.5) { random_query(rng) } else { String::new() },
            abstract_q: random_query(rng),
            caption: if rng.gen_bool(0.3) { random_query(rng) } else { String::new() },
        },
    }
}

/// Byte-identical comparison: totals, ids+order, and bit-equal scores.
fn assert_identical(fast: &SearchPage, naive: &SearchPage, ctx: &str) {
    assert_eq!(fast.total, naive.total, "total mismatch: {ctx}");
    assert_eq!(fast.page, naive.page, "page mismatch: {ctx}");
    let fast_ids: Vec<&str> = fast.results.iter().map(|r| r.id.as_str()).collect();
    let naive_ids: Vec<&str> = naive.results.iter().map(|r| r.id.as_str()).collect();
    assert_eq!(fast_ids, naive_ids, "id order mismatch: {ctx}");
    for (f, n) in fast.results.iter().zip(naive.results.iter()) {
        assert_eq!(
            f.score.to_bits(),
            n.score.to_bits(),
            "score bits differ for {} ({} vs {}): {ctx}",
            f.id,
            f.score,
            n.score
        );
        assert_eq!(f.title, n.title, "title mismatch for {}: {ctx}", f.id);
    }
}

#[test]
fn pruned_top_k_is_byte_identical_to_full_scan() {
    prop::run(25, |rng| {
        let n_docs = rng.gen_range(5..40usize);
        let shards = *prop::pick(rng, &[1usize, 2, 3, 4, 7]);
        let collection = random_corpus(rng, n_docs, shards);
        let engine = SearchEngine::new(collection);
        for _ in 0..3 {
            let mode = random_mode(rng);
            for page in 0..4 {
                let fast = engine.search(&mode, page);
                let naive = engine.search_naive(&mode, page);
                let ctx = format!(
                    "docs={n_docs} shards={shards} page={page} mode={mode:?}"
                );
                assert_identical(&fast, &naive, &ctx);
            }
        }
    });
}

/// Crosses the store's parallel threshold (512 scoring candidates) so the
/// per-shard worker-thread merge path is exercised, not just the
/// sequential fallback.
#[test]
fn equivalence_at_parallel_scale() {
    let mut rng = <SmallRng as covidkg_rand::SeedableRng>::seed_from_u64(0xD0C5);
    let collection = random_corpus(&mut rng, 700, 4);
    let engine = SearchEngine::new(collection);
    let modes = [
        SearchMode::AllFields("vaccine efficacy".into()),
        SearchMode::AllFields("mask transmission \"icu surge\"".into()),
        SearchMode::Tables("dose trial".into()),
        SearchMode::TitleAbstractCaption {
            title: "variant".into(),
            abstract_q: "outbreak testing".into(),
            caption: String::new(),
        },
    ];
    for mode in &modes {
        for page in 0..5 {
            let fast = engine.search(mode, page);
            let naive = engine.search_naive(mode, page);
            assert_identical(&fast, &naive, &format!("parallel-scale page={page} mode={mode:?}"));
        }
    }
}
