#![warn(missing_docs)]

//! # covidkg-search
//!
//! The COVIDKG.ORG advanced search engines (§2.1), built on the store's
//! aggregation pipeline. "We currently provide three different search
//! engines for different types of structural queries. All three have a
//! similar evaluation process, but produce different sets of results.
//! Each one allows for exact match of the query if wrapped in quotes or
//! stemming match capability on a tokenized query."
//!
//! * [`query`] — query parsing: quoted phrases become exact matches,
//!   everything else is tokenized and stemmed;
//! * [`rank`] — the ranking function: per-term TF-IDF, term proximity,
//!   field weights and static document features ("The ranking is an
//!   accumulation of various weighted features per document, such as the
//!   number of matches, proximity between the matched terms and which
//!   field the term was matched in");
//! * [`engine`] — the three engines (title/abstract/caption, all fields,
//!   tables) compiled into `$match` → `$project` → `$function` → `$sort`
//!   pipelines with 10-per-page pagination;
//! * [`result`] — result pages with snippets and highlight spans
//!   (Figs 2 & 4);
//! * [`render_cache`] — a bounded, epoch-invalidated memo of built
//!   snippets/highlights so cache-warm renders skip snippet work;
//! * [`hybrid`] — the dense serving modes: pure-semantic ANN retrieval
//!   and reciprocal-rank fusion of ANN neighbors with the lexical
//!   all-fields top-k.

pub mod engine;
pub mod hybrid;
pub mod query;
pub mod rank;
pub mod render_cache;
pub mod result;

pub use engine::{cache_key, SearchEngine, SearchMode};
pub use hybrid::{dense_cache_key, dense_search, DenseMode, HybridConfig};
pub use query::{parse_query, ParsedQuery};
pub use rank::{RankWeights, Ranker};
pub use render_cache::{CachedRender, RenderCache, RenderCacheStats};
pub use result::{SearchPage, SearchResult};
