//! The ranking function (§2.1).
//!
//! "The ranking is an accumulation of various weighted features per
//! document, such as the number of matches, proximity between the matched
//! terms and which field the term was matched in. Each term in the corpus
//! has an associated TF-IDF weight in order to reward more important
//! terms. For each matched term its TF-IDF is weighted in the ranking per
//! document." §2.1.3 adds "static and dynamic features"; recency serves
//! as the static document feature here.

use crate::query::ParsedQuery;
use covidkg_json::Value;
use covidkg_store::index::{Posting, TextIndex};
use covidkg_text::{stem, tokenize, Token};
use std::collections::BTreeMap;

/// Field weights and feature coefficients.
#[derive(Debug, Clone)]
pub struct RankWeights {
    /// `(dot path, weight)` per searched field.
    pub fields: Vec<(String, f64)>,
    /// Bonus coefficient for term proximity.
    pub proximity: f64,
    /// Coefficient for the static recency feature.
    pub recency: f64,
    /// Score added per exact-phrase hit.
    pub exact_bonus: f64,
    /// Discount applied to synonym matches relative to direct term
    /// matches (§5: the ranking "incorporates matching terms and
    /// synonyms").
    pub synonym: f64,
}

impl RankWeights {
    /// The default publication weighting: title ≫ abstract > captions >
    /// body.
    pub fn publication_default() -> RankWeights {
        RankWeights {
            fields: vec![
                ("title".into(), 3.0),
                ("abstract".into(), 2.0),
                ("tables".into(), 1.5),
                ("figure_captions".into(), 1.5),
                ("body".into(), 1.0),
            ],
            proximity: 1.0,
            recency: 0.2,
            exact_bonus: 4.0,
            synonym: 0.4,
        }
    }
}

/// Scores documents for one parsed query.
///
/// IDF statistics are snapshotted from the collection's inverted text
/// index at construction (the same statistics MongoDB's text index would
/// supply the JS `$function`), so the ranker is `'static` and can live
/// inside a `$function` pipeline stage.
pub struct Ranker {
    query: ParsedQuery,
    weights: RankWeights,
    /// IDF per query stem, aligned with `query.stems`.
    stem_idf: Vec<f64>,
    /// IDF per synonym stem, aligned with `query.synonym_stems`.
    syn_idf: Vec<f64>,
}

impl Ranker {
    /// Build a ranker, snapshotting IDF values from the text index.
    pub fn new(
        query: ParsedQuery,
        weights: RankWeights,
        index: Option<&TextIndex>,
        corpus_size: usize,
    ) -> Self {
        let n = corpus_size.max(1);
        let idf_of = |s: &String| {
            let df = index.map_or(0, |i| i.doc_freq(s));
            (((1 + n) as f64) / ((1 + df) as f64)).ln() + 1.0
        };
        let stem_idf = query.stems.iter().map(idf_of).collect();
        let syn_idf = query.synonym_stems.iter().map(idf_of).collect();
        Ranker {
            query,
            weights,
            stem_idf,
            syn_idf,
        }
    }

    /// The parsed query being ranked.
    pub fn query(&self) -> &ParsedQuery {
        &self.query
    }

    fn idf_at(&self, qi: usize) -> f64 {
        self.stem_idf.get(qi).copied().unwrap_or(1.0)
    }

    /// Score one document.
    pub fn score(&self, doc: &Value) -> f64 {
        let mut total = 0.0;
        for (path, field_weight) in &self.weights.fields {
            total += field_weight * self.score_field(doc.path(path));
        }
        // Static feature: recency from the date field ("YYYY-MM").
        if let Some(date) = doc.path("date").and_then(Value::as_str) {
            if let Some(year) = date.get(..4).and_then(|y| y.parse::<i32>().ok()) {
                total += self.weights.recency * f64::from((year - 2019).clamp(0, 10));
            }
        }
        total
    }

    fn score_field(&self, value: Option<&Value>) -> f64 {
        let mut texts = Vec::new();
        collect_strings(value, &mut texts);
        if texts.is_empty() {
            return 0.0;
        }
        let mut score = 0.0;
        for text in &texts {
            score += self.score_text(text);
        }
        score
    }

    fn score_text(&self, text: &str) -> f64 {
        let tokens = tokenize(text);
        if tokens.is_empty() {
            return 0.0;
        }
        // Per-stem term frequency within this text (direct + synonym).
        let mut tf: Vec<u64> = vec![0; self.query.stems.len()];
        let mut syn_tf: Vec<u64> = vec![0; self.query.synonym_stems.len()];
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); self.query.stems.len()];
        for (pos, tok) in tokens.iter().enumerate() {
            let ts = stem(&tok.text.to_lowercase());
            for (qi, qs) in self.query.stems.iter().enumerate() {
                if &ts == qs {
                    tf[qi] += 1;
                    positions[qi].push(pos);
                }
            }
            for (qi, qs) in self.query.synonym_stems.iter().enumerate() {
                if &ts == qs {
                    syn_tf[qi] += 1;
                }
            }
        }
        let mut score = 0.0;
        for (qi, &count) in tf.iter().enumerate() {
            if count > 0 {
                score += (1.0 + (count as f64).ln()) * self.idf_at(qi);
            }
        }
        // Synonym matches contribute at a discount.
        for (qi, &count) in syn_tf.iter().enumerate() {
            if count > 0 {
                let idf = self.syn_idf.get(qi).copied().unwrap_or(1.0);
                score += self.weights.synonym * (1.0 + (count as f64).ln()) * idf;
            }
        }
        // Proximity: minimal token-distance window covering two or more
        // distinct matched stems.
        let matched: Vec<&Vec<usize>> = positions.iter().filter(|p| !p.is_empty()).collect();
        if matched.len() >= 2 {
            let dist = min_pair_distance(&matched);
            score += self.weights.proximity / (1.0 + dist as f64);
        }
        // Exact phrases: case-insensitive substring presence.
        if !self.query.exact_phrases.is_empty() {
            let lower = text.to_lowercase();
            for phrase in &self.query.exact_phrases {
                if lower.contains(&phrase.to_lowercase()) {
                    score += self.weights.exact_bonus;
                }
            }
        }
        score
    }

    /// True when the index can stand in for the documents: every ranked
    /// field is covered, so [`Ranker::score_postings`] reproduces
    /// [`Ranker::score`] bit-for-bit from posting lists alone.
    pub fn postings_cover(&self, index: &TextIndex) -> bool {
        self.weights
            .fields
            .iter()
            .all(|(path, _)| index.field_id(path).is_some())
    }

    /// Score one document from the inverted index's posting lists instead
    /// of re-tokenizing its text — the query-time half of the postings
    /// index. Returns **exactly** the same `f64` as [`Ranker::score`]
    /// (float addition is non-associative, so every partial sum is
    /// accumulated in the same order: fields in weight order, string
    /// leaves in depth-first order, per leaf direct stems in query order,
    /// then synonyms, proximity, phrases, and finally recency).
    ///
    /// Callers must check [`Ranker::postings_cover`] first; an uncovered
    /// field falls back to the tokenizing scorer for the whole document.
    pub fn score_postings(&self, id: &str, doc: &Value, index: &TextIndex) -> f64 {
        if !self.postings_cover(index) {
            return self.score(doc);
        }
        // One postings lookup per query stem, shared across fields.
        let direct: Vec<Vec<Posting>> = self
            .query
            .stems
            .iter()
            .map(|s| index.postings(s, id).unwrap_or_default())
            .collect();
        let synonym: Vec<Vec<Posting>> = self
            .query
            .synonym_stems
            .iter()
            .map(|s| index.postings(s, id).unwrap_or_default())
            .collect();
        let mut total = 0.0;
        for (path, field_weight) in &self.weights.fields {
            let fid = index.field_id(path).expect("covered field");
            total += field_weight * self.field_score_postings(doc, path, fid, &direct, &synonym);
        }
        if let Some(date) = doc.path("date").and_then(Value::as_str) {
            if let Some(year) = date.get(..4).and_then(|y| y.parse::<i32>().ok()) {
                total += self.weights.recency * f64::from((year - 2019).clamp(0, 10));
            }
        }
        total
    }

    /// One field's score from postings: group the document's postings for
    /// this field by string-leaf ordinal, then fold the leaves in the same
    /// depth-first order `score_field` walks them.
    fn field_score_postings(
        &self,
        doc: &Value,
        path: &str,
        fid: u16,
        direct: &[Vec<Posting>],
        synonym: &[Vec<Posting>],
    ) -> f64 {
        // leaf ordinal -> (direct matches as (query index, positions),
        // synonym matches as (query index, tf)); both in query order
        // because the outer loops ascend.
        type LeafMatches<'p> = (Vec<(usize, &'p [u32])>, Vec<(usize, u64)>);
        let mut leaves: BTreeMap<u32, LeafMatches<'_>> = BTreeMap::new();
        for (qi, postings) in direct.iter().enumerate() {
            for p in postings.iter().filter(|p| p.field == fid) {
                leaves.entry(p.leaf).or_default().0.push((qi, &p.positions));
            }
        }
        for (qi, postings) in synonym.iter().enumerate() {
            for p in postings.iter().filter(|p| p.field == fid) {
                leaves
                    .entry(p.leaf)
                    .or_default()
                    .1
                    .push((qi, p.positions.len() as u64));
            }
        }
        if self.query.exact_phrases.is_empty() {
            // Leaves without matches contribute exactly 0.0, so folding
            // only the matched leaves (ascending ordinal = DFS order)
            // yields the same sum as walking every leaf.
            let mut score = 0.0;
            for (direct_m, syn_m) in leaves.values() {
                score += self.leaf_score(direct_m, syn_m);
            }
            score
        } else {
            // Phrase bonuses need each leaf's raw text (a leaf with no
            // stem match can still contain the phrase), so walk the
            // field's strings in the same DFS order the index numbered
            // them and merge postings by ordinal.
            let mut texts = Vec::new();
            collect_strings(doc.path(path), &mut texts);
            let mut score = 0.0;
            for (ordinal, text) in texts.iter().enumerate() {
                // `score_text` returns early on token-less text — phrase
                // bonuses included — and a text has a token iff it has an
                // alphanumeric character.
                if !text.chars().any(char::is_alphanumeric) {
                    continue;
                }
                let mut leaf = 0.0;
                if let Some((direct_m, syn_m)) = leaves.get(&(ordinal as u32)) {
                    leaf += self.leaf_score(direct_m, syn_m);
                }
                let lower = text.to_lowercase();
                for phrase in &self.query.exact_phrases {
                    if lower.contains(&phrase.to_lowercase()) {
                        leaf += self.weights.exact_bonus;
                    }
                }
                score += leaf;
            }
            score
        }
    }

    /// Replay `score_text`'s accumulation for one leaf from its matches:
    /// direct TF·IDF in query order, synonym TF·IDF at the discount, then
    /// the proximity bonus over direct-match positions.
    fn leaf_score(&self, direct: &[(usize, &[u32])], synonym: &[(usize, u64)]) -> f64 {
        let mut score = 0.0;
        for &(qi, positions) in direct {
            score += (1.0 + (positions.len() as f64).ln()) * self.idf_at(qi);
        }
        for &(qi, tf) in synonym {
            let idf = self.syn_idf.get(qi).copied().unwrap_or(1.0);
            score += self.weights.synonym * (1.0 + (tf as f64).ln()) * idf;
        }
        if direct.len() >= 2 {
            let mut best = usize::MAX;
            for i in 0..direct.len() {
                for j in i + 1..direct.len() {
                    for &a in direct[i].1 {
                        for &b in direct[j].1 {
                            best = best.min((a as usize).abs_diff(b as usize));
                        }
                    }
                }
            }
            let dist = best.saturating_sub(1);
            score += self.weights.proximity / (1.0 + dist as f64);
        }
        score
    }

    /// Byte spans in `text` matching the query (stems or exact phrases) —
    /// drives result-page highlighting.
    pub fn match_spans(&self, text: &str) -> Vec<(usize, usize)> {
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for Token { text: tok, start, end } in tokenize(text) {
            let ts = stem(&tok.to_lowercase());
            if self.query.stems.iter().any(|s| s == &ts)
                || self.query.synonym_stems.iter().any(|s| s == &ts)
            {
                spans.push((start, end));
            }
        }
        let lower = text.to_lowercase();
        for phrase in &self.query.exact_phrases {
            let needle = phrase.to_lowercase();
            let mut at = 0;
            while let Some(p) = lower[at..].find(&needle) {
                // `to_lowercase` can change byte lengths for non-ASCII;
                // guard the span against boundary drift.
                let (s, e) = (at + p, at + p + needle.len());
                if text.is_char_boundary(s) && text.is_char_boundary(e.min(text.len())) {
                    spans.push((s, e.min(text.len())));
                }
                at += p + needle.len().max(1);
            }
        }
        spans.sort_unstable();
        spans.dedup();
        spans
    }
}

/// Minimum distance between positions of two different matched stems.
fn min_pair_distance(matched: &[&Vec<usize>]) -> usize {
    let mut best = usize::MAX;
    for i in 0..matched.len() {
        for j in i + 1..matched.len() {
            for &a in matched[i] {
                for &b in matched[j] {
                    best = best.min(a.abs_diff(b));
                }
            }
        }
    }
    best.saturating_sub(1)
}

fn collect_strings<'v>(value: Option<&'v Value>, out: &mut Vec<&'v str>) {
    match value {
        Some(Value::Str(s)) => out.push(s),
        Some(Value::Array(items)) => {
            for i in items {
                collect_strings(Some(i), out);
            }
        }
        Some(Value::Object(members)) => {
            for (_, v) in members {
                collect_strings(Some(v), out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use covidkg_json::{arr, obj};

    fn ranker(q: &str) -> Ranker {
        Ranker::new(parse_query(q), RankWeights::publication_default(), None, 100)
    }

    #[test]
    fn title_matches_outweigh_body_matches() {
        let r = ranker("masks");
        let title_doc = obj! { "title" => "masks work", "body" => arr![obj!{"text" => "filler"}] };
        let body_doc = obj! { "title" => "something", "body" => arr![obj!{"text" => "masks work"}] };
        assert!(r.score(&title_doc) > r.score(&body_doc));
    }

    #[test]
    fn more_matches_score_higher() {
        let r = ranker("vaccine");
        let one = obj! { "title" => "vaccine" };
        let three = obj! { "title" => "vaccine vaccine vaccine" };
        assert!(r.score(&three) > r.score(&one));
    }

    #[test]
    fn proximity_bonus_rewards_adjacent_terms() {
        let r = ranker("mask mandate");
        let near = obj! { "title" => "mask mandate effects" };
        let far = obj! { "title" => "mask policies and the later mandate" };
        assert!(r.score(&near) > r.score(&far));
    }

    #[test]
    fn stemming_matches_inflected_forms() {
        let r = ranker("vaccination");
        let doc = obj! { "title" => "vaccinations and vaccinating" };
        assert!(r.score(&doc) > 0.0);
    }

    #[test]
    fn exact_phrase_bonus() {
        let r = ranker("\"dose two\"");
        let hit = obj! { "title" => "after Dose Two reactions" };
        let miss = obj! { "title" => "two separate dose arms" };
        assert!(r.score(&hit) > r.score(&miss));
        assert_eq!(r.score(&miss), 0.0);
    }

    #[test]
    fn recency_is_a_static_feature() {
        let r = ranker("masks");
        let newer = obj! { "title" => "masks", "date" => "2022-01" };
        let older = obj! { "title" => "masks", "date" => "2020-01" };
        assert!(r.score(&newer) > r.score(&older));
    }

    #[test]
    fn idf_rewards_rare_terms_with_index() {
        let idx = TextIndex::new(vec!["title".into()]);
        for i in 0..50 {
            idx.add(&format!("d{i}"), &obj! { "title" => "vaccine study" });
        }
        idx.add("rare", &obj! { "title" => "molnupiravir study" });
        let r = Ranker::new(
            parse_query("vaccine molnupiravir"),
            RankWeights::publication_default(),
            Some(&idx),
            51,
        );
        let vdoc = obj! { "title" => "vaccine" };
        let mdoc = obj! { "title" => "molnupiravir" };
        assert!(r.score(&mdoc) > r.score(&vdoc));
    }

    #[test]
    fn match_spans_cover_stem_and_phrase_hits() {
        let r = ranker("mask \"dose two\"");
        let text = "Masks and dose two protocols";
        let spans = r.match_spans(text);
        let matched: Vec<&str> = spans.iter().map(|&(s, e)| &text[s..e]).collect();
        assert!(matched.contains(&"Masks"));
        assert!(matched.contains(&"dose two"));
    }

    #[test]
    fn synonym_matches_score_at_a_discount() {
        let r = ranker("vaccine");
        let direct = obj! { "title" => "vaccine rollout" };
        let synonym = obj! { "title" => "immunization rollout" };
        let unrelated = obj! { "title" => "ventilator rollout" };
        let (sd, ss, su) = (r.score(&direct), r.score(&synonym), r.score(&unrelated));
        assert!(sd > ss, "direct {sd} must beat synonym {ss}");
        assert!(ss > su, "synonym {ss} must beat unrelated {su}");
        assert_eq!(su, 0.0);
        // Synonym tokens are highlighted too.
        let spans = r.match_spans("immunization works");
        assert_eq!(spans.len(), 1);
    }

    #[test]
    fn no_query_terms_scores_zero() {
        let r = ranker("the of");
        assert_eq!(r.score(&obj! { "title" => "anything" }), 0.0);
    }

    #[test]
    fn nested_fields_are_searched() {
        let r = ranker("ventilators");
        let doc = obj! {
            "tables" => arr![ obj!{ "caption" => "ventilator counts", "html" => "<table>…</table>" } ],
        };
        assert!(r.score(&doc) > 0.0);
    }

    #[test]
    fn postings_scorer_is_bit_identical_to_tokenizing_scorer() {
        let fields: Vec<String> = ["title", "abstract", "tables", "figure_captions", "body"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let idx = TextIndex::new(fields);
        let docs = [
            obj! {
                "_id" => "a",
                "title" => "Mask mandate efficacy for mask use",
                "abstract" => "Immunization and vaccine dose two outcomes",
                "tables" => arr![
                    obj!{ "caption" => "dose outcomes", "html" => "<table>…</table>" },
                    obj!{ "caption" => "§§§" },
                ],
                "body" => arr![ obj!{ "heading" => "Methods", "text" => "masked cohort" } ],
                "date" => "2022-03",
            },
            obj! { "_id" => "b", "title" => "dose two", "date" => "2019-01" },
            obj! { "_id" => "c", "body" => arr![] },
        ];
        for d in &docs {
            idx.add(d.get("_id").unwrap().as_str().unwrap(), d);
        }
        for q in [
            "mask",
            "mask mandate",
            "vaccine dose",
            "\"dose two\" mask",
            "\"dose outcomes\"",
            "unmatched query words",
        ] {
            let r = Ranker::new(parse_query(q), RankWeights::publication_default(), Some(&idx), 3);
            assert!(r.postings_cover(&idx));
            for d in &docs {
                let id = d.get("_id").unwrap().as_str().unwrap();
                let naive = r.score(d);
                let fast = r.score_postings(id, d, &idx);
                assert_eq!(
                    naive.to_bits(),
                    fast.to_bits(),
                    "query {q:?} doc {id}: naive {naive} vs postings {fast}"
                );
            }
        }
        // An index missing a ranked field is not a valid stand-in.
        let partial = TextIndex::new(vec!["title".into()]);
        let r = Ranker::new(parse_query("mask"), RankWeights::publication_default(), None, 1);
        assert!(!r.postings_cover(&partial));
    }

    #[test]
    fn min_pair_distance_math() {
        let a = vec![0usize, 10];
        let b = vec![3usize];
        assert_eq!(min_pair_distance(&[&a, &b]), 2);
        let adjacent = vec![4usize];
        let c = vec![5usize];
        assert_eq!(min_pair_distance(&[&adjacent, &c]), 0);
    }
}
