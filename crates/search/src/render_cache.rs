//! Render-level cache: memoized snippet/highlight construction.
//!
//! `covidkg-serve` already caches whole result *pages*, but any page miss
//! (new query, new page number, generation bump) rebuilds every result
//! from scratch — re-walking each document's fields for match spans and
//! snippet windows. This cache memoizes the per-document render instead,
//! keyed on `(mutation epoch, document id, canonical query stems)`:
//! different pages, engines and paginations of overlapping result sets
//! share the rendered snippets, and an epoch bump (replace/update/delete
//! in the store) invalidates everything at once. Scores are *not* cached
//! — they depend on corpus-level IDF and are filled in fresh per search.

use crate::result::{FieldSnippet, SearchResult};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The memoized, score-free part of a [`SearchResult`].
#[derive(Debug, Clone)]
pub struct CachedRender {
    /// Rendered title.
    pub title: String,
    /// Brief-view snippets.
    pub snippets: Vec<FieldSnippet>,
    /// Collapsed further matches.
    pub collapsed: Vec<FieldSnippet>,
}

/// Hit/miss/occupancy counters for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the render.
    pub misses: u64,
    /// Entries currently resident.
    pub resident: usize,
}

#[derive(Default)]
struct Inner {
    /// Epoch the resident entries were rendered at; a different epoch on
    /// lookup clears the map wholesale (documents may have changed).
    epoch: u64,
    map: HashMap<(String, String), CachedRender>,
    /// Insertion order for FIFO eviction once `cap` is reached.
    order: VecDeque<(String, String)>,
}

/// Bounded, epoch-invalidated memo of built result renders.
///
/// Eviction is FIFO over insertion order — renders are cheap enough to
/// rebuild that recency tracking isn't worth a per-hit write.
pub struct RenderCache {
    cap: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for RenderCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("RenderCache")
            .field("cap", &self.cap)
            .field("resident", &s.resident)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

impl RenderCache {
    /// Cache bounded to `cap` entries (minimum 1).
    pub fn new(cap: usize) -> Self {
        RenderCache {
            cap: cap.max(1),
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up a render for `(doc_id, query_key)` at the given store
    /// epoch. A stale epoch drops every resident entry first.
    pub fn get(&self, epoch: u64, doc_id: &str, query_key: &str) -> Option<CachedRender> {
        let mut inner = self.lock();
        if inner.epoch != epoch {
            inner.map.clear();
            inner.order.clear();
            inner.epoch = epoch;
        }
        let hit = inner
            .map
            .get(&(doc_id.to_string(), query_key.to_string()))
            .cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Store the render built from a [`SearchResult`].
    pub fn put(&self, epoch: u64, doc_id: &str, query_key: &str, result: &SearchResult) {
        let mut inner = self.lock();
        if inner.epoch != epoch {
            inner.map.clear();
            inner.order.clear();
            inner.epoch = epoch;
        }
        let key = (doc_id.to_string(), query_key.to_string());
        if inner.map.contains_key(&key) {
            return;
        }
        while inner.map.len() >= self.cap {
            let Some(oldest) = inner.order.pop_front() else { break };
            inner.map.remove(&oldest);
        }
        inner.order.push_back(key.clone());
        inner.map.insert(
            key,
            CachedRender {
                title: result.title.clone(),
                snippets: result.snippets.clone(),
                collapsed: result.collapsed.clone(),
            },
        );
    }

    /// Advance the cache to `epoch`, evicting only the documents the
    /// store proves were touched. `touched_since` receives the resident
    /// epoch and returns the ids mutated since it — or `None` when the
    /// store can't bound the set, in which case everything is dropped
    /// (the pre-existing wholesale behavior). Entries for unrelated
    /// documents survive the epoch bump.
    pub fn sync(&self, epoch: u64, touched_since: impl FnOnce(u64) -> Option<Vec<String>>) {
        let mut inner = self.lock();
        if inner.epoch == epoch {
            return;
        }
        match touched_since(inner.epoch) {
            Some(ids) => {
                let touched: std::collections::HashSet<&str> =
                    ids.iter().map(String::as_str).collect();
                inner.map.retain(|(doc_id, _), _| !touched.contains(doc_id.as_str()));
                let map = &inner.map;
                let retained: VecDeque<(String, String)> = inner
                    .order
                    .iter()
                    .filter(|k| map.contains_key(*k))
                    .cloned()
                    .collect();
                inner.order = retained;
            }
            None => {
                inner.map.clear();
                inner.order.clear();
            }
        }
        inner.epoch = epoch;
    }

    /// Current counters.
    pub fn stats(&self) -> RenderCacheStats {
        let resident = self.lock().map.len();
        RenderCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            resident,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_text::Snippet;

    fn render(tag: &str) -> SearchResult {
        SearchResult {
            id: tag.to_string(),
            title: format!("title {tag}"),
            score: 1.0,
            snippets: vec![FieldSnippet {
                field: "title".into(),
                snippet: Snippet {
                    text: format!("snippet {tag}"),
                    highlights: vec![],
                    leading_ellipsis: false,
                    trailing_ellipsis: false,
                },
            }],
            collapsed: vec![],
        }
    }

    #[test]
    fn hit_after_put_and_counters() {
        let cache = RenderCache::new(8);
        assert!(cache.get(1, "d1", "q").is_none());
        cache.put(1, "d1", "q", &render("d1"));
        let hit = cache.get(1, "d1", "q").expect("cached");
        assert_eq!(hit.title, "title d1");
        assert_eq!(hit.snippets[0].snippet.text, "snippet d1");
        // Different query key is a different entry.
        assert!(cache.get(1, "d1", "other").is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.resident), (1, 2, 1));
    }

    #[test]
    fn epoch_change_invalidates_everything() {
        let cache = RenderCache::new(8);
        cache.put(1, "d1", "q", &render("d1"));
        cache.put(1, "d2", "q", &render("d2"));
        assert!(cache.get(1, "d2", "q").is_some());
        // The store mutated: epoch 2 lookups see an empty cache.
        assert!(cache.get(2, "d1", "q").is_none());
        assert_eq!(cache.stats().resident, 0);
        // And the old epoch's entries never resurface.
        assert!(cache.get(1, "d1", "q").is_none());
    }

    #[test]
    fn sync_evicts_only_touched_documents() {
        let cache = RenderCache::new(8);
        cache.put(1, "d1", "q", &render("d1"));
        cache.put(1, "d2", "q", &render("d2"));
        cache.put(1, "d2", "other", &render("d2"));
        // The store reports only d2 changed between epochs 1 and 3.
        cache.sync(3, |since| {
            assert_eq!(since, 1);
            Some(vec!["d2".to_string()])
        });
        assert!(cache.get(3, "d1", "q").is_some(), "unrelated doc survives");
        assert!(cache.get(3, "d2", "q").is_none(), "touched doc evicted");
        assert!(cache.get(3, "d2", "other").is_none(), "all keys of it");
        assert_eq!(cache.stats().resident, 1);
    }

    #[test]
    fn sync_without_coverage_clears_everything() {
        let cache = RenderCache::new(8);
        cache.put(1, "d1", "q", &render("d1"));
        cache.sync(9, |_| None);
        assert!(cache.get(9, "d1", "q").is_none());
        assert_eq!(cache.stats().resident, 0);
    }

    #[test]
    fn sync_same_epoch_is_a_no_op() {
        let cache = RenderCache::new(8);
        cache.put(4, "d1", "q", &render("d1"));
        cache.sync(4, |_| panic!("touched_since must not be consulted"));
        assert!(cache.get(4, "d1", "q").is_some());
    }

    #[test]
    fn sync_keeps_eviction_order_consistent() {
        let cache = RenderCache::new(2);
        cache.put(1, "a", "q", &render("a"));
        cache.put(1, "b", "q", &render("b"));
        cache.sync(2, |_| Some(vec!["a".to_string()]));
        // "a" is gone; inserting two more must evict "b" first, not a
        // phantom slot left behind by the sync.
        cache.put(2, "c", "q", &render("c"));
        cache.put(2, "d", "q", &render("d"));
        assert!(cache.get(2, "b", "q").is_none());
        assert!(cache.get(2, "c", "q").is_some());
        assert!(cache.get(2, "d", "q").is_some());
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let cache = RenderCache::new(2);
        cache.put(1, "a", "q", &render("a"));
        cache.put(1, "b", "q", &render("b"));
        cache.put(1, "c", "q", &render("c"));
        assert!(cache.get(1, "a", "q").is_none(), "oldest evicted");
        assert!(cache.get(1, "b", "q").is_some());
        assert!(cache.get(1, "c", "q").is_some());
        assert_eq!(cache.stats().resident, 2);
    }
}
