//! The three search engines (§2.1), compiled to aggregation pipelines.
//!
//! "The Search Engine receives results from the database by using an
//! aggregation query … The first stage in the pipeline is a `$match`
//! expression … It was mindful to use the `$match` stage first to
//! minimize the amount of data being passed through all the latter
//! stages … In the next stage, the data is passed through a `$project`
//! stage, which streams only the specified fields … The pipeline also
//! uses a few custom `$function` stages to derive calculations … for
//! ranking results."

use crate::query::{parse_query, ParsedQuery};
use crate::rank::{RankWeights, Ranker};
use crate::render_cache::{RenderCache, RenderCacheStats};
use crate::result::{build_result, SearchPage, SearchResult};
use covidkg_json::Value;
use covidkg_regex::escape;
use covidkg_store::pipeline::{project, DocFn, Pipeline};
use covidkg_store::{Collection, Filter};
use std::sync::Arc;

/// Which of the three §2.1 engines to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchMode {
    /// §2.1.1 — separate queries over title, abstract and table captions;
    /// every non-empty field query must match its field ("the search
    /// fields are inclusive").
    TitleAbstractCaption {
        /// Query against `title` (empty = unused).
        title: String,
        /// Query against `abstract`.
        abstract_q: String,
        /// Query against table captions.
        caption: String,
    },
    /// §2.1.2 — one query over all publication fields.
    AllFields(String),
    /// §2.1.3 — query over table captions and table data only.
    Tables(String),
}

/// Results per page — "paginated as a list of ten per page".
pub const PAGE_SIZE: usize = 10;

/// How to execute a compiled search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExecStrategy {
    /// Index-pruned, shard-parallel, postings-scored top-k when the index
    /// covers every ranked field; otherwise the pushdown pipeline.
    Auto,
    /// Full scan of every shard, tokenizing scorer, full sort — the
    /// correctness oracle and the unindexed-collection fallback semantics.
    FullScan,
}

/// A search engine bound to a publications collection.
pub struct SearchEngine {
    collection: Arc<Collection>,
    weights: RankWeights,
    render_cache: Option<Arc<RenderCache>>,
}

impl SearchEngine {
    /// Engine over `collection` with default publication weights.
    pub fn new(collection: Arc<Collection>) -> SearchEngine {
        SearchEngine {
            collection,
            weights: RankWeights::publication_default(),
            render_cache: None,
        }
    }

    /// Override ranking weights.
    pub fn with_weights(mut self, weights: RankWeights) -> SearchEngine {
        self.weights = weights;
        self
    }

    /// Attach a render-level cache memoizing built snippets/highlights
    /// across searches (invalidated by the collection's mutation epoch).
    pub fn with_render_cache(mut self, cache: Arc<RenderCache>) -> SearchEngine {
        self.render_cache = Some(cache);
        self
    }

    /// Render-cache counters, if a cache is attached.
    pub fn render_cache_stats(&self) -> Option<RenderCacheStats> {
        self.render_cache.as_ref().map(|c| c.stats())
    }

    /// Run a search, returning the requested 0-based page.
    ///
    /// When the inverted index covers every ranked field, execution is
    /// index-pruned (candidates from the `$match` filter), scored from
    /// posting lists across one worker per shard, and bounded to the top
    /// `(page+1)·PAGE_SIZE` — returning exactly the same page (ids, order,
    /// scores) as [`SearchEngine::search_naive`].
    pub fn search(&self, mode: &SearchMode, page: usize) -> SearchPage {
        self.run_search(mode, page, ExecStrategy::Auto)
    }

    /// The naive reference path: score every document with the tokenizing
    /// ranker over a full shard scan and fully sort all matches. This is
    /// the oracle the equivalence property test holds [`SearchEngine::search`]
    /// against, and the semantics every optimized path must preserve.
    pub fn search_naive(&self, mode: &SearchMode, page: usize) -> SearchPage {
        self.run_search(mode, page, ExecStrategy::FullScan)
    }

    fn run_search(&self, mode: &SearchMode, page: usize, strategy: ExecStrategy) -> SearchPage {
        let (query_text, parsed, filter, field_paths) = self.compile(mode);
        if parsed.is_empty() {
            return SearchPage {
                query: query_text,
                page,
                page_size: PAGE_SIZE,
                total: 0,
                results: Vec::new(),
            };
        }
        let weights = self.scoped_weights(&field_paths);
        let ranker = Arc::new(Ranker::new(
            parsed,
            weights,
            self.collection.text_index(),
            self.collection.len(),
        ));
        let mut projection: Vec<String> = field_paths.clone();
        for keep in ["title", "date"] {
            if !projection.iter().any(|p| p == keep) {
                projection.push(keep.to_string());
            }
        }
        // Snippets depend on the projected fields and the query's stem/
        // phrase sets (not on scores), so that pair is the render key.
        let render_key = render_key(&projection, &ranker);
        let epoch = self.collection.mutation_epoch();
        if let Some(cache) = &self.render_cache {
            // Per-document invalidation: only renders of touched docs are
            // dropped; warm entries survive unrelated updates. Falls back
            // to a wholesale clear when the store can't bound the set.
            cache.sync(epoch, |since| self.collection.touched_since(since));
        }

        // Fast path: index-pruned candidates, postings-based scoring, one
        // worker per shard, bounded to the page's top-k.
        if strategy == ExecStrategy::Auto {
            if let Some(index) = self.collection.text_index() {
                if ranker.postings_cover(index) {
                    let k = (page + 1) * PAGE_SIZE;
                    let (total, top) = self.collection.scored_top_k(&filter, k, |id, doc| {
                        ranker.score_postings(id, doc, index)
                    });
                    let results = top
                        .iter()
                        .skip(page * PAGE_SIZE)
                        .map(|(score, doc)| {
                            // Project like the pipeline does so snippets
                            // come from the same field subset.
                            let projected = project(doc, &projection);
                            self.build_cached(&projected, *score, &ranker, &render_key, epoch)
                        })
                        .collect();
                    return SearchPage {
                        query: query_text,
                        page,
                        page_size: PAGE_SIZE,
                        total,
                        results,
                    };
                }
            }
        }

        // $match → $project → $function(rank) → $sort → paginate.
        let rank_fn: DocFn = {
            let ranker = Arc::clone(&ranker);
            Arc::new(move |doc: &Value| Value::float(ranker.score(doc)))
        };
        let pipeline = Pipeline::new()
            .match_filter(filter)
            .project(projection)
            .function("covidkg_rank", "score", rank_fn)
            .sort_desc("score")
            .stage(covidkg_store::pipeline::Stage::Sort(vec![
                ("score".into(), covidkg_store::pipeline::Order::Desc),
                ("_id".into(), covidkg_store::pipeline::Order::Asc),
            ]));
        let ranked = match strategy {
            // Pushdown: a leading `$match` seeds from the index.
            ExecStrategy::Auto => self.collection.aggregate(&pipeline),
            // Oracle: materialize everything, no index assistance.
            ExecStrategy::FullScan => pipeline.run(self.collection.scan_all()),
        };
        let total = ranked.len();
        let results = ranked
            .iter()
            .skip(page * PAGE_SIZE)
            .take(PAGE_SIZE)
            .map(|doc| {
                let score = doc.path("score").and_then(Value::as_f64).unwrap_or(0.0);
                self.build_cached(doc, score, &ranker, &render_key, epoch)
            })
            .collect();
        SearchPage {
            query: query_text,
            page,
            page_size: PAGE_SIZE,
            total,
            results,
        }
    }

    /// Build one result, memoizing the score-free render parts when a
    /// render cache is attached.
    fn build_cached(
        &self,
        doc: &Value,
        score: f64,
        ranker: &Ranker,
        render_key: &str,
        epoch: u64,
    ) -> SearchResult {
        let Some(cache) = &self.render_cache else {
            return build_result(doc, score, ranker);
        };
        let id = doc.get("_id").and_then(Value::as_str).unwrap_or("<missing id>");
        if let Some(cached) = cache.get(epoch, id, render_key) {
            return SearchResult {
                id: id.to_string(),
                title: cached.title,
                score,
                snippets: cached.snippets,
                collapsed: cached.collapsed,
            };
        }
        let built = build_result(doc, score, ranker);
        cache.put(epoch, id, render_key, &built);
        built
    }

    /// The collection this engine searches (shared with the hybrid
    /// dense ranker, which fetches documents for dense-only hits).
    pub(crate) fn collection(&self) -> &Arc<Collection> {
        &self.collection
    }

    /// The engine's rank weights restricted to `field_paths` (unknown
    /// fields weigh 1.0), as used for every query compilation.
    pub(crate) fn scoped_weights(&self, field_paths: &[String]) -> RankWeights {
        RankWeights {
            fields: field_paths
                .iter()
                .map(|p| {
                    let w = self
                        .weights
                        .fields
                        .iter()
                        .find(|(f, _)| f == p)
                        .map_or(1.0, |(_, w)| *w);
                    (p.clone(), w)
                })
                .collect(),
            ..self.weights.clone()
        }
    }

    /// The top-`k` `(score, _id)` pairs for a mode — the lexical
    /// candidate list the hybrid ranker fuses with ANN neighbors.
    /// Ordering matches [`SearchEngine::search`]: `(score desc, _id
    /// asc)`, same fast path / pipeline split.
    pub fn ranked_ids(&self, mode: &SearchMode, k: usize) -> Vec<(f64, String)> {
        let (_, parsed, filter, field_paths) = self.compile(mode);
        if parsed.is_empty() || k == 0 {
            return Vec::new();
        }
        let ranker = Arc::new(Ranker::new(
            parsed,
            self.scoped_weights(&field_paths),
            self.collection.text_index(),
            self.collection.len(),
        ));
        if let Some(index) = self.collection.text_index() {
            if ranker.postings_cover(index) {
                let (_, top) = self.collection.scored_top_k(&filter, k, |id, doc| {
                    ranker.score_postings(id, doc, index)
                });
                return top
                    .iter()
                    .map(|(score, doc)| {
                        let id = doc.get("_id").and_then(Value::as_str).unwrap_or_default();
                        (*score, id.to_string())
                    })
                    .collect();
            }
        }
        let rank_fn: DocFn = {
            let ranker = Arc::clone(&ranker);
            Arc::new(move |doc: &Value| Value::float(ranker.score(doc)))
        };
        let pipeline = Pipeline::new()
            .match_filter(filter)
            .function("covidkg_rank", "score", rank_fn)
            .stage(covidkg_store::pipeline::Stage::Sort(vec![
                ("score".into(), covidkg_store::pipeline::Order::Desc),
                ("_id".into(), covidkg_store::pipeline::Order::Asc),
            ]));
        self.collection
            .aggregate(&pipeline)
            .iter()
            .take(k)
            .map(|doc| {
                let score = doc.path("score").and_then(Value::as_f64).unwrap_or(0.0);
                let id = doc.get("_id").and_then(Value::as_str).unwrap_or_default();
                (score, id.to_string())
            })
            .collect()
    }

    /// Compile a mode into (display text, parsed query, `$match` filter,
    /// searched field paths).
    pub(crate) fn compile(&self, mode: &SearchMode) -> (String, ParsedQuery, Filter, Vec<String>) {
        match mode {
            SearchMode::AllFields(q) => {
                let parsed = parse_query(q);
                let fields = vec![
                    "title".to_string(),
                    "abstract".to_string(),
                    "tables".to_string(),
                    "figure_captions".to_string(),
                    "body".to_string(),
                ];
                let filter = query_filter(&parsed, &fields);
                (q.clone(), parsed, filter, fields)
            }
            SearchMode::Tables(q) => {
                let parsed = parse_query(q);
                // §2.1.3: "regular expression search over table captions
                // and all of the table's data".
                let fields = vec!["tables".to_string()];
                let filter = query_filter(&parsed, &fields);
                (q.clone(), parsed, filter, fields)
            }
            SearchMode::TitleAbstractCaption {
                title,
                abstract_q,
                caption,
            } => {
                // Inclusive field semantics: AND over the non-empty field
                // queries, each restricted to its own field.
                let mut clauses = Vec::new();
                let mut fields = Vec::new();
                let mut combined = ParsedQuery::default();
                let mut display = Vec::new();
                for (q, field) in [
                    (title, "title"),
                    (abstract_q, "abstract"),
                    (caption, "tables"),
                ] {
                    let parsed = parse_query(q);
                    if parsed.is_empty() {
                        continue;
                    }
                    display.push(format!("{field}:{q}"));
                    clauses.push(query_filter(&parsed, &[field.to_string()]));
                    fields.push(field.to_string());
                    combined.exact_phrases.extend(parsed.exact_phrases);
                    combined.terms.extend(parsed.terms);
                    for s in parsed.stems {
                        if !combined.stems.contains(&s) {
                            combined.stems.push(s);
                        }
                    }
                }
                let filter = match clauses.len() {
                    0 => Filter::True,
                    1 => clauses.pop().unwrap(),
                    _ => Filter::And(clauses),
                };
                (display.join(" "), combined, filter, fields)
            }
        }
    }
}

/// Canonical key for the render-level cache: the projected field set plus
/// the query's sorted stem/synonym/phrase sets. Snippets and highlights
/// (`match_spans`) depend on nothing else, so equivalent queries across
/// pages and engines with the same field scope share renders.
fn render_key(projection: &[String], ranker: &Ranker) -> String {
    let q = ranker.query();
    let mut stems = q.stems.clone();
    stems.sort();
    let mut syn = q.synonym_stems.clone();
    syn.sort();
    let mut phrases: Vec<String> = q.exact_phrases.iter().map(|s| s.to_lowercase()).collect();
    phrases.sort();
    format!(
        "f={}|s={};y={};p={}",
        projection.join(","),
        stems.join(","),
        syn.join(","),
        phrases.join("\u{1}")
    )
}

/// Canonical cache key for an (engine, query, page) triple, used by the
/// `covidkg-serve` result cache.
///
/// Ranking depends only on the *sets* of stems, synonym stems and exact
/// phrases (`rank.rs` sums per-stem statistics and phrase matching is
/// case-insensitive), so the key sorts each set and lowercases phrases:
/// textually different but semantically identical queries ("masks
/// vaccine" vs "Vaccines mask") share one entry. Note the cached page's
/// `query` display string is whichever spelling was cached first.
pub fn cache_key(mode: &SearchMode, page: usize) -> String {
    fn norm(q: &str) -> String {
        let p = parse_query(q);
        let mut stems = p.stems;
        stems.sort();
        let mut syn = p.synonym_stems;
        syn.sort();
        let mut phrases: Vec<String> = p.exact_phrases.iter().map(|s| s.to_lowercase()).collect();
        phrases.sort();
        format!("s={};y={};p={}", stems.join(","), syn.join(","), phrases.join("\u{1}"))
    }
    match mode {
        SearchMode::AllFields(q) => format!("all|{}|{page}", norm(q)),
        SearchMode::Tables(q) => format!("tab|{}|{page}", norm(q)),
        SearchMode::TitleAbstractCaption {
            title,
            abstract_q,
            caption,
        } => format!(
            "tac|t:{}|a:{}|c:{}|{page}",
            norm(title),
            norm(abstract_q),
            norm(caption)
        ),
    }
}

/// Build the `$match` filter for a parsed query over `fields`: stems use
/// the stemmed `$text` machinery; quoted phrases become case-insensitive
/// regexes that must all be present (in any of the fields).
fn query_filter(parsed: &ParsedQuery, fields: &[String]) -> Filter {
    let mut clauses = Vec::new();
    if !parsed.stems.is_empty() {
        // Direct stems plus synonym stems: synonym recall is part of the
        // §5 ranking claim ("matching terms and synonyms"); the ranking
        // function then discounts synonym-only matches.
        let mut stems = parsed.stems.clone();
        stems.extend(parsed.synonym_stems.iter().cloned());
        clauses.push(Filter::Text {
            stems,
            fields: fields.to_vec(),
        });
    }
    for phrase in &parsed.exact_phrases {
        let pattern = escape(phrase);
        let per_field: Vec<Filter> = fields
            .iter()
            .map(|f| {
                // Regex over nested fields needs the flattened text; the
                // store's $regex resolves only direct string paths, so use
                // a text+verify approach: regex against every string leaf
                // under the field via a custom filter composition.
                Filter::Regex(
                    f.clone(),
                    std::sync::Arc::new(
                        covidkg_regex::Regex::new_ci(&pattern).expect("escaped pattern compiles"),
                    ),
                )
            })
            .collect();
        clauses.push(Filter::Or(per_field));
    }
    match clauses.len() {
        0 => Filter::True,
        1 => clauses.pop().unwrap(),
        _ => Filter::And(clauses),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_json::{arr, obj};
    use covidkg_store::CollectionConfig;

    fn collection() -> Arc<Collection> {
        let c = Collection::new(
            CollectionConfig::new("pubs").with_shards(4).with_text_fields([
                "title",
                "abstract",
                "tables",
                "figure_captions",
                "body",
            ]),
        );
        let docs = vec![
            obj! {
                "_id" => "p1",
                "title" => "Mask mandates reduce transmission",
                "abstract" => "Analysis of mask policies across regions.",
                "date" => "2021-05",
                "body" => arr![ obj!{ "heading" => "Intro", "text" => "masking works" } ],
                "tables" => arr![ obj!{ "caption" => "Table 1: mask compliance", "html" => "<table></table>" } ],
            },
            obj! {
                "_id" => "p2",
                "title" => "Vaccine efficacy in adults",
                "abstract" => "Vaccination outcomes after two doses.",
                "date" => "2022-01",
                "body" => arr![ obj!{ "heading" => "Intro", "text" => "vaccines and boosters" } ],
                "tables" => arr![ obj!{ "caption" => "Table 1: efficacy by arm", "html" => "<table></table>" } ],
            },
            obj! {
                "_id" => "p3",
                "title" => "Ventilator capacity planning",
                "abstract" => "ICU ventilators during surges; mask usage noted.",
                "date" => "2020-11",
                "body" => arr![ obj!{ "heading" => "Intro", "text" => "icu load" } ],
                "tables" => arr![ obj!{ "caption" => "Table 1: ventilators per region", "html" => "<table></table>" } ],
            },
        ];
        c.insert_many(docs).unwrap();
        Arc::new(c)
    }

    #[test]
    fn all_fields_search_ranks_title_hits_first() {
        let engine = SearchEngine::new(collection());
        let page = engine.search(&SearchMode::AllFields("masks".into()), 0);
        assert_eq!(page.total, 2, "p1 (title) and p3 (abstract)");
        assert_eq!(page.results[0].id, "p1");
        assert!(page.results[0].score > page.results[1].score);
    }

    #[test]
    fn stemming_matches_query_variants() {
        let engine = SearchEngine::new(collection());
        // "vaccinations" stems to "vaccin" like "Vaccine"/"Vaccination".
        let page = engine.search(&SearchMode::AllFields("vaccinations".into()), 0);
        assert_eq!(page.total, 1);
        assert_eq!(page.results[0].id, "p2");
    }

    #[test]
    fn quoted_query_requires_exact_presence() {
        let engine = SearchEngine::new(collection());
        let page = engine.search(&SearchMode::AllFields("\"mask mandates\"".into()), 0);
        assert_eq!(page.total, 1);
        assert_eq!(page.results[0].id, "p1");
        // Stemmed variant of the same words appears in p3's abstract too,
        // but the exact phrase does not.
        let loose = engine.search(&SearchMode::AllFields("mask mandates".into()), 0);
        assert!(loose.total >= 1);
    }

    #[test]
    fn table_engine_searches_only_tables() {
        let engine = SearchEngine::new(collection());
        let page = engine.search(&SearchMode::Tables("ventilators".into()), 0);
        assert_eq!(page.total, 1, "only p3's table mentions ventilators");
        assert_eq!(page.results[0].id, "p3");
        // "transmission" appears in p1's title but no table.
        let none = engine.search(&SearchMode::Tables("transmission".into()), 0);
        assert_eq!(none.total, 0);
    }

    #[test]
    fn title_abstract_caption_fields_are_inclusive() {
        let engine = SearchEngine::new(collection());
        // Title must contain masks AND caption must contain compliance.
        let page = engine.search(
            &SearchMode::TitleAbstractCaption {
                title: "masks".into(),
                abstract_q: String::new(),
                caption: "compliance".into(),
            },
            0,
        );
        assert_eq!(page.total, 1);
        assert_eq!(page.results[0].id, "p1");
        // Same title query with a caption that p1 lacks → no results.
        let none = engine.search(
            &SearchMode::TitleAbstractCaption {
                title: "masks".into(),
                abstract_q: String::new(),
                caption: "efficacy".into(),
            },
            0,
        );
        assert_eq!(none.total, 0);
    }

    #[test]
    fn empty_queries_return_empty_pages() {
        let engine = SearchEngine::new(collection());
        let page = engine.search(&SearchMode::AllFields("the of".into()), 0);
        assert_eq!(page.total, 0);
        assert!(page.results.is_empty());
    }

    #[test]
    fn pagination_slices_results() {
        let c = Collection::new(
            CollectionConfig::new("pubs").with_text_fields(["title"]),
        );
        for i in 0..25 {
            c.insert(obj! {
                "_id" => format!("p{i:02}"),
                "title" => format!("mask study number {i}"),
                "date" => "2021-01",
            })
            .unwrap();
        }
        let engine = SearchEngine::new(Arc::new(c));
        let p0 = engine.search(&SearchMode::AllFields("mask".into()), 0);
        let p1 = engine.search(&SearchMode::AllFields("mask".into()), 1);
        let p2 = engine.search(&SearchMode::AllFields("mask".into()), 2);
        assert_eq!(p0.total, 25);
        assert_eq!(p0.results.len(), 10);
        assert_eq!(p1.results.len(), 10);
        assert_eq!(p2.results.len(), 5);
        assert_eq!(p0.page_count(), 3);
        // No overlap between pages.
        let ids0: Vec<&str> = p0.results.iter().map(|r| r.id.as_str()).collect();
        let ids1: Vec<&str> = p1.results.iter().map(|r| r.id.as_str()).collect();
        assert!(ids0.iter().all(|id| !ids1.contains(id)));
    }

    #[test]
    fn snippets_highlight_matches() {
        let engine = SearchEngine::new(collection());
        let page = engine.search(&SearchMode::AllFields("masks".into()), 0);
        let rendered = page.render();
        assert!(rendered.to_lowercase().contains("[mask"), "{rendered}");
    }

    #[test]
    fn synonyms_extend_recall_but_rank_below_direct_matches() {
        let c = Collection::new(CollectionConfig::new("pubs").with_text_fields(["title"]));
        c.insert(obj! { "_id" => "direct", "title" => "vaccine rollout", "date" => "2021-01" })
            .unwrap();
        c.insert(obj! { "_id" => "synonym", "title" => "immunization rollout", "date" => "2021-01" })
            .unwrap();
        c.insert(obj! { "_id" => "noise", "title" => "ventilator supply", "date" => "2021-01" })
            .unwrap();
        let engine = SearchEngine::new(Arc::new(c));
        let page = engine.search(&SearchMode::AllFields("vaccine".into()), 0);
        // Synonym doc is retrieved (recall) …
        assert_eq!(page.total, 2, "expected direct + synonym hits");
        // … but ranks below the direct match.
        assert_eq!(page.results[0].id, "direct");
        assert_eq!(page.results[1].id, "synonym");
        assert!(page.results[0].score > page.results[1].score);
    }

    #[test]
    fn cache_keys_canonicalize_equivalent_queries() {
        let a = cache_key(&SearchMode::AllFields("Vaccines mask".into()), 0);
        let b = cache_key(&SearchMode::AllFields("masks vaccine".into()), 0);
        assert_eq!(a, b, "term order and inflection must not split the key");
        let c = cache_key(&SearchMode::AllFields("masks vaccine".into()), 1);
        assert_ne!(a, c, "page is part of the key");
        let d = cache_key(&SearchMode::Tables("masks vaccine".into()), 0);
        assert_ne!(a, d, "engine is part of the key");
        let e = cache_key(&SearchMode::AllFields("\"Mask Mandates\"".into()), 0);
        let f = cache_key(&SearchMode::AllFields("\"mask mandates\"".into()), 0);
        assert_eq!(e, f, "phrase matching is case-insensitive");
        let tac = cache_key(
            &SearchMode::TitleAbstractCaption {
                title: "masks".into(),
                abstract_q: String::new(),
                caption: String::new(),
            },
            0,
        );
        let tac_swapped = cache_key(
            &SearchMode::TitleAbstractCaption {
                title: String::new(),
                abstract_q: "masks".into(),
                caption: String::new(),
            },
            0,
        );
        assert_ne!(tac, tac_swapped, "field assignment is part of the key");
    }

    #[test]
    fn results_are_deterministic() {
        let engine = SearchEngine::new(collection());
        let a = engine.search(&SearchMode::AllFields("masks".into()), 0);
        let b = engine.search(&SearchMode::AllFields("masks".into()), 0);
        let ids_a: Vec<&str> = a.results.iter().map(|r| r.id.as_str()).collect();
        let ids_b: Vec<&str> = b.results.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids_a, ids_b);
    }

    /// Pages must agree between the pruned/postings/top-k path and the
    /// full-scan oracle down to rendered snippets and score bits.
    fn assert_pages_identical(fast: &SearchPage, naive: &SearchPage, ctx: &str) {
        assert_eq!(fast.total, naive.total, "{ctx}: total");
        assert_eq!(fast.results.len(), naive.results.len(), "{ctx}: page len");
        for (f, n) in fast.results.iter().zip(&naive.results) {
            assert_eq!(f.id, n.id, "{ctx}: id order");
            assert_eq!(f.score.to_bits(), n.score.to_bits(), "{ctx}: score bits for {}", f.id);
            assert_eq!(f.title, n.title, "{ctx}");
            assert_eq!(f.snippets.len(), n.snippets.len(), "{ctx}: snippets for {}", f.id);
            for (a, b) in f.snippets.iter().zip(&n.snippets) {
                assert_eq!(a.field, b.field, "{ctx}");
                assert_eq!(a.snippet.render_marked(), b.snippet.render_marked(), "{ctx}");
            }
            assert_eq!(f.collapsed.len(), n.collapsed.len(), "{ctx}: collapsed for {}", f.id);
        }
    }

    #[test]
    fn fast_path_matches_naive_oracle_across_engines() {
        let engine = SearchEngine::new(collection());
        let modes = [
            SearchMode::AllFields("masks vaccine".into()),
            SearchMode::AllFields("\"mask mandates\" transmission".into()),
            SearchMode::Tables("ventilators efficacy".into()),
            SearchMode::TitleAbstractCaption {
                title: "masks".into(),
                abstract_q: "policies".into(),
                caption: "compliance".into(),
            },
        ];
        for mode in &modes {
            for page in 0..2 {
                let fast = engine.search(mode, page);
                let naive = engine.search_naive(mode, page);
                assert_pages_identical(&fast, &naive, &format!("{mode:?} page {page}"));
            }
        }
    }

    #[test]
    fn render_cache_reuses_snippets_until_mutation() {
        let coll = collection();
        let cache = Arc::new(crate::render_cache::RenderCache::new(64));
        let engine = SearchEngine::new(Arc::clone(&coll)).with_render_cache(Arc::clone(&cache));
        let mode = SearchMode::AllFields("masks".into());
        let first = engine.search(&mode, 0);
        let cold = engine.render_cache_stats().unwrap();
        assert!(cold.misses > 0 && cold.hits == 0);
        let second = engine.search(&mode, 0);
        let warm = engine.render_cache_stats().unwrap();
        assert_eq!(warm.misses, cold.misses, "second render fully cached");
        assert!(warm.hits >= first.results.len() as u64);
        assert_eq!(first.render(), second.render());
        // A mutation bumps the epoch; renders must reflect the new text.
        coll.replace(
            "p1",
            obj! {
                "title" => "Mask mandates revisited",
                "abstract" => "Updated mask analysis.",
                "date" => "2023-01",
            },
        )
        .unwrap();
        let third = engine.search(&mode, 0);
        assert!(third.render().contains("revisited"), "{}", third.render());
    }

    #[test]
    fn render_cache_survives_unrelated_mutation() {
        let coll = collection();
        let cache = Arc::new(crate::render_cache::RenderCache::new(64));
        let engine = SearchEngine::new(Arc::clone(&coll)).with_render_cache(Arc::clone(&cache));
        let mode = SearchMode::AllFields("masks".into());
        let first = engine.search(&mode, 0);
        assert!(first.results.iter().any(|r| r.id == "p1"));
        let warm = engine.render_cache_stats().unwrap();
        assert!(warm.misses > 0);
        // Replace a document that does NOT match the query: the epoch
        // bumps, but only p2's renders are invalidated — and none exist.
        coll.replace(
            "p2",
            obj! {
                "title" => "Vaccine efficacy in adults, updated",
                "abstract" => "Vaccination outcomes after three doses.",
                "date" => "2022-06",
            },
        )
        .unwrap();
        let second = engine.search(&mode, 0);
        let after = engine.render_cache_stats().unwrap();
        assert_eq!(
            after.misses, warm.misses,
            "warm renders must survive the unrelated update"
        );
        assert!(after.hits > warm.hits, "page re-served from warm renders");
        assert_eq!(first.render(), second.render());
        // A mutation that *does* touch a rendered doc still invalidates it.
        coll.replace(
            "p1",
            obj! {
                "title" => "Mask mandates revisited",
                "abstract" => "Updated mask analysis.",
                "date" => "2023-01",
            },
        )
        .unwrap();
        let third = engine.search(&mode, 0);
        assert!(third.render().contains("revisited"), "{}", third.render());
        let touched = engine.render_cache_stats().unwrap();
        assert!(touched.misses > after.misses, "touched doc was rebuilt");
    }
}
