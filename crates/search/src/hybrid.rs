//! The dense retrieval modes: pure-semantic and hybrid lexical+dense.
//!
//! Semantic search embeds the query with the same Word2Vec model that
//! embeds documents (average of known token vectors) and asks the HNSW
//! index for the nearest documents by cosine — finding papers that share
//! *vocabulary distribution* with the query even when no query term
//! appears verbatim. Hybrid search union-merges those neighbors with the
//! lexical engine's top-k via reciprocal-rank fusion:
//!
//! ```text
//! fused(d) = Σ_lists 1 / (K + rank_list(d) + 1)        (K = 60)
//! ```
//!
//! RRF needs no score calibration between the two lists (lexical scores
//! are TF-IDF-ish sums, dense scores are cosines), degrades gracefully
//! when either list is empty, and rewards documents both retrievers
//! agree on. Ties break by `_id` ascending, the repo-wide rule, so a
//! hybrid page is a pure function of `(corpus, model, query, page)` —
//! the wire byte-identity test depends on that.

use crate::engine::{SearchEngine, SearchMode, PAGE_SIZE};
use crate::query::parse_query;
use crate::rank::Ranker;
use crate::result::{build_result, SearchPage, SearchResult};
use covidkg_ann::HnswIndex;
use covidkg_ml::Word2Vec;
use covidkg_store::pipeline::project;
use covidkg_text::tokenize_lower;

/// Which dense serving mode to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DenseMode {
    /// ANN neighbors only, scored by cosine similarity.
    Semantic(String),
    /// ANN neighbors fused with the all-fields lexical top-k by
    /// reciprocal rank.
    Hybrid(String),
}

impl DenseMode {
    /// The raw query text.
    pub fn query(&self) -> &str {
        match self {
            DenseMode::Semantic(q) | DenseMode::Hybrid(q) => q,
        }
    }
}

/// Fusion knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridConfig {
    /// ANN neighbors requested per query.
    pub k_dense: usize,
    /// Lexical candidates requested per query.
    pub k_lexical: usize,
    /// The RRF smoothing constant (60 in the original paper; larger
    /// flattens the rank discount).
    pub rrf_k: f64,
}

impl Default for HybridConfig {
    fn default() -> HybridConfig {
        HybridConfig {
            k_dense: 20,
            k_lexical: 30,
            rrf_k: 60.0,
        }
    }
}

/// Canonical cache key for a dense query, mirroring
/// [`crate::engine::cache_key`]: the embedding averages token vectors,
/// so the key is the sorted token multiset (order-insensitive, count-
/// sensitive); hybrid keys add the lexical stem/phrase normalization
/// because the fused page also depends on the lexical candidate list.
pub fn dense_cache_key(mode: &DenseMode, page: usize) -> String {
    let mut tokens = tokenize_lower(mode.query());
    tokens.sort();
    let dense = tokens.join(",");
    match mode {
        DenseMode::Semantic(_) => format!("sem|{dense}|{page}"),
        DenseMode::Hybrid(q) => {
            let p = parse_query(q);
            let mut stems = p.stems;
            stems.sort();
            let mut syn = p.synonym_stems;
            syn.sort();
            let mut phrases: Vec<String> =
                p.exact_phrases.iter().map(|s| s.to_lowercase()).collect();
            phrases.sort();
            format!(
                "hyb|{dense}|s={};y={};p={}|{page}",
                stems.join(","),
                syn.join(","),
                phrases.join("\u{1}")
            )
        }
    }
}

/// Run a dense/hybrid search, returning the requested 0-based page.
///
/// This is the single implementation every surface uses — the CLI, the
/// serve layer and the HTTP front-end all call through here, so a wire
/// response body is byte-identical to the in-process page by
/// construction.
pub fn dense_search(
    engine: &SearchEngine,
    ann: &HnswIndex,
    embeddings: &Word2Vec,
    mode: &DenseMode,
    page: usize,
    config: &HybridConfig,
) -> SearchPage {
    let query_text = mode.query().to_string();
    let tokens = tokenize_lower(&query_text);
    let qvec = embeddings.embed_phrase(&tokens);
    let empty_embedding = qvec.iter().all(|&x| x == 0.0);

    // Dense candidates: `(rank, id, cosine)` — skipped entirely when no
    // query token is in vocabulary (the zero vector is equidistant from
    // everything; its "neighbors" would be noise).
    let dense: Vec<(String, f32)> = if empty_embedding {
        Vec::new()
    } else {
        ann.search(&qvec, config.k_dense).0
    };

    // Scored candidate list, ordered: either cosine (semantic) or RRF
    // over the dense + lexical lists (hybrid).
    let scored: Vec<(f64, String)> = match mode {
        DenseMode::Semantic(_) => dense
            .into_iter()
            .map(|(id, sim)| (f64::from(sim), id))
            .collect(),
        DenseMode::Hybrid(q) => {
            let lexical =
                engine.ranked_ids(&SearchMode::AllFields(q.clone()), config.k_lexical);
            let mut fused: std::collections::HashMap<String, f64> =
                std::collections::HashMap::new();
            for (rank, (id, _)) in dense.iter().enumerate() {
                *fused.entry(id.clone()).or_insert(0.0) +=
                    1.0 / (config.rrf_k + rank as f64 + 1.0);
            }
            for (rank, (_, id)) in lexical.iter().enumerate() {
                *fused.entry(id.clone()).or_insert(0.0) +=
                    1.0 / (config.rrf_k + rank as f64 + 1.0);
            }
            let mut out: Vec<(f64, String)> =
                fused.into_iter().map(|(id, s)| (s, id)).collect();
            out.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            out
        }
    };

    // Render the page slice with the lexical snippet machinery so dense
    // pages look like lexical pages (title, highlighted snippets).
    let fields = vec![
        "title".to_string(),
        "abstract".to_string(),
        "tables".to_string(),
        "figure_captions".to_string(),
        "body".to_string(),
    ];
    let collection = engine.collection();
    let ranker = Ranker::new(
        parse_query(&query_text),
        engine.scoped_weights(&fields),
        collection.text_index(),
        collection.len(),
    );
    let mut projection = fields;
    projection.push("date".to_string());
    let results: Vec<SearchResult> = scored
        .iter()
        .skip(page * PAGE_SIZE)
        .take(PAGE_SIZE)
        .filter_map(|(score, id)| {
            let doc = collection.get(id)?;
            let projected = project(&doc, &projection);
            Some(build_result(&projected, *score, &ranker))
        })
        .collect();
    SearchPage {
        query: query_text,
        page,
        page_size: PAGE_SIZE,
        total: scored.len(),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_ann::HnswConfig;
    use covidkg_json::obj;
    use covidkg_store::{Collection, CollectionConfig};
    use std::sync::Arc;

    /// A hand-built embedding model with controlled geometry: three
    /// topic axes (masks / vaccines / ventilators) so the test asserts
    /// the *plumbing* (query embedding → ANN → fused page), not the
    /// luck of a toy training run.
    fn model() -> Word2Vec {
        let axes: &[(&str, [f32; 4])] = &[
            ("mask", [1.0, 0.0, 0.0, 0.1]),
            ("masks", [1.0, 0.0, 0.0, 0.1]),
            ("respirator", [0.9, 0.0, 0.0, 0.2]),
            ("respirators", [0.9, 0.0, 0.0, 0.2]),
            ("droplets", [0.8, 0.1, 0.0, 0.0]),
            ("transmission", [0.7, 0.2, 0.0, 0.0]),
            ("vaccine", [0.0, 1.0, 0.0, 0.1]),
            ("vaccines", [0.0, 1.0, 0.0, 0.1]),
            ("booster", [0.0, 0.9, 0.0, 0.2]),
            ("boosters", [0.0, 0.9, 0.0, 0.2]),
            ("antibody", [0.1, 0.8, 0.0, 0.0]),
            ("ventilator", [0.0, 0.0, 1.0, 0.1]),
            ("ventilators", [0.0, 0.0, 1.0, 0.1]),
            ("icu", [0.0, 0.1, 0.9, 0.0]),
            ("oxygen", [0.0, 0.0, 0.8, 0.2]),
            ("covid", [0.3, 0.3, 0.3, 0.5]),
        ];
        let mut text = format!("{} 4\n", axes.len());
        for (w, v) in axes {
            text.push_str(&format!("{w} {} {} {} {}\n", v[0], v[1], v[2], v[3]));
        }
        Word2Vec::load_text(&text).expect("fixture model parses")
    }

    fn fixture() -> (SearchEngine, HnswIndex, Word2Vec) {
        let model = model();
        let docs = [
            ("d1", "Mask mandates reduce transmission", "masks reduce viral transmission"),
            ("d2", "Respirator supply chains", "masks and respirators block droplets"),
            ("d3", "Vaccine efficacy in adults", "vaccines prevent severe covid outcomes"),
            ("d4", "Booster campaigns", "vaccines and boosters raise antibody titers"),
            ("d5", "ICU ventilator capacity", "ventilators support icu patients breathing"),
        ];
        let c = Collection::new(CollectionConfig::new("pubs").with_text_fields([
            "title",
            "abstract",
            "tables",
            "figure_captions",
            "body",
        ]));
        let mut ann = HnswIndex::new(4, HnswConfig::default());
        for (id, title, abs) in docs {
            c.insert(obj! {
                "_id" => id,
                "title" => title,
                "abstract" => abs,
                "date" => "2021-01",
            })
            .unwrap();
            let text = format!("{title} {abs}");
            ann.insert(id, &model.embed_phrase(&tokenize_lower(&text)));
        }
        (SearchEngine::new(Arc::new(c)), ann, model)
    }

    #[test]
    fn semantic_search_finds_related_docs_without_shared_terms() {
        let (engine, ann, model) = fixture();
        let cfg = HybridConfig::default();
        // "respirators" never appears in d1, but the embedding space
        // puts mask-related docs together.
        let page = dense_search(
            &engine,
            &ann,
            &model,
            &DenseMode::Semantic("respirators".into()),
            0,
            &cfg,
        );
        assert!(page.total >= 2);
        let ids: Vec<&str> = page.results.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids[0], "d2", "direct mention ranks first: {ids:?}");
        let rank = |id: &str| ids.iter().position(|x| *x == id).unwrap_or(usize::MAX);
        assert!(
            rank("d1") < rank("d5"),
            "mask doc must outrank ventilator doc for a respirator query: {ids:?}"
        );
    }

    #[test]
    fn semantic_scores_are_cosines_in_descending_order() {
        let (engine, ann, model) = fixture();
        let page = dense_search(
            &engine,
            &ann,
            &model,
            &DenseMode::Semantic("vaccines".into()),
            0,
            &HybridConfig::default(),
        );
        assert!(!page.results.is_empty());
        for w in page.results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert!(page.results[0].score <= 1.0 + 1e-6);
    }

    #[test]
    fn hybrid_fuses_lexical_and_dense_lists() {
        let (engine, ann, model) = fixture();
        let cfg = HybridConfig::default();
        let hybrid = dense_search(
            &engine,
            &ann,
            &model,
            &DenseMode::Hybrid("vaccines".into()),
            0,
            &cfg,
        );
        // The lexical engine alone finds the docs with the term; hybrid
        // must keep those AND may add dense-only neighbors.
        let lexical = engine.ranked_ids(&SearchMode::AllFields("vaccines".into()), cfg.k_lexical);
        let hybrid_ids: Vec<&str> = hybrid.results.iter().map(|r| r.id.as_str()).collect();
        for (_, id) in &lexical {
            assert!(hybrid_ids.contains(&id.as_str()), "lexical hit {id} kept");
        }
        assert!(hybrid.total >= lexical.len());
        // A doc on both lists outranks a doc on one list at similar rank:
        // d3/d4 (lexical + dense) above dense-only strays.
        assert!(hybrid_ids[0] == "d3" || hybrid_ids[0] == "d4", "{hybrid_ids:?}");
    }

    #[test]
    fn unknown_vocabulary_degrades_to_lexical_or_empty() {
        let (engine, ann, model) = fixture();
        let cfg = HybridConfig::default();
        let sem = dense_search(
            &engine,
            &ann,
            &model,
            &DenseMode::Semantic("zzzunknownzzz".into()),
            0,
            &cfg,
        );
        assert_eq!(sem.total, 0, "zero embedding must not return noise");
        let hyb = dense_search(
            &engine,
            &ann,
            &model,
            &DenseMode::Hybrid("zzzunknownzzz masks".into()),
            0,
            &cfg,
        );
        // Embedding still averages over "masks"; at minimum the lexical
        // list keeps the page non-empty.
        assert!(hyb.total >= 1);
    }

    #[test]
    fn dense_pages_are_deterministic_and_paginate() {
        let (engine, ann, model) = fixture();
        let cfg = HybridConfig::default();
        let mode = DenseMode::Hybrid("masks vaccines ventilators".into());
        let a = dense_search(&engine, &ann, &model, &mode, 0, &cfg);
        let b = dense_search(&engine, &ann, &model, &mode, 0, &cfg);
        assert_eq!(a.to_json().to_json(), b.to_json().to_json());
        assert_eq!(a.page_size, PAGE_SIZE);
        let beyond = dense_search(&engine, &ann, &model, &mode, 7, &cfg);
        assert_eq!(beyond.total, a.total);
        assert!(beyond.results.is_empty());
    }

    #[test]
    fn dense_cache_keys_canonicalize() {
        let a = dense_cache_key(&DenseMode::Semantic("Masks Vaccine".into()), 0);
        let b = dense_cache_key(&DenseMode::Semantic("vaccine masks".into()), 0);
        assert_eq!(a, b, "token multiset is order/case-insensitive");
        let dup = dense_cache_key(&DenseMode::Semantic("masks masks vaccine".into()), 0);
        assert_ne!(a, dup, "duplicate tokens shift the average embedding");
        let c = dense_cache_key(&DenseMode::Semantic("vaccine masks".into()), 1);
        assert_ne!(a, c, "page is part of the key");
        let d = dense_cache_key(&DenseMode::Hybrid("vaccine masks".into()), 0);
        assert_ne!(a, d, "mode is part of the key");
        let e = dense_cache_key(&DenseMode::Hybrid("Masks Vaccine".into()), 0);
        assert_eq!(d, e);
    }

    #[test]
    fn snippets_render_for_dense_hits() {
        let (engine, ann, model) = fixture();
        let page = dense_search(
            &engine,
            &ann,
            &model,
            &DenseMode::Hybrid("masks".into()),
            0,
            &HybridConfig::default(),
        );
        let rendered = page.render();
        assert!(rendered.to_lowercase().contains("[mask"), "{rendered}");
    }
}
