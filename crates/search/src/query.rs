//! Query parsing (§2.1): quoted substrings request exact match, bare
//! terms request stemmed match.

use covidkg_text::{is_stopword, stem, tokenize_lower};

/// A parsed user query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedQuery {
    /// Quoted phrases requiring exact (case-insensitive) presence.
    pub exact_phrases: Vec<String>,
    /// Bare terms (lowercased, stopwords removed).
    pub terms: Vec<String>,
    /// Stems of `terms`, deduplicated, in first-seen order.
    pub stems: Vec<String>,
    /// Synonym stems of `stems` (curated groups, §5 "matching terms and
    /// synonyms"); disjoint from `stems`, scored at a discount.
    pub synonym_stems: Vec<String>,
}

impl ParsedQuery {
    /// True when nothing searchable was entered.
    pub fn is_empty(&self) -> bool {
        self.exact_phrases.is_empty() && self.stems.is_empty()
    }
}

/// Parse a raw query string.
pub fn parse_query(input: &str) -> ParsedQuery {
    let mut exact_phrases = Vec::new();
    let mut rest = String::new();
    let mut chars = input.chars();
    // Extract "quoted phrases"; unbalanced quotes treat the tail as bare.
    'outer: loop {
        let mut buf = String::new();
        for c in chars.by_ref() {
            if c == '"' {
                // Start of a quoted phrase: read until the closing quote.
                let mut phrase = String::new();
                for q in chars.by_ref() {
                    if q == '"' {
                        let trimmed = phrase.trim();
                        if !trimmed.is_empty() {
                            exact_phrases.push(trimmed.to_string());
                        }
                        rest.push_str(&buf);
                        rest.push(' ');
                        continue 'outer;
                    }
                    phrase.push(q);
                }
                // Unbalanced: treat as bare text.
                rest.push_str(&buf);
                rest.push(' ');
                rest.push_str(&phrase);
                break 'outer;
            }
            buf.push(c);
        }
        rest.push_str(&buf);
        break;
    }

    let terms: Vec<String> = tokenize_lower(&rest)
        .into_iter()
        .filter(|t| !is_stopword(t))
        .collect();
    let mut stems = Vec::new();
    for t in &terms {
        let s = stem(t);
        if !stems.contains(&s) {
            stems.push(s);
        }
    }
    let mut synonym_stems = Vec::new();
    for s in &stems {
        for syn in covidkg_text::synonym_stems(s) {
            if !stems.contains(&syn) && !synonym_stems.contains(&syn) {
                synonym_stems.push(syn);
            }
        }
    }
    ParsedQuery {
        exact_phrases,
        terms,
        stems,
        synonym_stems,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_terms_are_stemmed() {
        let q = parse_query("mask mandates");
        assert!(q.exact_phrases.is_empty());
        assert_eq!(q.terms, ["mask", "mandates"]);
        assert_eq!(q.stems, ["mask", "mandat"]);
    }

    #[test]
    fn quoted_phrases_stay_exact() {
        let q = parse_query("\"mRNA-1273\" efficacy");
        assert_eq!(q.exact_phrases, ["mRNA-1273"]);
        assert_eq!(q.stems, ["efficaci"]);
    }

    #[test]
    fn multiple_quotes() {
        let q = parse_query("\"dose one\" and \"dose two\"");
        assert_eq!(q.exact_phrases, ["dose one", "dose two"]);
        // "and" is a stopword.
        assert!(q.stems.is_empty());
    }

    #[test]
    fn unbalanced_quote_degrades_to_bare() {
        let q = parse_query("masks \"unclosed phrase");
        assert!(q.exact_phrases.is_empty());
        assert!(q.stems.contains(&"mask".to_string()));
        assert!(q.stems.contains(&"phrase".to_string()));
    }

    #[test]
    fn stopwords_dropped_and_stems_deduped() {
        let q = parse_query("the vaccine of vaccines");
        assert_eq!(q.terms, ["vaccine", "vaccines"]);
        assert_eq!(q.stems, ["vaccin"]);
    }

    #[test]
    fn synonym_expansion() {
        let q = parse_query("vaccine");
        assert!(q.synonym_stems.contains(&covidkg_text::stem("immunization")));
        // Expansion never duplicates primary stems.
        for s in &q.synonym_stems {
            assert!(!q.stems.contains(s));
        }
        // Terms with no curated group expand to nothing.
        assert!(parse_query("placebo").synonym_stems.is_empty());
        // Querying two members of one group doesn't self-expand.
        let q = parse_query("vaccine vaccination");
        assert!(!q.synonym_stems.contains(&covidkg_text::stem("vaccine")));
    }

    #[test]
    fn empty_queries() {
        assert!(parse_query("").is_empty());
        assert!(parse_query("the of and").is_empty());
        assert!(parse_query("\"\"").is_empty());
        assert!(!parse_query("\"x\"").is_empty());
    }
}
