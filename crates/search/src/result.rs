//! Result pages (Figs 2 & 4).
//!
//! "Once the aggregation is finished the results are paginated as a list
//! of ten per page displaying brief snippets of the document and access
//! to the full text." Each result carries per-field snippets with
//! highlight spans; the renderer marks matches the way the screenshots
//! show them in red.

use crate::rank::Ranker;
use covidkg_json::Value;
use covidkg_text::{make_snippet, Snippet};

/// A snippet of one field of a matching document.
#[derive(Debug, Clone)]
pub struct FieldSnippet {
    /// Field label ("title", "abstract", "table", …).
    pub field: String,
    /// The excerpt with highlights.
    pub snippet: Snippet,
}

/// One ranked search result.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Document `_id` (access to the full text).
    pub id: String,
    /// Title (highlighted separately in the UI).
    pub title: String,
    /// Ranking score.
    pub score: f64,
    /// Field snippets shown in the brief view, most important first.
    pub snippets: Vec<FieldSnippet>,
    /// Further matching snippets, collapsed by default — the Figs 2/4
    /// interface "allows the user to expand and collapse appropriately".
    pub collapsed: Vec<FieldSnippet>,
}

/// A page of results.
#[derive(Debug, Clone)]
pub struct SearchPage {
    /// The raw query text.
    pub query: String,
    /// 0-based page number.
    pub page: usize,
    /// Results per page (10 in the paper).
    pub page_size: usize,
    /// Total matching documents across all pages.
    pub total: usize,
    /// This page's results.
    pub results: Vec<SearchResult>,
}

impl SearchPage {
    /// Number of pages available.
    pub fn page_count(&self) -> usize {
        self.total.div_ceil(self.page_size.max(1))
    }

    /// Canonical JSON encoding of the page — the body served by the
    /// `covidkg-net` HTTP front-end. Both the in-process API and the wire
    /// serialize through this one function, so a network client receives
    /// byte-identical JSON to `page.to_json().to_json()` computed locally.
    pub fn to_json(&self) -> Value {
        fn snippet_json(fs: &FieldSnippet) -> Value {
            covidkg_json::obj! {
                "field" => fs.field.as_str(),
                "text" => fs.snippet.text.as_str(),
                "highlights" => Value::Array(
                    fs.snippet
                        .highlights
                        .iter()
                        .map(|&(s, e)| Value::Array(vec![Value::from(s), Value::from(e)]))
                        .collect(),
                ),
                "leading_ellipsis" => fs.snippet.leading_ellipsis,
                "trailing_ellipsis" => fs.snippet.trailing_ellipsis,
            }
        }
        covidkg_json::obj! {
            "query" => self.query.as_str(),
            "page" => self.page,
            "page_size" => self.page_size,
            "total" => self.total,
            "page_count" => self.page_count(),
            "results" => Value::Array(
                self.results
                    .iter()
                    .map(|r| covidkg_json::obj! {
                        "id" => r.id.as_str(),
                        "title" => r.title.as_str(),
                        "score" => r.score,
                        "snippets" => Value::Array(
                            r.snippets.iter().map(snippet_json).collect(),
                        ),
                        "collapsed" => Value::Array(
                            r.collapsed.iter().map(snippet_json).collect(),
                        ),
                    })
                    .collect(),
            ),
        }
    }

    /// Render the page as text (the CLI stand-in for the Figs 2/4 UI),
    /// with `[matches]` marked. Collapsed sections show a summary line.
    pub fn render(&self) -> String {
        self.render_inner(false)
    }

    /// Render with every collapsed section expanded.
    pub fn render_expanded(&self) -> String {
        self.render_inner(true)
    }

    fn render_inner(&self, expanded: bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "results for {:?} — page {}/{} ({} matches)",
            self.query,
            self.page + 1,
            self.page_count().max(1),
            self.total
        );
        for (i, r) in self.results.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>2}. {}  (score {:.2}, id {})",
                self.page * self.page_size + i + 1,
                r.title,
                r.score,
                r.id
            );
            for fs in &r.snippets {
                let _ = writeln!(out, "      {}: {}", fs.field, fs.snippet.render_marked());
            }
            if expanded {
                for fs in &r.collapsed {
                    let _ = writeln!(out, "      {}: {}", fs.field, fs.snippet.render_marked());
                }
            } else if !r.collapsed.is_empty() {
                let _ = writeln!(out, "      ▸ {} more matching sections", r.collapsed.len());
            }
        }
        out
    }
}

/// Snippet window width in bytes.
const SNIPPET_WINDOW: usize = 160;

/// Build a [`SearchResult`] from a ranked document, extracting snippets
/// for every field that has query matches.
pub fn build_result(doc: &Value, score: f64, ranker: &Ranker) -> SearchResult {
    let id = doc
        .get("_id")
        .and_then(Value::as_str)
        .unwrap_or("<missing id>")
        .to_string();
    let title = doc
        .get("title")
        .and_then(Value::as_str)
        .unwrap_or("<untitled>")
        .to_string();
    let mut snippets = Vec::new();
    let mut collapsed = Vec::new();
    for (field, label) in [
        ("title", "title"),
        ("abstract", "abstract"),
        ("tables", "table"),
        ("figure_captions", "figure"),
        ("body", "body"),
    ] {
        let Some(value) = doc.path(field) else { continue };
        let mut texts = Vec::new();
        collect_strings(value, &mut texts);
        let mut first_in_field = true;
        for text in texts {
            let spans = ranker.match_spans(text);
            if spans.is_empty() {
                continue;
            }
            let fs = FieldSnippet {
                field: label.to_string(),
                snippet: make_snippet(text, &spans, SNIPPET_WINDOW),
            };
            // One snippet per field keeps the page "brief" like the UI;
            // further matches land in the collapsed section.
            if first_in_field {
                snippets.push(fs);
                first_in_field = false;
            } else {
                collapsed.push(fs);
            }
        }
    }
    SearchResult {
        id,
        title,
        score,
        snippets,
        collapsed,
    }
}

fn collect_strings<'v>(value: &'v Value, out: &mut Vec<&'v str>) {
    match value {
        Value::Str(s) => out.push(s),
        Value::Array(items) => {
            for i in items {
                collect_strings(i, out);
            }
        }
        Value::Object(members) => {
            for (_, v) in members {
                collect_strings(v, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use crate::rank::RankWeights;
    use covidkg_json::{arr, obj};

    fn ranker(q: &str) -> Ranker {
        Ranker::new(parse_query(q), RankWeights::publication_default(), None, 10)
    }

    fn doc() -> Value {
        obj! {
            "_id" => "paper-7",
            "title" => "Mask mandates in schools",
            "abstract" => "We found masks reduce transmission substantially.",
            "body" => arr![ obj!{ "heading" => "Methods", "text" => "No relevant terms here." } ],
        }
    }

    #[test]
    fn result_includes_matching_field_snippets() {
        let r = ranker("masks");
        let result = build_result(&doc(), 5.0, &r);
        assert_eq!(result.id, "paper-7");
        let fields: Vec<&str> = result.snippets.iter().map(|s| s.field.as_str()).collect();
        assert!(fields.contains(&"title"));
        assert!(fields.contains(&"abstract"));
        assert!(!fields.contains(&"body"));
        let title_snip = &result.snippets[0];
        assert!(title_snip.snippet.render_marked().contains("[Mask]"));
    }

    #[test]
    fn page_renders_counts_and_highlights() {
        let r = ranker("masks");
        let page = SearchPage {
            query: "masks".into(),
            page: 0,
            page_size: 10,
            total: 23,
            results: vec![build_result(&doc(), 5.0, &r)],
        };
        assert_eq!(page.page_count(), 3);
        let text = page.render();
        assert!(text.contains("page 1/3"));
        assert!(text.contains("23 matches"));
        assert!(text.contains("[masks]"));
        assert!(text.contains("paper-7"));
    }

    #[test]
    fn extra_matches_collapse_and_expand() {
        let r = ranker("masks");
        let multi = obj! {
            "_id" => "p",
            "title" => "masks",
            "body" => arr![
                obj!{ "heading" => "A", "text" => "masks here" },
                obj!{ "heading" => "B", "text" => "more masks there" },
            ],
        };
        let result = build_result(&multi, 1.0, &r);
        // First body match is brief; the second collapses.
        assert_eq!(
            result.snippets.iter().filter(|s| s.field == "body").count(),
            1
        );
        assert_eq!(result.collapsed.len(), 1);
        let page = SearchPage {
            query: "masks".into(),
            page: 0,
            page_size: 10,
            total: 1,
            results: vec![result],
        };
        let brief = page.render();
        assert!(brief.contains("▸ 1 more matching sections"), "{brief}");
        assert!(!brief.contains("more [masks] there"));
        let full = page.render_expanded();
        assert!(full.contains("more [masks] there"), "{full}");
        assert!(!full.contains("▸"));
    }

    #[test]
    fn missing_fields_degrade_gracefully() {
        let r = ranker("masks");
        let result = build_result(&obj! { "x" => 1 }, 0.0, &r);
        assert_eq!(result.id, "<missing id>");
        assert_eq!(result.title, "<untitled>");
        assert!(result.snippets.is_empty());
    }

    #[test]
    fn page_to_json_is_canonical() {
        let r = ranker("masks");
        let page = SearchPage {
            query: "masks".into(),
            page: 0,
            page_size: 10,
            total: 23,
            results: vec![build_result(&doc(), 5.0, &r)],
        };
        let json = page.to_json();
        assert_eq!(json.path("query").and_then(Value::as_str), Some("masks"));
        assert_eq!(json.path("total").and_then(Value::as_i64), Some(23));
        assert_eq!(json.path("page_count").and_then(Value::as_i64), Some(3));
        let results = json.path("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].path("id").and_then(Value::as_str),
            Some("paper-7")
        );
        let snips = results[0].path("snippets").and_then(Value::as_array).unwrap();
        assert!(!snips.is_empty());
        let hl = snips[0].path("highlights").and_then(Value::as_array).unwrap();
        assert!(!hl.is_empty());
        // Encoding is deterministic: same page, same bytes.
        assert_eq!(json.to_json(), page.to_json().to_json());
    }

    #[test]
    fn empty_page_count() {
        let page = SearchPage {
            query: "q".into(),
            page: 0,
            page_size: 10,
            total: 0,
            results: vec![],
        };
        assert_eq!(page.page_count(), 0);
        assert!(page.render().contains("0 matches"));
    }
}
