//! End-to-end serving tests: concurrent correctness against the direct
//! search path, generation-based cache invalidation under a racing
//! ingest, and the two admission-control failure modes.

use covidkg_core::{CovidKg, CovidKgConfig};
use covidkg_search::SearchMode;
use covidkg_serve::{loadgen, InjectedFaults, LoadGenConfig, ServeConfig, ServeError, Server};
use std::time::{Duration, Instant};

fn build_system() -> CovidKg {
    CovidKg::build(CovidKgConfig {
        corpus_size: 36,
        max_training_rows: 400,
        ..CovidKgConfig::default()
    })
    .unwrap()
}

#[test]
fn concurrent_clients_get_correct_results_and_cache_hits() {
    let server = Server::start(build_system(), ServeConfig::default());
    let report = loadgen::run(
        &server,
        &LoadGenConfig {
            clients: 8,
            queries_per_client: 30,
            verify_every: 4,
            ..LoadGenConfig::default()
        },
    );
    assert_eq!(report.mismatches, 0, "served page disagreed with direct search");
    assert_eq!(report.abandoned, 0);
    assert_eq!(report.deadline_exceeded, 0, "default deadline is generous");
    assert_eq!(report.ok, 8 * 30, "closed loop completes every request");
    assert!(report.verified > 0);
    // 8 clients × 30 draws from a ~36-query pool: repeats are certain,
    // so the cache must have served a large share.
    assert!(
        report.cached > report.ok / 4,
        "expected substantial cache hits, got {}/{}",
        report.cached,
        report.ok
    );
    let stats = server.stats();
    assert_eq!(stats.total_requests(), 8 * 30);
    assert!(stats.requests_all_fields > 0);
    assert!(stats.requests_tables > 0);
    assert!(stats.requests_scoped > 0);
    assert!(stats.p50.is_some() && stats.p99.is_some());
    assert!(stats.p50 <= stats.p99);
}

#[test]
fn full_queue_rejects_immediately_with_overloaded() {
    // No workers: enqueued jobs are never drained, so the bounded queue
    // fills deterministically.
    let server = Server::start(
        build_system(),
        ServeConfig {
            workers: 0,
            queue_capacity: 2,
            ..ServeConfig::default()
        },
    );
    let deadline = Duration::from_millis(50);
    // Distinct queries so the (empty) cache is bypassed.
    let q1 = SearchMode::AllFields("vaccine".into());
    let q2 = SearchMode::AllFields("masks".into());
    let q3 = SearchMode::AllFields("ventilator".into());
    // First two occupy the queue (and time out waiting for a worker).
    assert!(matches!(
        server.search_with_deadline(&q1, 0, deadline),
        Err(ServeError::DeadlineExceeded)
    ));
    assert!(matches!(
        server.search_with_deadline(&q2, 0, deadline),
        Err(ServeError::DeadlineExceeded)
    ));
    // Queue is now full: the third request must be rejected without
    // blocking — admission control, not queueing.
    let start = Instant::now();
    assert!(matches!(
        server.search_with_deadline(&q3, 0, deadline),
        Err(ServeError::Overloaded)
    ));
    assert!(
        start.elapsed() < deadline,
        "overload rejection must not wait out the deadline"
    );
    let stats = server.stats();
    assert_eq!(stats.overloaded, 1);
    assert_eq!(stats.deadline_exceeded, 2);
    assert_eq!(stats.max_queue_depth, 2);
}

#[test]
fn deadline_expiry_is_reported_not_hung() {
    let server = Server::start(
        build_system(),
        ServeConfig {
            workers: 0, // nothing will ever answer
            queue_capacity: 8,
            ..ServeConfig::default()
        },
    );
    let start = Instant::now();
    let out = server.search_with_deadline(
        &SearchMode::AllFields("vaccine".into()),
        0,
        Duration::from_millis(30),
    );
    assert!(matches!(out, Err(ServeError::DeadlineExceeded)));
    let waited = start.elapsed();
    assert!(waited >= Duration::from_millis(30));
    assert!(waited < Duration::from_secs(5), "must not hang");
    assert_eq!(server.stats().deadline_exceeded, 1);
}

#[test]
fn shutdown_closes_the_front_door() {
    let server = Server::start(build_system(), ServeConfig::default());
    let mode = SearchMode::AllFields("vaccine".into());
    assert!(server.search(&mode, 0).is_ok());
    server.shutdown();
    // Cache may still answer identical queries; a fresh query must see
    // Closed instead of hanging.
    let out = server.search(&SearchMode::AllFields("quarantine periods".into()), 0);
    assert!(matches!(out, Err(ServeError::Closed)));
}

/// The headline invariant: readers racing an ingest never observe a
/// stale cache hit. Every response is tagged with the generation it was
/// computed at; a response claiming the post-ingest generation must show
/// post-ingest totals. Pre-ingest-tagged responses may observe some of
/// the new documents early (the store/classify phase runs under a shared
/// lock so reads keep flowing), but only monotonically — totals between
/// the pre- and post-ingest counts, never garbage. A cache serving a
/// stale page would violate the first clause (current generation tag,
/// old totals).
#[test]
fn readers_racing_ingest_never_see_stale_results() {
    let queries = ["vaccine", "masks", "symptom", "treatment"];
    let server = Server::start(build_system(), ServeConfig::default());
    let gen_before = server.generation();

    let pre_totals: Vec<usize> = queries
        .iter()
        .map(|q| server.search_direct(&SearchMode::AllFields((*q).into()), 0).total)
        .collect();

    // Fresh ids beyond the build's 0..36 range.
    let new_pubs: Vec<_> = covidkg_corpus::CorpusGenerator::with_size(48, 42)
        .generate()
        .into_iter()
        .skip(36)
        .collect();

    let observations: Vec<(usize, u64, usize)> = std::thread::scope(|scope| {
        let server = &server;
        let readers: Vec<_> = (0..6)
            .map(|reader| {
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    for i in 0..120 {
                        let qi = (i + reader) % queries.len();
                        let mode = SearchMode::AllFields(queries[qi].into());
                        let resp = server.search(&mode, 0).expect("serving must not fail");
                        seen.push((qi, resp.generation, resp.page.total));
                    }
                    seen
                })
            })
            .collect();
        let writer = scope.spawn(move || {
            // Let readers warm the cache first so stale entries exist.
            std::thread::sleep(Duration::from_millis(5));
            server.ingest(&new_pubs).unwrap();
        });
        writer.join().unwrap();
        readers
            .into_iter()
            .flat_map(|r| r.join().unwrap())
            .collect()
    });

    let gen_after = server.generation();
    assert_eq!(gen_after, gen_before + 1, "one ingest bumps one generation");
    let post_totals: Vec<usize> = queries
        .iter()
        .map(|q| server.search_direct(&SearchMode::AllFields((*q).into()), 0).total)
        .collect();
    // The 12 new publications must be searchable: corpus topics repeat
    // round-robin, so the query set gains matches overall.
    assert!(
        post_totals.iter().sum::<usize>() > pre_totals.iter().sum::<usize>(),
        "ingest must add matches: {pre_totals:?} -> {post_totals:?}"
    );

    for (qi, generation, total) in observations {
        if generation == gen_before {
            assert!(
                total >= pre_totals[qi] && total <= post_totals[qi],
                "pre-ingest response for {:?} outside the monotonic \
                 [{}, {}] envelope: {total}",
                queries[qi],
                pre_totals[qi],
                post_totals[qi]
            );
        } else {
            assert_eq!(generation, gen_after);
            assert_eq!(
                total, post_totals[qi],
                "post-ingest-tagged response for {:?} served stale data",
                queries[qi]
            );
        }
    }

    // And the cache still works at the new generation.
    let mode = SearchMode::AllFields("vaccine".into());
    let _ = server.search(&mode, 0).unwrap();
    let again = server.search(&mode, 0).unwrap();
    assert!(again.cached, "post-ingest pages are cacheable again");
    assert_eq!(again.generation, gen_after);
}

/// Shard-level write locking (ISSUE 5 satellite): the expensive phases
/// of an ingest — document storage, table classification, persistence —
/// run under a *shared* lock, so uncached reads (which need the system
/// read lock in a worker) complete while the ingest is still in flight.
/// Under the old stop-the-world scheme every uncached read issued after
/// the ingest began would block until it finished, so zero reads could
/// land strictly inside the window.
#[test]
fn uncached_reads_complete_strictly_inside_the_ingest_window() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    let server = Server::start(build_system(), ServeConfig::default());
    let gen_before = server.generation();
    // A large batch so the prepare phase (store + classify) takes long
    // enough for reads to land inside it.
    let new_pubs: Vec<_> = covidkg_corpus::CorpusGenerator::with_size(120, 11)
        .generate()
        .into_iter()
        .skip(36)
        .collect();

    let window = Mutex::new(None::<(Instant, Instant)>);
    let done = AtomicBool::new(false);

    let reads = std::thread::scope(|scope| {
        let server = &server;
        let window = &window;
        let done = &done;
        let readers: Vec<_> = (0..4)
            .map(|reader| {
                scope.spawn(move || {
                    let mut reads = Vec::new();
                    let mut i = 0usize;
                    while !done.load(Ordering::Acquire) {
                        // Unique query per read: a guaranteed cache miss,
                        // so completing one requires the system read lock.
                        let q = format!("vaccine r{reader}q{i}");
                        let started = Instant::now();
                        let resp = server
                            .search(&SearchMode::AllFields(q), 0)
                            .expect("no read may be lost during ingest");
                        reads.push((started, Instant::now(), resp.generation));
                        i += 1;
                    }
                    reads
                })
            })
            .collect();
        let writer = scope.spawn(move || {
            // Let the readers get going first.
            std::thread::sleep(Duration::from_millis(10));
            let started = Instant::now();
            server.ingest(&new_pubs).unwrap();
            *window.lock().unwrap() = Some((started, Instant::now()));
            done.store(true, Ordering::Release);
        });
        writer.join().unwrap();
        readers
            .into_iter()
            .flat_map(|r| r.join().unwrap())
            .collect::<Vec<_>>()
    });

    let (ingest_start, ingest_end) = window.lock().unwrap().unwrap();
    let inside = reads
        .iter()
        .filter(|(started, finished, _)| *started > ingest_start && *finished < ingest_end)
        .count();
    assert!(
        inside >= 1,
        "no read completed inside the {}ms ingest window ({} reads total)",
        ingest_end.duration_since(ingest_start).as_millis(),
        reads.len()
    );
    // No torn generation: every response is tagged either pre- or
    // post-ingest, never anything else.
    let gen_after = server.generation();
    assert_eq!(gen_after, gen_before + 1);
    for (_, _, g) in &reads {
        assert!(
            *g == gen_before || *g == gen_after,
            "response tagged impossible generation {g}"
        );
    }
    server.shutdown();
}

/// A panicking query must cost exactly one request: the worker pool
/// survives, no lock is left poisoned, and every subsequent request is
/// answered normally.
#[test]
fn panicking_query_neither_kills_pool_nor_poisons_requests() {
    let server = Server::start(
        build_system(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    // Every search job panics while this schedule is installed.
    server.set_injected_faults(Some(InjectedFaults {
        panic_every: 1,
        ..InjectedFaults::default()
    }));
    let out = server.search(&SearchMode::AllFields("vaccine".into()), 0);
    // Nothing cached yet, so the degraded answer is the typed error —
    // crucially a *reply*, not a hang or a worker death.
    assert!(matches!(out, Err(ServeError::Degraded)), "{out:?}");
    server.set_injected_faults(None);

    // The pool is intact and later requests (including the one that just
    // panicked) succeed; stats and shutdown don't hit poisoned locks.
    for q in ["vaccine", "masks", "treatment", "symptom"] {
        let resp = server.search(&SearchMode::AllFields(q.into()), 0).unwrap();
        assert!(!resp.stale);
    }
    let stats = server.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.worker_respawns, 0, "caught panic keeps the worker");
    assert_eq!(server.worker_count(), 2);
    server.shutdown();
}

/// A panic that escapes the per-job catch kills the worker thread; the
/// sentinel must respawn a replacement so the pool never shrinks.
#[test]
fn crashed_workers_are_respawned() {
    let server = Server::start(
        build_system(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    server.inject_worker_panic().unwrap();
    server.inject_worker_panic().unwrap();
    // Respawn happens during the dying thread's unwind; give it a beat.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().worker_respawns < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = server.stats();
    assert_eq!(stats.worker_respawns, 2, "both crashed workers replaced");
    assert_eq!(stats.worker_panics, 2);
    // The replacement workers serve real traffic.
    let resp = server.search(&SearchMode::AllFields("vaccine".into()), 0).unwrap();
    assert!(!resp.page.query.is_empty() || resp.page.total == 0);
    assert_eq!(server.worker_count(), 2);
    server.shutdown();
}

/// Repeated failures trip the engine breaker; while it is open the
/// server answers from the stale cache (marked stale) instead of
/// queueing doomed work, and it closes again after the cooldown.
#[test]
fn open_breaker_serves_stale_pages_then_recovers() {
    let server = Server::start(
        build_system(),
        ServeConfig {
            workers: 2,
            // With a 5s window, one warm success and a 0.6 rate floor at
            // two samples, the second failure (rate 2/3) opens the
            // breaker exactly once.
            breaker_window: Duration::from_secs(5),
            breaker_error_rate: 0.6,
            breaker_min_samples: 2,
            breaker_cooldown: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    );
    let mode = SearchMode::AllFields("vaccine".into());
    // Warm the cache at the current generation…
    let warm = server.search(&mode, 0).unwrap();
    assert!(!warm.stale);
    let gen_before = server.generation();
    // …then advance the generation so the entry is stale-but-resident.
    let new_pubs: Vec<_> = covidkg_corpus::CorpusGenerator::with_size(40, 7)
        .generate()
        .into_iter()
        .skip(36)
        .collect();
    server.ingest(&new_pubs).unwrap();

    server.set_injected_faults(Some(InjectedFaults {
        panic_every: 1,
        ..InjectedFaults::default()
    }));
    // Two failures: each panicking request is still answered — with the
    // stale pre-ingest page — and the second trips the breaker.
    for _ in 0..2 {
        let resp = server.search(&mode, 0).unwrap();
        assert!(resp.stale, "degraded fallback serves the stale page");
        assert_eq!(resp.generation, gen_before);
    }
    // Breaker now open: requests short-circuit (no queue, no worker) but
    // still get the stale page.
    let resp = server.search(&mode, 0).unwrap();
    assert!(resp.stale);
    let stats = server.stats();
    assert_eq!(stats.breaker_opens, 1);
    assert!(stats.stale_served >= 3, "{stats:?}");
    assert!(stats.degraded >= 3, "{stats:?}");

    // Heal the backend, wait out the cooldown: the half-open probe runs
    // a real search and fully closes the breaker.
    server.set_injected_faults(None);
    std::thread::sleep(Duration::from_millis(150));
    let healed = server.search(&mode, 0).unwrap();
    assert!(!healed.stale, "half-open probe serves fresh data");
    assert_eq!(healed.generation, server.generation());
    let after = server.search(&mode, 0).unwrap();
    assert!(after.cached && !after.stale, "breaker closed, cache refilled");
    server.shutdown();
}
