//! Serving metrics: per-engine request counters, cache hit/miss,
//! admission-control outcomes, queue depth and a latency histogram with
//! percentile snapshots.
//!
//! Counters are lock-free atomics so the request hot path never blocks
//! on the metrics layer; only the histogram takes a (short) mutex, and
//! only after a request already completed.

use crate::cache::CacheStats;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Which engine a request targeted: the three §2.1 search engines, the
/// §4 knowledge-graph query engine (the third wire traffic class), and
/// the trust/bias interrogation engine (the fourth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// §2.1.2 all-fields engine.
    AllFields,
    /// §2.1.3 tables engine.
    Tables,
    /// §2.1.1 scoped title/abstract/caption engine.
    Scoped,
    /// §4 knowledge-graph traversal / meta-profile engine.
    Kg,
    /// Trust scoring / bias interrogation engine.
    Trust,
}

impl EngineKind {
    pub(crate) fn index(self) -> usize {
        match self {
            EngineKind::AllFields => 0,
            EngineKind::Tables => 1,
            EngineKind::Scoped => 2,
            EngineKind::Kg => 3,
            EngineKind::Trust => 4,
        }
    }

    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::AllFields => "all-fields",
            EngineKind::Tables => "tables",
            EngineKind::Scoped => "scoped",
            EngineKind::Kg => "kg",
            EngineKind::Trust => "trust",
        }
    }
}

/// Log-scaled latency histogram: buckets grow by 25% from 1 µs, so the
/// whole 1 µs – 30 s range fits in ~80 buckets with bounded relative
/// error on reported percentiles.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: Vec<AtomicU64>,
    bounds_ns: Vec<u64>,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        let mut bounds_ns = Vec::new();
        let mut b = 1_000f64; // 1 µs
        while b < 30e9 {
            bounds_ns.push(b as u64);
            b *= 1.25;
        }
        bounds_ns.push(u64::MAX);
        LatencyHistogram {
            counts: (0..bounds_ns.len()).map(|_| AtomicU64::new(0)).collect(),
            bounds_ns,
        }
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        let idx = self.bounds_ns.partition_point(|&b| b < ns);
        self.counts[idx.min(self.counts.len() - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0.0..=1.0`) via linear interpolation inside the
    /// bucket where the cumulative count crosses, or `None` when empty.
    ///
    /// Reporting the bucket's *upper bound* overestimates by up to a full
    /// bucket width (25%); assuming observations spread uniformly across
    /// the crossed bucket halves the worst case and is exact when they do.
    /// The overflow bucket has no finite upper bound, so a quantile
    /// landing there reports the last finite bound (its lower edge).
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let in_bucket = c.load(Ordering::Relaxed);
            if seen + in_bucket >= target {
                let lower = if i == 0 { 0 } else { self.bounds_ns[i - 1] };
                let upper = self.bounds_ns[i];
                if upper == u64::MAX {
                    return Some(Duration::from_nanos(lower));
                }
                // target > seen and in_bucket >= target - seen >= 1 here.
                let frac = (target - seen) as f64 / in_bucket as f64;
                let ns = lower as f64 + frac * (upper - lower) as f64;
                return Some(Duration::from_nanos(ns as u64));
            }
            seen += in_bucket;
        }
        // Unreachable when total > 0, but stay finite regardless.
        Some(Duration::from_nanos(self.bounds_ns[self.bounds_ns.len() - 2]))
    }
}

/// Which dense serving mode a request targeted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenseKind {
    /// Pure ANN-neighbor retrieval.
    Semantic,
    /// Reciprocal-rank fusion of ANN + lexical candidates.
    Hybrid,
}

impl DenseKind {
    pub(crate) fn index(self) -> usize {
        match self {
            DenseKind::Semantic => 0,
            DenseKind::Hybrid => 1,
        }
    }

    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            DenseKind::Semantic => "semantic",
            DenseKind::Hybrid => "hybrid",
        }
    }
}

/// Live metric registry owned by the server.
#[derive(Debug, Default)]
pub struct Metrics {
    engine_requests: [AtomicU64; 5],
    dense_requests: [AtomicU64; 2],
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    completed: AtomicU64,
    worker_panics: AtomicU64,
    worker_respawns: AtomicU64,
    degraded: AtomicU64,
    stale_served: AtomicU64,
    breaker_opens: AtomicU64,
    kg_traversal_hops: AtomicU64,
    kg_nodes_visited: AtomicU64,
    queue_depth: AtomicUsize,
    max_queue_depth: AtomicUsize,
    /// Hot-path latencies go to a lock-free histogram; the mutex only
    /// guards nothing today but reserves room for reset-on-snapshot.
    latency: LatencyHistogram,
    _reset: Mutex<()>,
}

impl Metrics {
    pub(crate) fn record_request(&self, engine: EngineKind) {
        self.engine_requests[engine.index()].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_dense_request(&self, kind: DenseKind) {
        self.dense_requests[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_overloaded(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    pub(crate) fn record_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_stale_served(&self) {
        self.stale_served.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_breaker_open(&self) {
        self.breaker_opens.fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulate one KG traversal's work counters (`covidkg_kg_*`).
    pub(crate) fn record_kg_traversal(&self, hops: u64, visited: u64) {
        self.kg_traversal_hops.fetch_add(hops, Ordering::Relaxed);
        self.kg_nodes_visited.fetch_add(visited, Ordering::Relaxed);
    }

    /// Pre-admission increment: called *before* the `try_send` so a
    /// worker's matching [`Metrics::dequeued`] can never drive the gauge
    /// negative. The max watermark is recorded separately, only once the
    /// job was actually admitted.
    pub(crate) fn enqueued(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_admitted_depth(&self) {
        let depth = self.queue_depth.load(Ordering::Relaxed);
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    pub(crate) fn dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time snapshot for reporting.
    pub fn snapshot(&self) -> ServeStats {
        ServeStats {
            requests_all_fields: self.engine_requests[0].load(Ordering::Relaxed),
            requests_tables: self.engine_requests[1].load(Ordering::Relaxed),
            requests_scoped: self.engine_requests[2].load(Ordering::Relaxed),
            requests_kg: self.engine_requests[3].load(Ordering::Relaxed),
            requests_trust: self.engine_requests[4].load(Ordering::Relaxed),
            requests_semantic: self.dense_requests[0].load(Ordering::Relaxed),
            requests_hybrid: self.dense_requests[1].load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            stale_served: self.stale_served.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            kg_traversal_hops: self.kg_traversal_hops.load(Ordering::Relaxed),
            kg_nodes_visited: self.kg_nodes_visited.load(Ordering::Relaxed),
            io_retries: 0,
            cache: CacheStats::default(),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            p50: self.latency.quantile(0.50),
            p95: self.latency.quantile(0.95),
            p99: self.latency.quantile(0.99),
        }
    }
}

/// Point-in-time serving statistics (the `ServeStats` of the design
/// note): request mix, cache effectiveness, backpressure outcomes and
/// the latency tail.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Requests routed to the all-fields engine.
    pub requests_all_fields: u64,
    /// Requests routed to the tables engine.
    pub requests_tables: u64,
    /// Requests routed to the scoped engine.
    pub requests_scoped: u64,
    /// Requests routed to the KG query / profile engine.
    pub requests_kg: u64,
    /// Requests routed to the trust / bias interrogation engine.
    pub requests_trust: u64,
    /// Requests routed to the semantic (pure-ANN) mode.
    pub requests_semantic: u64,
    /// Requests routed to the hybrid lexical+dense mode.
    pub requests_hybrid: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Requests that had to run a search.
    pub cache_misses: u64,
    /// Requests rejected because the queue was full.
    pub overloaded: u64,
    /// Requests that missed their deadline.
    pub deadline_exceeded: u64,
    /// Requests that completed a search.
    pub completed: u64,
    /// Worker panics caught or suffered while running jobs.
    pub worker_panics: u64,
    /// Workers respawned after dying to a panic.
    pub worker_respawns: u64,
    /// Requests answered degraded (stale page or typed `Degraded` error)
    /// because the target engine's circuit breaker was open or its
    /// worker crashed mid-request.
    pub degraded: u64,
    /// Degraded requests that could be answered with a stale cached page.
    pub stale_served: u64,
    /// Times an engine circuit breaker tripped open.
    pub breaker_opens: u64,
    /// Frontier expansions performed by served KG traversals.
    pub kg_traversal_hops: u64,
    /// Nodes visited by served KG traversals.
    pub kg_nodes_visited: u64,
    /// Transient store-level I/O retries absorbed by ingest (0 unless
    /// a fault plan is attached to the backing collection).
    pub io_retries: u64,
    /// Result-cache occupancy and eviction counters.
    pub cache: CacheStats,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Highest queue depth observed.
    pub max_queue_depth: usize,
    /// Median end-to-end latency of completed searches.
    pub p50: Option<Duration>,
    /// 95th-percentile latency.
    pub p95: Option<Duration>,
    /// 99th-percentile latency.
    pub p99: Option<Duration>,
}

impl ServeStats {
    /// Total requests across all engines and dense modes.
    pub fn total_requests(&self) -> u64 {
        self.requests_all_fields
            + self.requests_tables
            + self.requests_scoped
            + self.requests_kg
            + self.requests_trust
            + self.requests_semantic
            + self.requests_hybrid
    }

    /// Cache hit rate over answered lookups (0 when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        fn dur(d: Option<Duration>) -> String {
            match d {
                None => "-".into(),
                Some(d) if d.as_secs_f64() >= 1.0 => format!("{:.2} s", d.as_secs_f64()),
                Some(d) if d.as_micros() >= 1000 => format!("{:.2} ms", d.as_secs_f64() * 1e3),
                Some(d) => format!("{} µs", d.as_micros()),
            }
        }
        let mut out = String::new();
        out.push_str("serving stats\n");
        out.push_str(&format!(
            "  requests     {} (all-fields {}, tables {}, scoped {}, kg {}, trust {}, semantic {}, hybrid {})\n",
            self.total_requests(),
            self.requests_all_fields,
            self.requests_tables,
            self.requests_scoped,
            self.requests_kg,
            self.requests_trust,
            self.requests_semantic,
            self.requests_hybrid,
        ));
        out.push_str(&format!(
            "  cache        {} hits / {} misses ({:.1}% hit rate)\n",
            self.cache_hits,
            self.cache_misses,
            self.hit_rate() * 100.0,
        ));
        out.push_str(&format!(
            "  admission    {} overloaded, {} deadline-exceeded\n",
            self.overloaded, self.deadline_exceeded,
        ));
        out.push_str(&format!(
            "  queue        depth {} now, {} peak\n",
            self.queue_depth, self.max_queue_depth,
        ));
        out.push_str(&format!(
            "  latency      p50 {}  p95 {}  p99 {}  ({} completed)\n",
            dur(self.p50),
            dur(self.p95),
            dur(self.p99),
            self.completed,
        ));
        out.push_str(&format!(
            "  survival     {} panics, {} respawns, {} breaker-opens, {} degraded ({} stale-served), {} io-retries\n",
            self.worker_panics,
            self.worker_respawns,
            self.breaker_opens,
            self.degraded,
            self.stale_served,
            self.io_retries,
        ));
        out.push_str(&format!(
            "  cache bound  {} resident ({} B), evicted {} lru / {} ttl / {} bytes\n",
            self.cache.resident,
            self.cache.resident_bytes,
            self.cache.evicted_lru,
            self.cache.evicted_ttl,
            self.cache.evicted_bytes,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_known_distribution() {
        let h = LatencyHistogram::default();
        // 100 observations: 1..=100 ms.
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Buckets grow by 25% and interpolation assumes a uniform spread
        // inside the crossed bucket, so each reported quantile lands
        // within half a bucket width (12.5%) of the exact value.
        for (got, exact_ms) in [(p50, 50u64), (p95, 95), (p99, 99)] {
            let exact = Duration::from_millis(exact_ms).as_nanos() as f64;
            let rel = (got.as_nanos() as f64 - exact).abs() / exact;
            assert!(rel <= 0.125, "rel err {rel:.4} for exact {exact_ms} ms ({got:?})");
        }
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn interpolated_quantiles_track_exact_sample_quantiles() {
        // Mixed-scale distribution: a fast mode, a slow mode, and a tail.
        let mut samples_us: Vec<u64> = Vec::new();
        samples_us.extend((1..=200u64).map(|i| 40 + i)); // 41..=240 µs
        samples_us.extend((1..=60u64).map(|i| 2_000 + 45 * i)); // 2.045..=4.7 ms
        samples_us.extend([30_000, 55_000, 90_000, 250_000]); // tail
        let h = LatencyHistogram::default();
        for &us in &samples_us {
            h.record(Duration::from_micros(us));
        }
        samples_us.sort_unstable();
        let n = samples_us.len();
        for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99] {
            // Exact quantile by the same nearest-rank convention the
            // histogram uses: the ceil(q·n)-th smallest sample.
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = Duration::from_micros(samples_us[rank - 1]).as_nanos() as f64;
            let got = h.quantile(q).unwrap().as_nanos() as f64;
            let rel = (got - exact).abs() / exact;
            assert!(
                rel <= 0.125,
                "q={q}: histogram {got} vs exact {exact} (rel err {rel:.4})"
            );
        }
    }

    #[test]
    fn histogram_is_empty_safe_and_monotone_in_q() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), None);
        h.record(Duration::from_micros(10));
        h.record(Duration::from_millis(10));
        assert!(h.quantile(0.0).unwrap() <= h.quantile(1.0).unwrap());
    }

    #[test]
    fn snapshot_reflects_recorded_events() {
        let m = Metrics::default();
        m.record_request(EngineKind::AllFields);
        m.record_request(EngineKind::AllFields);
        m.record_request(EngineKind::Tables);
        m.record_dense_request(DenseKind::Semantic);
        m.record_dense_request(DenseKind::Hybrid);
        m.record_dense_request(DenseKind::Hybrid);
        m.record_hit();
        m.record_miss();
        m.record_overloaded();
        m.record_deadline_exceeded();
        m.enqueued();
        m.record_admitted_depth();
        m.enqueued();
        m.record_admitted_depth();
        m.dequeued();
        m.record_completed(Duration::from_millis(3));
        m.record_request(EngineKind::Kg);
        m.record_request(EngineKind::Trust);
        m.record_kg_traversal(12, 5);
        m.record_kg_traversal(3, 2);
        let s = m.snapshot();
        assert_eq!(s.requests_all_fields, 2);
        assert_eq!(s.requests_tables, 1);
        assert_eq!(s.requests_scoped, 0);
        assert_eq!(s.requests_kg, 1);
        assert_eq!(s.requests_trust, 1);
        assert_eq!(s.requests_semantic, 1);
        assert_eq!(s.requests_hybrid, 2);
        assert_eq!(s.total_requests(), 8);
        assert_eq!(s.kg_traversal_hops, 15);
        assert_eq!(s.kg_nodes_visited, 7);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(s.overloaded, 1);
        assert_eq!(s.deadline_exceeded, 1);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.max_queue_depth, 2);
        assert_eq!(s.completed, 1);
        assert!(s.p50.is_some());
        assert!(s.render().contains("hit rate"));
    }
}
