//! Sharded LRU cache for served results with generation-based
//! invalidation, TTL expiry and a total-bytes budget.
//!
//! Keys are the canonical `(engine, normalized query, page)` strings from
//! [`covidkg_search::cache_key`] for search traffic and the `kgq|`/`kgp|`/
//! `kgn|` keys for the KG traffic class; values are [`CachedValue`]s —
//! whole [`SearchPage`]s or pre-serialized KG response bodies — tagged
//! with the data generation that produced them. A lookup only hits when
//! the entry's generation equals the caller's *current* generation, so a
//! page cached before an ingest can never be served after it *as fresh*.
//! Generation-stale entries stay resident (they are the preferred
//! eviction victims) because degraded mode can still serve them, marked
//! stale, when the backend is unhealthy.
//!
//! Bounding is three-fold: entry count (LRU eviction), entry age (TTL
//! expiry, lazily on lookup and eagerly when choosing eviction victims)
//! and resident bytes (approximate page footprint; oldest entries go
//! first when the budget is exceeded). Every eviction increments a typed
//! counter surfaced through [`CacheStats`].
//!
//! Sharding (key-hash → shard, each with its own mutex) keeps concurrent
//! clients from serializing on one lock; shard mutexes recover from
//! poisoning (a panicking worker must not wedge the cache), and per-shard
//! LRU order is tracked with a monotone use-counter.
//!
//! For degraded mode, [`QueryCache::get_stale`] returns a page *ignoring*
//! generation and TTL — the server marks such responses stale rather than
//! failing outright when its backend is unhealthy.

use covidkg_search::SearchPage;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What the cache holds: a structured search page (the search traffic
/// classes) or a pre-serialized JSON body (the KG traffic class, whose
/// wire form is the canonical one).
#[derive(Debug, Clone)]
pub enum CachedValue {
    /// A whole search-result page.
    Page(SearchPage),
    /// A pre-serialized response body.
    Body(String),
}

impl CachedValue {
    /// The page, when this is search traffic.
    pub fn into_page(self) -> Option<SearchPage> {
        match self {
            CachedValue::Page(p) => Some(p),
            CachedValue::Body(_) => None,
        }
    }

    /// The serialized body, when this is KG traffic.
    pub fn into_body(self) -> Option<String> {
        match self {
            CachedValue::Body(b) => Some(b),
            CachedValue::Page(_) => None,
        }
    }

    fn approx_bytes(&self) -> usize {
        match self {
            CachedValue::Page(p) => approx_page_bytes(p),
            CachedValue::Body(b) => 64 + b.len(),
        }
    }
}

impl From<SearchPage> for CachedValue {
    fn from(p: SearchPage) -> CachedValue {
        CachedValue::Page(p)
    }
}

impl From<String> for CachedValue {
    fn from(b: String) -> CachedValue {
        CachedValue::Body(b)
    }
}

#[derive(Debug)]
struct Entry {
    value: CachedValue,
    generation: u64,
    last_used: u64,
    inserted: Instant,
    bytes: usize,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<String, Entry>,
    tick: u64,
    bytes: usize,
}

/// Poison-recovering shard lock: a panic elsewhere (e.g. a worker dying
/// mid-request) must not poison the cache for every later request.
fn lock(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    shard.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Approximate resident footprint of a cached page, in bytes.
fn approx_page_bytes(page: &SearchPage) -> usize {
    let mut bytes = 128 + page.query.len();
    for r in &page.results {
        bytes += 96 + r.id.len() + r.title.len();
        for s in &r.snippets {
            bytes += 48 + s.field.len() + s.snippet.text.len() + 16 * s.snippet.highlights.len();
        }
    }
    bytes
}

/// Typed eviction / occupancy counters for the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident (any generation).
    pub resident: usize,
    /// Approximate bytes currently resident.
    pub resident_bytes: usize,
    /// Evictions forced by the entry-count (LRU) bound.
    pub evicted_lru: u64,
    /// Evictions of entries that outlived the TTL.
    pub evicted_ttl: u64,
    /// Evictions forced by the total-bytes budget.
    pub evicted_bytes: u64,
}

/// Sharded, generation-aware LRU cache with TTL and byte bounds.
#[derive(Debug)]
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    per_shard_bytes: Option<usize>,
    ttl: Option<Duration>,
    evicted_lru: AtomicU64,
    evicted_ttl: AtomicU64,
    evicted_bytes: AtomicU64,
}

impl QueryCache {
    /// Cache holding at most `capacity` pages across `shards` shards
    /// (both floored at 1; per-shard capacity is the ceiling division so
    /// total capacity is at least `capacity`), with no TTL or byte bound.
    pub fn new(capacity: usize, shards: usize) -> QueryCache {
        QueryCache::with_limits(capacity, shards, None, None)
    }

    /// [`QueryCache::new`] plus an optional TTL (entries older than this
    /// never hit and are evicted first) and an optional total-bytes
    /// budget (approximate; split evenly across shards).
    pub fn with_limits(
        capacity: usize,
        shards: usize,
        ttl: Option<Duration>,
        max_bytes: Option<usize>,
    ) -> QueryCache {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        QueryCache {
            per_shard_capacity: capacity.div_ceil(shards),
            per_shard_bytes: max_bytes.map(|b| b.div_ceil(shards).max(1)),
            ttl,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            evicted_lru: AtomicU64::new(0),
            evicted_ttl: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn expired(&self, entry: &Entry) -> bool {
        self.ttl.is_some_and(|ttl| entry.inserted.elapsed() > ttl)
    }

    fn remove_entry(shard: &mut Shard, key: &str) -> Option<Entry> {
        let entry = shard.map.remove(key)?;
        shard.bytes = shard.bytes.saturating_sub(entry.bytes);
        Some(entry)
    }

    /// The value cached under `key` at exactly `current_generation`, or
    /// `None`. TTL expiry removes the entry; a generation mismatch
    /// merely misses — the stale value stays resident (preferred eviction
    /// victim) so degraded mode can still serve it via
    /// [`QueryCache::get_stale`].
    pub fn get(&self, key: &str, current_generation: u64) -> Option<CachedValue> {
        let mut shard = lock(self.shard(key));
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some(entry) if entry.generation == current_generation => {
                if self.expired(entry) {
                    Self::remove_entry(&mut shard, key);
                    self.evicted_ttl.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                entry.last_used = tick;
                Some(entry.value.clone())
            }
            Some(_) | None => None,
        }
    }

    /// Degraded-mode lookup: the value cached under `key` at *any*
    /// generation, ignoring TTL, with the generation it was computed at.
    /// The entry is left resident — when the backend recovers, a fresh
    /// value will overwrite it.
    pub fn get_stale(&self, key: &str) -> Option<(CachedValue, u64)> {
        let shard = lock(self.shard(key));
        shard
            .map
            .get(key)
            .map(|entry| (entry.value.clone(), entry.generation))
    }

    /// Evict one victim from `shard`: expired entries first, then
    /// generation-stale ones, then the least recently used. `reason`
    /// counts the eviction when the victim was still live.
    fn evict_one(&self, shard: &mut Shard, generation: u64, reason: &AtomicU64) -> bool {
        let victim = shard
            .map
            .iter()
            .min_by_key(|(_, e)| (!self.expired(e), e.generation == generation, e.last_used))
            .map(|(k, _)| k.clone());
        let Some(victim) = victim else {
            return false;
        };
        let expired = shard.map.get(&victim).is_some_and(|e| self.expired(e));
        Self::remove_entry(shard, &victim);
        if expired {
            self.evicted_ttl.fetch_add(1, Ordering::Relaxed);
        } else {
            reason.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Cache `value` under `key` as of `generation`, evicting (stale →
    /// expired → LRU) until both the entry-count and byte bounds hold.
    pub fn insert(&self, key: String, generation: u64, value: impl Into<CachedValue>) {
        let value = value.into();
        let bytes = value.approx_bytes();
        let mut shard = lock(self.shard(&key));
        shard.tick += 1;
        let tick = shard.tick;
        Self::remove_entry(&mut shard, &key);
        while shard.map.len() >= self.per_shard_capacity {
            if !self.evict_one(&mut shard, generation, &self.evicted_lru) {
                break;
            }
        }
        if let Some(budget) = self.per_shard_bytes {
            while shard.bytes + bytes > budget && !shard.map.is_empty() {
                if !self.evict_one(&mut shard, generation, &self.evicted_bytes) {
                    break;
                }
            }
        }
        shard.bytes += bytes;
        shard.map.insert(
            key,
            Entry {
                value,
                generation,
                last_used: tick,
                inserted: Instant::now(),
                bytes,
            },
        );
    }

    /// Entries currently resident (any generation).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).map.len()).sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes across all shards.
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| lock(s).bytes).sum()
    }

    /// Point-in-time occupancy and eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            resident: self.len(),
            resident_bytes: self.resident_bytes(),
            evicted_lru: self.evicted_lru.load(Ordering::Relaxed),
            evicted_ttl: self.evicted_ttl.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn got(c: &QueryCache, key: &str, generation: u64) -> Option<SearchPage> {
        c.get(key, generation).and_then(CachedValue::into_page)
    }

    fn page(query: &str, total: usize) -> SearchPage {
        SearchPage {
            query: query.to_string(),
            page: 0,
            page_size: 10,
            total,
            results: Vec::new(),
        }
    }

    #[test]
    fn hit_requires_matching_generation() {
        let c = QueryCache::new(8, 2);
        c.insert("k".into(), 1, page("q", 3));
        assert_eq!(got(&c, "k", 1).unwrap().total, 3);
        // Generation moved on (ingest): the stale page must not hit, but
        // it stays resident for degraded-mode stale serving.
        assert!(c.get("k", 2).is_none());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get_stale("k").unwrap().1, 1);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        // Single shard, capacity 2, so order is fully observable.
        let c = QueryCache::new(2, 1);
        c.insert("a".into(), 1, page("a", 1));
        c.insert("b".into(), 1, page("b", 2));
        // Touch "a" so "b" becomes the LRU.
        assert!(got(&c, "a", 1).is_some());
        c.insert("c".into(), 1, page("c", 3));
        assert!(got(&c, "a", 1).is_some(), "recently used entry survives");
        assert!(c.get("b", 1).is_none(), "LRU entry was evicted");
        assert!(c.get("c", 1).is_some());
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evicted_lru, 1);
    }

    #[test]
    fn stale_entries_are_preferred_eviction_victims() {
        let c = QueryCache::new(2, 1);
        c.insert("old".into(), 1, page("old", 1));
        c.insert("new".into(), 2, page("new", 2));
        // "old" is generation-1; at generation 2 it is stale and must be
        // evicted before the live "new" entry even though "new" is older
        // in LRU terms after we touch "old"'s slot indirectly.
        c.insert("extra".into(), 2, page("extra", 3));
        assert!(c.get("new", 2).is_some(), "live entry kept");
        assert!(c.get("extra", 2).is_some());
        assert!(c.get("old", 2).is_none());
    }

    #[test]
    fn reinserting_same_key_updates_without_eviction() {
        let c = QueryCache::new(2, 1);
        c.insert("a".into(), 1, page("a", 1));
        c.insert("b".into(), 1, page("b", 2));
        c.insert("a".into(), 1, page("a", 9));
        assert_eq!(c.len(), 2);
        assert_eq!(got(&c, "a", 1).unwrap().total, 9);
        assert!(c.get("b", 1).is_some());
        assert_eq!(c.stats().evicted_lru, 0);
    }

    #[test]
    fn shards_partition_the_keyspace() {
        let c = QueryCache::new(64, 8);
        for i in 0..64 {
            c.insert(format!("key-{i}"), 1, page("q", i));
        }
        assert!(c.len() >= 48, "hash spread should keep most entries");
        for i in 0..64 {
            if let Some(p) = c.get(&format!("key-{i}"), 1).and_then(CachedValue::into_page) {
                assert_eq!(p.total, i);
            }
        }
    }

    #[test]
    fn ttl_expires_entries_on_lookup() {
        let c = QueryCache::with_limits(8, 1, Some(Duration::from_millis(15)), None);
        c.insert("k".into(), 1, page("q", 1));
        assert!(c.get("k", 1).is_some(), "fresh entry hits");
        std::thread::sleep(Duration::from_millis(25));
        assert!(c.get("k", 1).is_none(), "expired entry must not hit");
        assert_eq!(c.stats().evicted_ttl, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn byte_budget_evicts_oldest_pages() {
        // Each empty-results page is ~128 bytes + query; budget fits ~3.
        let c = QueryCache::with_limits(64, 1, None, Some(450));
        for i in 0..6 {
            c.insert(format!("k{i}"), 1, page("q", i));
        }
        let stats = c.stats();
        assert!(
            stats.resident_bytes <= 450,
            "budget respected: {stats:?}"
        );
        assert!(stats.evicted_bytes >= 1, "{stats:?}");
        assert!(c.get("k5", 1).is_some(), "newest entry survives");
    }

    #[test]
    fn stale_lookup_ignores_generation_and_leaves_entry() {
        let c = QueryCache::new(8, 1);
        c.insert("k".into(), 1, page("q", 7));
        let (stale, generation) = c.get_stale("k").expect("stale page available");
        assert_eq!(stale.into_page().unwrap().total, 7);
        assert_eq!(generation, 1);
        // Still resident for the next degraded request…
        assert!(c.get_stale("k").is_some());
        // …and still invisible to a fresh-generation lookup.
        assert!(c.get("k", 2).is_none());
    }
}
