//! Sharded LRU cache for search-result pages with generation-based
//! invalidation.
//!
//! Keys are the canonical `(engine, normalized query, page)` strings from
//! [`covidkg_search::cache_key`]; values are whole [`SearchPage`]s tagged
//! with the data generation that produced them. A lookup only hits when
//! the entry's generation equals the caller's *current* generation, so a
//! page cached before an ingest can never be served after it — stale
//! entries are dropped lazily on the next lookup or eviction.
//!
//! Sharding (key-hash → shard, each with its own mutex) keeps concurrent
//! clients from serializing on one lock; per-shard LRU order is tracked
//! with a monotone use-counter, and eviction removes the
//! least-recently-used entry of the full shard.

use covidkg_search::SearchPage;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

#[derive(Debug)]
struct Entry {
    page: SearchPage,
    generation: u64,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<String, Entry>,
    tick: u64,
}

/// Sharded, generation-aware LRU cache.
#[derive(Debug)]
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl QueryCache {
    /// Cache holding at most `capacity` pages across `shards` shards
    /// (both floored at 1; per-shard capacity is the ceiling division so
    /// total capacity is at least `capacity`).
    pub fn new(capacity: usize, shards: usize) -> QueryCache {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        QueryCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(shards),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// The page cached under `key` at exactly `current_generation`, or
    /// `None`. A generation mismatch removes the stale entry.
    pub fn get(&self, key: &str, current_generation: u64) -> Option<SearchPage> {
        let mut shard = self.shard(key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some(entry) if entry.generation == current_generation => {
                entry.last_used = tick;
                Some(entry.page.clone())
            }
            Some(_) => {
                shard.map.remove(key);
                None
            }
            None => None,
        }
    }

    /// Cache `page` under `key` as of `generation`, evicting the shard's
    /// least-recently-used entry when full (stale entries evict first).
    pub fn insert(&self, key: String, generation: u64, page: SearchPage) {
        let mut shard = self.shard(&key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            // Prefer evicting an invalidated entry; otherwise the LRU.
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| (e.generation == generation, e.last_used))
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                shard.map.remove(&victim);
            }
        }
        shard.map.insert(key, Entry { page, generation, last_used: tick });
    }

    /// Entries currently resident (any generation).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(query: &str, total: usize) -> SearchPage {
        SearchPage {
            query: query.to_string(),
            page: 0,
            page_size: 10,
            total,
            results: Vec::new(),
        }
    }

    #[test]
    fn hit_requires_matching_generation() {
        let c = QueryCache::new(8, 2);
        c.insert("k".into(), 1, page("q", 3));
        assert_eq!(c.get("k", 1).unwrap().total, 3);
        // Generation moved on (ingest): the stale page must not hit and
        // must be dropped.
        assert!(c.get("k", 2).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn evicts_least_recently_used_first() {
        // Single shard, capacity 2, so order is fully observable.
        let c = QueryCache::new(2, 1);
        c.insert("a".into(), 1, page("a", 1));
        c.insert("b".into(), 1, page("b", 2));
        // Touch "a" so "b" becomes the LRU.
        assert!(c.get("a", 1).is_some());
        c.insert("c".into(), 1, page("c", 3));
        assert!(c.get("a", 1).is_some(), "recently used entry survives");
        assert!(c.get("b", 1).is_none(), "LRU entry was evicted");
        assert!(c.get("c", 1).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn stale_entries_are_preferred_eviction_victims() {
        let c = QueryCache::new(2, 1);
        c.insert("old".into(), 1, page("old", 1));
        c.insert("new".into(), 2, page("new", 2));
        // "old" is generation-1; at generation 2 it is stale and must be
        // evicted before the live "new" entry even though "new" is older
        // in LRU terms after we touch "old"'s slot indirectly.
        c.insert("extra".into(), 2, page("extra", 3));
        assert!(c.get("new", 2).is_some(), "live entry kept");
        assert!(c.get("extra", 2).is_some());
        assert!(c.get("old", 2).is_none());
    }

    #[test]
    fn reinserting_same_key_updates_without_eviction() {
        let c = QueryCache::new(2, 1);
        c.insert("a".into(), 1, page("a", 1));
        c.insert("b".into(), 1, page("b", 2));
        c.insert("a".into(), 1, page("a", 9));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a", 1).unwrap().total, 9);
        assert!(c.get("b", 1).is_some());
    }

    #[test]
    fn shards_partition_the_keyspace() {
        let c = QueryCache::new(64, 8);
        for i in 0..64 {
            c.insert(format!("key-{i}"), 1, page("q", i));
        }
        assert!(c.len() >= 48, "hash spread should keep most entries");
        for i in 0..64 {
            if let Some(p) = c.get(&format!("key-{i}"), 1) {
                assert_eq!(p.total, i);
            }
        }
    }
}
