//! The serving frontend: a bounded request queue drained by a worker
//! thread pool, fronted by the generation-keyed result cache.
//!
//! Request lifecycle:
//!
//! 1. [`Server::search`] computes the canonical cache key and probes the
//!    cache — a hit (entry generation == current generation) returns
//!    immediately without touching the queue.
//! 2. On a miss the request is `try_send`-enqueued. A full queue rejects
//!    with [`ServeError::Overloaded`] (admission control: the caller gets
//!    a typed backpressure signal instead of unbounded queueing).
//! 3. A worker dequeues the job, drops it with `DeadlineExceeded` if the
//!    deadline already passed, else runs `CovidKg::search` under the
//!    system read lock, capturing the data generation *under that same
//!    lock*, caches the page tagged with it, and replies.
//! 4. The caller waits on its private reply channel at most until its
//!    deadline; a timeout reports [`ServeError::DeadlineExceeded`]
//!    (the worker's late reply lands in the buffered channel and is
//!    dropped with it).
//!
//! Stale-freedom argument: [`Server::ingest`] mutates the system under
//! the write lock and stores the new generation into the atomic mirror
//! *before* releasing it. A search result was computed under a read lock
//! at generation `g` and cached tagged `g`; any later lookup compares
//! that tag against the mirror, which an intervening ingest has already
//! advanced — so the stale page can never be returned. Entries cached
//! concurrently with an ingest carry the pre-ingest generation and are
//! equally unservable.

use crate::cache::QueryCache;
use crate::metrics::{EngineKind, Metrics, ServeStats};
use covidkg_core::CovidKg;
use covidkg_corpus::Publication;
use covidkg_search::{cache_key, SearchMode, SearchPage};
use covidkg_store::StoreError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Bounded queue capacity; a full queue rejects with `Overloaded`.
    pub queue_capacity: usize,
    /// Total cached result pages.
    pub cache_capacity: usize,
    /// Cache shards (locks) the capacity is spread over.
    pub cache_shards: usize,
    /// Deadline applied when a request does not carry its own.
    pub default_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 512,
            cache_shards: 8,
            default_deadline: Duration::from_secs(5),
        }
    }
}

/// Typed serving failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue was full — back off and retry.
    Overloaded,
    /// The request missed its deadline (either queued too long or the
    /// caller stopped waiting).
    DeadlineExceeded,
    /// The server has shut down.
    Closed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "server overloaded: request queue full"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::Closed => write!(f, "server closed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A served search result.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The result page.
    pub page: SearchPage,
    /// Whether the page came from the cache.
    pub cached: bool,
    /// Data generation the page was computed at.
    pub generation: u64,
    /// End-to-end latency observed by the server.
    pub latency: Duration,
}

struct Job {
    mode: SearchMode,
    page: usize,
    key: String,
    deadline: Instant,
    submitted: Instant,
    reply: SyncSender<Result<ServeResponse, ServeError>>,
}

struct Inner {
    system: RwLock<CovidKg>,
    /// Mirror of `CovidKg::generation`, readable without the system lock.
    generation: AtomicU64,
    cache: QueryCache,
    metrics: Metrics,
}

/// Concurrent query-serving frontend over one [`CovidKg`] system.
pub struct Server {
    inner: Arc<Inner>,
    /// `None` once shut down; dropping the last sender disconnects the
    /// workers' shared receiver, which ends their loops.
    queue: Mutex<Option<SyncSender<Job>>>,
    /// Keeps the queue connected even with zero workers, so a full
    /// queue reports `Overloaded` (Full) rather than `Closed`
    /// (Disconnected).
    _queue_rx: Arc<Mutex<Receiver<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    default_deadline: Duration,
}

impl Server {
    /// Start a server (spawns `config.workers` worker threads).
    pub fn start(system: CovidKg, config: ServeConfig) -> Server {
        let generation = system.generation();
        let inner = Arc::new(Inner {
            system: RwLock::new(system),
            generation: AtomicU64::new(generation),
            cache: QueryCache::new(config.cache_capacity, config.cache_shards),
            metrics: Metrics::default(),
        });
        let (tx, rx) = sync_channel::<Job>(config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // Hold the receiver lock only for the dequeue itself.
                    let job = match rx.lock().unwrap().recv() {
                        Ok(job) => job,
                        Err(_) => return, // queue sender dropped: shutdown
                    };
                    inner.metrics.dequeued();
                    run_job(&inner, job);
                })
            })
            .collect();
        Server {
            inner,
            queue: Mutex::new(Some(tx)),
            _queue_rx: rx,
            workers: Mutex::new(workers),
            default_deadline: config.default_deadline,
        }
    }

    /// Serve a search with the configured default deadline.
    pub fn search(&self, mode: &SearchMode, page: usize) -> Result<ServeResponse, ServeError> {
        self.search_with_deadline(mode, page, self.default_deadline)
    }

    /// Serve a search, waiting at most `deadline` for the result.
    pub fn search_with_deadline(
        &self,
        mode: &SearchMode,
        page: usize,
        deadline: Duration,
    ) -> Result<ServeResponse, ServeError> {
        let submitted = Instant::now();
        self.inner.metrics.record_request(engine_kind(mode));
        let key = cache_key(mode, page);

        // Cache sits in front of the queue: hits cost two mutex hops and
        // never consume queue capacity or a worker.
        let generation = self.inner.generation.load(Ordering::Acquire);
        if let Some(cached) = self.inner.cache.get(&key, generation) {
            self.inner.metrics.record_hit();
            let latency = submitted.elapsed();
            self.inner.metrics.record_completed(latency);
            return Ok(ServeResponse { page: cached, cached: true, generation, latency });
        }
        self.inner.metrics.record_miss();

        // Buffered reply slot so a worker finishing after we time out
        // never blocks on a reader that left.
        let (reply_tx, reply_rx) = sync_channel(1);
        let job = Job {
            mode: mode.clone(),
            page,
            key,
            deadline: submitted + deadline,
            submitted,
            reply: reply_tx,
        };
        let sender = match &*self.queue.lock().unwrap() {
            Some(tx) => tx.clone(),
            None => return Err(ServeError::Closed),
        };
        // Count the enqueue before the send: a worker may dequeue (and
        // decrement the depth) the instant the job lands, so counting
        // afterwards could drive the gauge below zero.
        self.inner.metrics.enqueued();
        match sender.try_send(job) {
            Ok(()) => self.inner.metrics.record_admitted_depth(),
            Err(TrySendError::Full(_)) => {
                self.inner.metrics.dequeued();
                self.inner.metrics.record_overloaded();
                return Err(ServeError::Overloaded);
            }
            Err(TrySendError::Disconnected(_)) => {
                self.inner.metrics.dequeued();
                return Err(ServeError::Closed);
            }
        }
        match reply_rx.recv_timeout(deadline) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => {
                self.inner.metrics.record_deadline_exceeded();
                Err(ServeError::DeadlineExceeded)
            }
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::Closed),
        }
    }

    /// Ingest new publications, invalidating the result cache: the data
    /// generation advances before the write lock is released, so every
    /// previously cached page stops matching on its generation tag.
    pub fn ingest(&self, pubs: &[Publication]) -> Result<usize, StoreError> {
        let mut system = self.inner.system.write().unwrap();
        let added = system.ingest(pubs)?;
        self.inner
            .generation
            .store(system.generation(), Ordering::Release);
        Ok(added)
    }

    /// Uncached, unqueued search straight against the system — the
    /// ground truth the load generator verifies served responses with.
    pub fn search_direct(&self, mode: &SearchMode, page: usize) -> SearchPage {
        self.inner.system.read().unwrap().search(mode, page)
    }

    /// Current data generation.
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::Acquire)
    }

    /// Point-in-time serving statistics.
    pub fn stats(&self) -> ServeStats {
        self.inner.metrics.snapshot()
    }

    /// Cached result pages currently resident.
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// Stop accepting work and join the workers. Already-queued jobs are
    /// drained first; subsequent `search` calls return
    /// [`ServeError::Closed`]. Idempotent.
    pub fn shutdown(&self) {
        drop(self.queue.lock().unwrap().take());
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_job(inner: &Inner, job: Job) {
    if Instant::now() >= job.deadline {
        // Expired while queued: don't waste a search on it.
        inner.metrics.record_deadline_exceeded();
        let _ = job.reply.try_send(Err(ServeError::DeadlineExceeded));
        return;
    }
    let (page, generation) = {
        let system = inner.system.read().unwrap();
        // Generation read under the same read lock the search runs
        // under: the pair is consistent even against concurrent ingests.
        (system.search(&job.mode, job.page), system.generation())
    };
    inner.cache.insert(job.key, generation, page.clone());
    let latency = job.submitted.elapsed();
    inner.metrics.record_completed(latency);
    let _ = job.reply.try_send(Ok(ServeResponse {
        page,
        cached: false,
        generation,
        latency,
    }));
}

fn engine_kind(mode: &SearchMode) -> EngineKind {
    match mode {
        SearchMode::AllFields(_) => EngineKind::AllFields,
        SearchMode::Tables(_) => EngineKind::Tables,
        SearchMode::TitleAbstractCaption { .. } => EngineKind::Scoped,
    }
}
