//! The serving frontend: a bounded request queue drained by a worker
//! thread pool, fronted by the generation-keyed result cache.
//!
//! Request lifecycle:
//!
//! 1. [`Server::search`] computes the canonical cache key and probes the
//!    cache — a hit (entry generation == current generation) returns
//!    immediately without touching the queue.
//! 2. On a miss, the target engine's circuit breaker is consulted: an
//!    open breaker short-circuits to the degradation ladder below. Else
//!    the request is `try_send`-enqueued; a full queue rejects with
//!    [`ServeError::Overloaded`] (admission control: the caller gets a
//!    typed backpressure signal instead of unbounded queueing).
//! 3. A worker dequeues the job, drops it with `DeadlineExceeded` if the
//!    deadline already passed, else runs `CovidKg::search` under the
//!    system read lock, capturing the data generation *under that same
//!    lock*, caches the page tagged with it, and replies.
//! 4. The caller waits on its private reply channel at most until its
//!    deadline; a timeout reports [`ServeError::DeadlineExceeded`]
//!    (the worker's late reply lands in the buffered channel and is
//!    dropped with it).
//!
//! # Panic isolation and the degradation ladder
//!
//! A panicking query must cost exactly one request, never the server:
//!
//! * every search job runs under `catch_unwind`, so a panic mid-search
//!   is caught, counted, fed to the engine's circuit breaker, and the
//!   waiting caller still gets a reply (stale page or typed error) —
//!   the worker thread survives;
//! * a panic that does escape the catch (e.g. an injected worker crash)
//!   trips a sentinel that **respawns a replacement worker**, so the
//!   pool never shrinks;
//! * every lock acquisition recovers from poisoning instead of
//!   `unwrap`ing, so stats, shutdown and later requests keep working
//!   after any panic anywhere;
//! * per-engine **adaptive** circuit breakers track outcomes over a
//!   sliding `breaker_window` and open once the error rate reaches
//!   `breaker_error_rate` with at least `breaker_min_samples` outcomes
//!   resident, short-circuiting requests for `breaker_cooldown`, after
//!   which one probe request is let through (half-open). While open, requests are served **degraded**: a
//!   cached page of *any* generation marked [`ServeResponse::stale`],
//!   or the typed [`ServeError::Degraded`] when none exists — never a
//!   hang, never a panic.
//!
//! Stale-freedom argument (healthy path): [`Server::ingest`] commits the
//! in-memory graph mutation under the write lock and stores the new
//! generation into the atomic mirror *before* releasing it. A search
//! result was computed under a read lock at generation `g` and cached
//! tagged `g`; any later lookup compares that tag against the mirror,
//! which an intervening ingest has already advanced — so the stale page
//! can never be returned silently. The store/classify prepare phase runs
//! under a *read* lock (reads keep flowing during the expensive part of
//! an ingest); pages computed while it runs may observe some of the new
//! documents early, but they are tagged `g` and the commit's generation
//! bump invalidates them wholesale. Degraded mode is the deliberate
//! exception: it may serve an old-generation page, but always labeled
//! `stale: true`.

use crate::cache::{CachedValue, QueryCache};
use crate::metrics::{DenseKind, EngineKind, Metrics, ServeStats};
use covidkg_core::{CovidKg, QueryPlan};
use covidkg_corpus::Publication;
use covidkg_search::{cache_key, dense_cache_key, DenseMode, SearchMode, SearchPage};
use covidkg_store::StoreError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poison-recovering `Mutex` lock (satellite of the fault-injection
/// work: a dead worker must never wedge shutdown, stats or the queue).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Poison-recovering `RwLock` read guard.
fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Poison-recovering `RwLock` write guard.
fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Bounded queue capacity; a full queue rejects with `Overloaded`.
    pub queue_capacity: usize,
    /// Total cached result pages.
    pub cache_capacity: usize,
    /// Cache shards (locks) the capacity is spread over.
    pub cache_shards: usize,
    /// Cached pages older than this never hit (None = no TTL).
    pub cache_ttl: Option<Duration>,
    /// Approximate total-bytes budget for cached pages (None = none).
    pub cache_max_bytes: Option<usize>,
    /// Deadline applied when a request does not carry its own.
    pub default_deadline: Duration,
    /// Sliding window over which an engine's error rate is measured for
    /// circuit breaking.
    pub breaker_window: Duration,
    /// Error rate (failures / outcomes in the window) at or above which
    /// the breaker opens.
    pub breaker_error_rate: f64,
    /// Minimum outcomes resident in the window before the error rate is
    /// considered meaningful — below this the breaker never opens.
    pub breaker_min_samples: u32,
    /// How long a tripped breaker short-circuits before allowing a
    /// half-open probe.
    pub breaker_cooldown: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 512,
            cache_shards: 8,
            cache_ttl: Some(Duration::from_secs(120)),
            cache_max_bytes: Some(8 << 20),
            default_deadline: Duration::from_secs(5),
            breaker_window: Duration::from_secs(1),
            breaker_error_rate: 0.5,
            breaker_min_samples: 5,
            breaker_cooldown: Duration::from_millis(250),
        }
    }
}

/// Typed serving failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue was full — back off and retry.
    Overloaded,
    /// The request missed its deadline (either queued too long or the
    /// caller stopped waiting).
    DeadlineExceeded,
    /// The target engine is unhealthy (circuit breaker open or the
    /// worker crashed on this request) and no cached page — not even a
    /// stale one — could stand in.
    Degraded,
    /// The server has shut down.
    Closed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "server overloaded: request queue full"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::Degraded => write!(f, "engine degraded and no cached page available"),
            ServeError::Closed => write!(f, "server closed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A served search result.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The result page.
    pub page: SearchPage,
    /// Whether the page came from the cache.
    pub cached: bool,
    /// Degraded-mode answer: the page may predate the current data
    /// generation (served from cache while the engine is unhealthy).
    pub stale: bool,
    /// Data generation the page was computed at.
    pub generation: u64,
    /// End-to-end latency observed by the server.
    pub latency: Duration,
}

/// A served KG response: the pre-serialized JSON body (the canonical
/// wire form — `GET /kg/query` and `GET /kg/profile/{vaccine}` send
/// these bytes verbatim, so wire output is byte-identical to
/// in-process serialization).
///
/// Unlike search traffic there is deliberately no `stale` flag: profile
/// documents are epoch-stamped and must never be served from an older
/// generation, so degraded mode fails typed instead of serving stale.
#[derive(Debug, Clone)]
pub struct KgResponse {
    /// Serialized JSON body.
    pub body: String,
    /// Whether the body came from the cache.
    pub cached: bool,
    /// Data generation the body was computed at.
    pub generation: u64,
    /// End-to-end latency observed by the server.
    pub latency: Duration,
}

/// Deterministic worker-side fault schedule for chaos runs: every
/// `panic_every`-th search job panics mid-query, every `delay_every`-th
/// sleeps for `delay` first (0 disables either). Jobs are numbered by a
/// global sequence, so a fixed schedule yields a fixed fault pattern.
#[derive(Debug, Clone, Default)]
pub struct InjectedFaults {
    /// Panic on jobs where `seq % panic_every == panic_every - 1`.
    pub panic_every: u64,
    /// Delay jobs where `seq % delay_every == delay_every - 1`.
    pub delay_every: u64,
    /// Length of the injected delay.
    pub delay: Duration,
}

struct SearchJob {
    mode: SearchMode,
    page: usize,
    key: String,
    engine: EngineKind,
    deadline: Instant,
    submitted: Instant,
    reply: SyncSender<Result<ServeResponse, ServeError>>,
}

/// The KG operations served through the worker queue.
enum KgOp {
    /// Multi-hop ranked-path traversal.
    Query(Box<QueryPlan>),
    /// Traversal re-ranked by provenance trust (`trust=1` knob).
    QueryTrusted(Box<QueryPlan>),
    /// One vaccine's materialized meta-profile document.
    Profile(String),
}

struct KgJob {
    op: KgOp,
    key: String,
    deadline: Instant,
    submitted: Instant,
    reply: SyncSender<Result<Option<KgResponse>, ServeError>>,
}

/// The trust operations served through the worker queue (the fourth
/// wire traffic class).
enum TrustOp {
    /// One KG node's trust document.
    Node(usize),
    /// One source venue's credibility document.
    Source(String),
    /// The full trust-weighted bias interrogation report.
    Bias,
}

struct TrustJob {
    op: TrustOp,
    key: String,
    deadline: Instant,
    submitted: Instant,
    reply: SyncSender<Result<Option<KgResponse>, ServeError>>,
}

enum Job {
    Search(Box<SearchJob>),
    Kg(Box<KgJob>),
    Trust(Box<TrustJob>),
    /// Chaos hook: makes the dequeuing worker panic *outside* the
    /// per-job `catch_unwind`, exercising the respawn sentinel.
    CrashWorker,
}

/// Breaker tuning, copied out of [`ServeConfig`].
#[derive(Debug, Clone, Copy)]
struct BreakerSettings {
    window: Duration,
    error_rate: f64,
    min_samples: u32,
    cooldown: Duration,
}

impl From<&ServeConfig> for BreakerSettings {
    fn from(c: &ServeConfig) -> BreakerSettings {
        BreakerSettings {
            window: c.breaker_window,
            error_rate: c.breaker_error_rate.clamp(0.0, 1.0),
            min_samples: c.breaker_min_samples.max(1),
            cooldown: c.breaker_cooldown,
        }
    }
}

#[derive(Debug, Default)]
struct BreakerState {
    /// `(when, failed)` outcomes inside the sliding window, oldest first.
    outcomes: VecDeque<(Instant, bool)>,
    /// While `Some`, requests short-circuit until the instant passes —
    /// and stays set through half-open, so only the single admitted
    /// probe reaches the engine while its outcome is pending.
    open_until: Option<Instant>,
    /// When the in-flight half-open probe was admitted; the probe's
    /// outcome decides between close and re-open. A probe whose outcome
    /// is never recorded (e.g. its job was dropped on a queue deadline)
    /// expires after one cooldown, releasing the slot for a new probe.
    probe_started: Option<Instant>,
}

/// Per-engine adaptive circuit breaker: outcomes are kept in a sliding
/// time window and the breaker opens when, with at least `min_samples`
/// outcomes resident, the error rate reaches `error_rate`. A burst of
/// failures trips it as soon as the sample floor is met; a steady
/// trickle of errors below the rate never does. After `cooldown` it
/// half-opens: one probe is allowed through, and a probe success clears
/// the window and fully closes the breaker while a probe failure
/// re-opens it for another cooldown.
#[derive(Debug, Default)]
struct Breaker {
    state: Mutex<BreakerState>,
}

impl Breaker {
    /// True when a request may proceed. Once the cooldown has elapsed
    /// the breaker half-opens: exactly one caller is admitted as the
    /// probe while everyone else keeps short-circuiting until that
    /// probe's own outcome is recorded (or it expires unreported).
    fn allow(&self, cfg: &BreakerSettings) -> bool {
        self.allow_at(Instant::now(), cfg)
    }

    fn allow_at(&self, now: Instant, cfg: &BreakerSettings) -> bool {
        let mut state = lock(&self.state);
        let Some(until) = state.open_until else {
            return true;
        };
        if now < until {
            return false;
        }
        // Half-open: `open_until` stays set so the engine sees one
        // probe, not a thundering herd, and a concurrent request's
        // outcome can't masquerade as the probe's.
        match state.probe_started {
            Some(started) if now.duration_since(started) < cfg.cooldown => false,
            _ => {
                state.probe_started = Some(now);
                true
            }
        }
    }

    /// Record a failed request; returns true when this failure newly
    /// opened (or re-opened, for a failed probe) the breaker.
    fn record_failure(&self, cfg: &BreakerSettings) -> bool {
        self.record_failure_at(Instant::now(), cfg)
    }

    fn record_failure_at(&self, now: Instant, cfg: &BreakerSettings) -> bool {
        let mut state = lock(&self.state);
        state.outcomes.push_back((now, true));
        prune(&mut state.outcomes, now, cfg.window);
        if state.probe_started.take().is_some() {
            // The half-open probe failed: straight back to open.
            state.open_until = Some(now + cfg.cooldown);
            return true;
        }
        let samples = state.outcomes.len();
        let errors = state.outcomes.iter().filter(|(_, failed)| *failed).count();
        if samples >= cfg.min_samples as usize
            && errors as f64 >= cfg.error_rate * samples as f64
        {
            let newly = state.open_until.is_none();
            state.open_until = Some(now + cfg.cooldown);
            newly
        } else {
            false
        }
    }

    fn record_success(&self, cfg: &BreakerSettings) {
        self.record_success_at(Instant::now(), cfg)
    }

    fn record_success_at(&self, now: Instant, cfg: &BreakerSettings) {
        let mut state = lock(&self.state);
        if state.probe_started.take().is_some() {
            // Probe succeeded: the engine recovered; past outcomes no
            // longer describe it.
            state.outcomes.clear();
            state.open_until = None;
        }
        state.outcomes.push_back((now, false));
        prune(&mut state.outcomes, now, cfg.window);
    }
}

/// Drop outcomes older than `window` (and bound the deque so a huge
/// window can't grow it without limit).
fn prune(outcomes: &mut VecDeque<(Instant, bool)>, now: Instant, window: Duration) {
    while let Some((when, _)) = outcomes.front() {
        if now.duration_since(*when) > window || outcomes.len() > 4096 {
            outcomes.pop_front();
        } else {
            break;
        }
    }
}

struct Inner {
    system: RwLock<CovidKg>,
    /// Serializes ingests with each other (never with readers): the
    /// prepare phase runs under a *read* lock so searches keep flowing,
    /// and this gate keeps a second ingest from interleaving its
    /// prepare/commit phases with ours.
    ingest_gate: Mutex<()>,
    /// Mirror of `CovidKg::generation`, readable without the system lock.
    generation: AtomicU64,
    cache: QueryCache,
    metrics: Metrics,
    breakers: [Breaker; 5],
    breaker_cfg: BreakerSettings,
    /// Worker-side fault schedule (chaos testing); None in production.
    faults: RwLock<Option<InjectedFaults>>,
    /// Global search-job sequence driving the fault schedule.
    job_seq: AtomicU64,
    /// Live worker handles; the respawn sentinel pushes replacements
    /// here so shutdown can join every worker that ever ran.
    worker_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    fn breaker(&self, engine: EngineKind) -> &Breaker {
        &self.breakers[engine.index()]
    }

    fn record_engine_failure(&self, engine: EngineKind) {
        if self.breaker(engine).record_failure(&self.breaker_cfg) {
            self.metrics.record_breaker_open();
        }
    }
}

/// Respawns a replacement worker when its thread dies to a panic that
/// escaped the per-job catch (armed only while unwinding).
struct RespawnSentinel {
    inner: Arc<Inner>,
    rx: Arc<Mutex<Receiver<Job>>>,
}

impl Drop for RespawnSentinel {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.inner.metrics.record_panic();
            self.inner.metrics.record_respawn();
            spawn_worker(Arc::clone(&self.inner), Arc::clone(&self.rx));
        }
    }
}

fn spawn_worker(inner: Arc<Inner>, rx: Arc<Mutex<Receiver<Job>>>) {
    let handle_registry = Arc::clone(&inner);
    let handle = std::thread::spawn(move || {
        let sentinel = RespawnSentinel {
            inner: Arc::clone(&inner),
            rx: Arc::clone(&rx),
        };
        loop {
            // Hold the receiver lock only for the dequeue itself.
            let job = match lock(&sentinel.rx).recv() {
                Ok(job) => job,
                Err(_) => return, // queue sender dropped: shutdown
            };
            sentinel.inner.metrics.dequeued();
            match job {
                Job::CrashWorker => panic!("injected worker crash"),
                Job::Search(job) => run_isolated(&sentinel.inner, *job),
                Job::Kg(job) => run_kg_isolated(&sentinel.inner, *job),
                Job::Trust(job) => run_trust_isolated(&sentinel.inner, *job),
            }
        }
    });
    lock(&handle_registry.worker_handles).push(handle);
}

/// Concurrent query-serving frontend over one [`CovidKg`] system.
pub struct Server {
    inner: Arc<Inner>,
    /// `None` once shut down; dropping the last sender disconnects the
    /// workers' shared receiver, which ends their loops.
    queue: Mutex<Option<SyncSender<Job>>>,
    /// Keeps the queue connected even with zero workers, so a full
    /// queue reports `Overloaded` (Full) rather than `Closed`
    /// (Disconnected).
    _queue_rx: Arc<Mutex<Receiver<Job>>>,
    default_deadline: Duration,
}

impl Server {
    /// Start a server (spawns `config.workers` worker threads).
    pub fn start(system: CovidKg, config: ServeConfig) -> Server {
        let generation = system.generation();
        let inner = Arc::new(Inner {
            system: RwLock::new(system),
            ingest_gate: Mutex::new(()),
            generation: AtomicU64::new(generation),
            cache: QueryCache::with_limits(
                config.cache_capacity,
                config.cache_shards,
                config.cache_ttl,
                config.cache_max_bytes,
            ),
            metrics: Metrics::default(),
            breakers: Default::default(),
            breaker_cfg: BreakerSettings::from(&config),
            faults: RwLock::new(None),
            job_seq: AtomicU64::new(0),
            worker_handles: Mutex::new(Vec::new()),
        });
        let (tx, rx) = sync_channel::<Job>(config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..config.workers {
            spawn_worker(Arc::clone(&inner), Arc::clone(&rx));
        }
        Server {
            inner,
            queue: Mutex::new(Some(tx)),
            _queue_rx: rx,
            default_deadline: config.default_deadline,
        }
    }

    /// Serve a search with the configured default deadline.
    pub fn search(&self, mode: &SearchMode, page: usize) -> Result<ServeResponse, ServeError> {
        self.search_with_deadline(mode, page, self.default_deadline)
    }

    /// Serve a search, waiting at most `deadline` for the result.
    pub fn search_with_deadline(
        &self,
        mode: &SearchMode,
        page: usize,
        deadline: Duration,
    ) -> Result<ServeResponse, ServeError> {
        let submitted = Instant::now();
        let engine = engine_kind(mode);
        self.inner.metrics.record_request(engine);
        let key = cache_key(mode, page);

        // Cache sits in front of the queue: hits cost two mutex hops and
        // never consume queue capacity or a worker.
        let generation = self.inner.generation.load(Ordering::Acquire);
        if let Some(cached) = self
            .inner
            .cache
            .get(&key, generation)
            .and_then(CachedValue::into_page)
        {
            self.inner.metrics.record_hit();
            let latency = submitted.elapsed();
            self.inner.metrics.record_completed(latency);
            return Ok(ServeResponse {
                page: cached,
                cached: true,
                stale: false,
                generation,
                latency,
            });
        }
        self.inner.metrics.record_miss();

        // Unhealthy engine: don't waste queue capacity on it — serve
        // degraded from whatever the cache still holds.
        if !self.inner.breaker(engine).allow(&self.inner.breaker_cfg) {
            return degraded_response(&self.inner, &key, submitted);
        }

        // Buffered reply slot so a worker finishing after we time out
        // never blocks on a reader that left.
        let (reply_tx, reply_rx) = sync_channel(1);
        let job = Job::Search(Box::new(SearchJob {
            mode: mode.clone(),
            page,
            key,
            engine,
            deadline: submitted + deadline,
            submitted,
            reply: reply_tx,
        }));
        let sender = match &*lock(&self.queue) {
            Some(tx) => tx.clone(),
            None => return Err(ServeError::Closed),
        };
        // Count the enqueue before the send: a worker may dequeue (and
        // decrement the depth) the instant the job lands, so counting
        // afterwards could drive the gauge below zero.
        self.inner.metrics.enqueued();
        match sender.try_send(job) {
            Ok(()) => self.inner.metrics.record_admitted_depth(),
            Err(TrySendError::Full(_)) => {
                self.inner.metrics.dequeued();
                self.inner.metrics.record_overloaded();
                return Err(ServeError::Overloaded);
            }
            Err(TrySendError::Disconnected(_)) => {
                self.inner.metrics.dequeued();
                return Err(ServeError::Closed);
            }
        }
        match reply_rx.recv_timeout(deadline) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => {
                self.inner.metrics.record_deadline_exceeded();
                Err(ServeError::DeadlineExceeded)
            }
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::Closed),
        }
    }

    /// Ingest new publications, invalidating the result cache: the data
    /// generation advances before the exclusive lock is released, so
    /// every previously cached page stops matching on its generation tag.
    ///
    /// Reads proceed during the expensive phases: document storage and
    /// table classification run under a shared lock
    /// ([`CovidKg::ingest_prepare`]), persistence under a shared lock
    /// ([`CovidKg::persist_now`]); only the in-memory graph-fusion
    /// commit takes the write lock. The `ingest_gate` serializes whole
    /// ingests so two callers can't interleave their phases.
    pub fn ingest(&self, pubs: &[Publication]) -> Result<usize, StoreError> {
        let _gate = lock(&self.inner.ingest_gate);
        let prepared = read_lock(&self.inner.system).ingest_prepare(pubs)?;
        let added = {
            let mut system = write_lock(&self.inner.system);
            let added = system.ingest_commit(prepared)?;
            self.inner
                .generation
                .store(system.generation(), Ordering::Release);
            added
        };
        read_lock(&self.inner.system).persist_now()?;
        Ok(added)
    }

    /// Uncached, unqueued search straight against the system — the
    /// ground truth the load generator verifies served responses with.
    pub fn search_direct(&self, mode: &SearchMode, page: usize) -> SearchPage {
        read_lock(&self.inner.system).search(mode, page)
    }

    /// Serve a dense (semantic or hybrid) search.
    ///
    /// Cache-fronted like [`Server::search_with_deadline`], but computed
    /// inline under the shared system lock instead of through the worker
    /// queue: an ANN query touches a logarithmic fraction of the corpus
    /// (sub-millisecond at our sizes, like the `/kg/node` lookups), so
    /// queue admission and circuit breaking would cost more than the
    /// search. The page and generation are read under one lock so a
    /// concurrent ingest commit can't tear them apart.
    pub fn search_dense(&self, mode: &DenseMode, page: usize) -> Result<ServeResponse, ServeError> {
        let submitted = Instant::now();
        let kind = match mode {
            DenseMode::Semantic(_) => DenseKind::Semantic,
            DenseMode::Hybrid(_) => DenseKind::Hybrid,
        };
        self.inner.metrics.record_dense_request(kind);
        let key = dense_cache_key(mode, page);
        let generation = self.inner.generation.load(Ordering::Acquire);
        if let Some(cached) = self
            .inner
            .cache
            .get(&key, generation)
            .and_then(CachedValue::into_page)
        {
            self.inner.metrics.record_hit();
            let latency = submitted.elapsed();
            self.inner.metrics.record_completed(latency);
            return Ok(ServeResponse {
                page: cached,
                cached: true,
                stale: false,
                generation,
                latency,
            });
        }
        self.inner.metrics.record_miss();
        let (result, generation) = {
            let system = read_lock(&self.inner.system);
            (system.search_dense(mode, page), system.generation())
        };
        self.inner.cache.insert(key, generation, result.clone());
        let latency = submitted.elapsed();
        self.inner.metrics.record_completed(latency);
        Ok(ServeResponse {
            page: result,
            cached: false,
            stale: false,
            generation,
            latency,
        })
    }

    /// Serve a KG traversal: cache-fronted and queue-admitted like the
    /// search engines (a deep traversal is real work, so it gets
    /// admission control and the `kg` circuit breaker), but never
    /// served stale — when the breaker is open or a worker crashes the
    /// caller gets the typed [`ServeError::Degraded`] instead of an
    /// old-generation body.
    pub fn kg_query(&self, plan: &QueryPlan) -> Result<KgResponse, ServeError> {
        let key = plan.cache_key();
        self.kg_request(KgOp::Query(Box::new(plan.clone())), key)
            .map(|resp| resp.expect("a traversal always yields a body"))
    }

    /// Serve one vaccine's materialized meta-profile document.
    /// `Ok(None)` = unknown vaccine (the wire layer's 404).
    pub fn kg_profile(&self, vaccine: &str) -> Result<Option<KgResponse>, ServeError> {
        let key = format!("kgp|{}:{vaccine}", vaccine.len());
        self.kg_request(KgOp::Profile(vaccine.to_string()), key)
    }

    /// Serve a KG traversal re-ranked by provenance trust (the
    /// `trust=1` knob on `/kg/query`). Cached under a distinct key so
    /// the default (untrusted) ranking is never cross-contaminated.
    pub fn kg_query_trusted(&self, plan: &QueryPlan) -> Result<KgResponse, ServeError> {
        let key = format!("{}|trust", plan.cache_key());
        self.kg_request(KgOp::QueryTrusted(Box::new(plan.clone())), key)
            .map(|resp| resp.expect("a traversal always yields a body"))
    }

    /// Serve one KG node's trust document (the fourth traffic class).
    /// `Ok(None)` = out-of-range id (the wire layer's 404). Like KG
    /// bodies, trust documents are epoch-stamped and never served
    /// stale: degraded mode fails typed.
    pub fn trust_node(&self, id: usize) -> Result<Option<KgResponse>, ServeError> {
        let key = format!("tn|{id}");
        self.trust_request(TrustOp::Node(id), key)
    }

    /// Serve one source venue's credibility document.
    /// `Ok(None)` = unknown venue.
    pub fn trust_source(&self, venue: &str) -> Result<Option<KgResponse>, ServeError> {
        let key = format!("ts|{}:{venue}", venue.len());
        self.trust_request(TrustOp::Source(venue.to_string()), key)
    }

    /// Serve the trust-weighted bias interrogation report. The body is
    /// memoized inside the system keyed on (trust epoch, generation),
    /// and cache-fronted here like every other trust body.
    pub fn bias_report(&self) -> Result<KgResponse, ServeError> {
        self.trust_request(TrustOp::Bias, "bias|".to_string())
            .map(|resp| resp.expect("the bias report always yields a body"))
    }

    /// Common trust request path: cache probe → breaker → queue →
    /// worker, mirroring [`Server::kg_request`] but accounted against
    /// the dedicated `trust` engine/breaker. Freshness over
    /// availability: an open breaker yields [`ServeError::Degraded`],
    /// never a stale body.
    fn trust_request(
        &self,
        op: TrustOp,
        key: String,
    ) -> Result<Option<KgResponse>, ServeError> {
        let submitted = Instant::now();
        self.inner.metrics.record_request(EngineKind::Trust);
        let generation = self.inner.generation.load(Ordering::Acquire);
        if let Some(body) = self
            .inner
            .cache
            .get(&key, generation)
            .and_then(CachedValue::into_body)
        {
            self.inner.metrics.record_hit();
            let latency = submitted.elapsed();
            self.inner.metrics.record_completed(latency);
            return Ok(Some(KgResponse {
                body,
                cached: true,
                generation,
                latency,
            }));
        }
        self.inner.metrics.record_miss();
        if !self
            .inner
            .breaker(EngineKind::Trust)
            .allow(&self.inner.breaker_cfg)
        {
            self.inner.metrics.record_degraded();
            return Err(ServeError::Degraded);
        }
        let deadline = self.default_deadline;
        let (reply_tx, reply_rx) = sync_channel(1);
        let job = Job::Trust(Box::new(TrustJob {
            op,
            key,
            deadline: submitted + deadline,
            submitted,
            reply: reply_tx,
        }));
        let sender = match &*lock(&self.queue) {
            Some(tx) => tx.clone(),
            None => return Err(ServeError::Closed),
        };
        self.inner.metrics.enqueued();
        match sender.try_send(job) {
            Ok(()) => self.inner.metrics.record_admitted_depth(),
            Err(TrySendError::Full(_)) => {
                self.inner.metrics.dequeued();
                self.inner.metrics.record_overloaded();
                return Err(ServeError::Overloaded);
            }
            Err(TrySendError::Disconnected(_)) => {
                self.inner.metrics.dequeued();
                return Err(ServeError::Closed);
            }
        }
        match reply_rx.recv_timeout(deadline) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => {
                self.inner.metrics.record_deadline_exceeded();
                Err(ServeError::DeadlineExceeded)
            }
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::Closed),
        }
    }

    /// Serve one KG node document. `Ok(None)` = out-of-range id.
    ///
    /// Cache-fronted like [`Server::search_dense`] but computed inline
    /// under the shared system lock instead of through the worker
    /// queue: a node lookup is O(1), so queue admission would cost
    /// more than the work itself.
    pub fn kg_node(&self, id: usize) -> Result<Option<KgResponse>, ServeError> {
        let submitted = Instant::now();
        self.inner.metrics.record_request(EngineKind::Kg);
        let key = format!("kgn|{id}");
        let generation = self.inner.generation.load(Ordering::Acquire);
        if let Some(body) = self
            .inner
            .cache
            .get(&key, generation)
            .and_then(CachedValue::into_body)
        {
            self.inner.metrics.record_hit();
            let latency = submitted.elapsed();
            self.inner.metrics.record_completed(latency);
            return Ok(Some(KgResponse {
                body,
                cached: true,
                generation,
                latency,
            }));
        }
        self.inner.metrics.record_miss();
        let (body, generation) = {
            let system = read_lock(&self.inner.system);
            (
                system.kg_node(id).map(|doc| doc.to_json()),
                system.generation(),
            )
        };
        let Some(body) = body else {
            return Ok(None);
        };
        self.inner.cache.insert(key, generation, body.clone());
        let latency = submitted.elapsed();
        self.inner.metrics.record_completed(latency);
        Ok(Some(KgResponse {
            body,
            cached: false,
            generation,
            latency,
        }))
    }

    /// Common KG request path: cache probe → breaker → queue → worker.
    fn kg_request(
        &self,
        op: KgOp,
        key: String,
    ) -> Result<Option<KgResponse>, ServeError> {
        let submitted = Instant::now();
        self.inner.metrics.record_request(EngineKind::Kg);
        let generation = self.inner.generation.load(Ordering::Acquire);
        if let Some(body) = self
            .inner
            .cache
            .get(&key, generation)
            .and_then(CachedValue::into_body)
        {
            self.inner.metrics.record_hit();
            let latency = submitted.elapsed();
            self.inner.metrics.record_completed(latency);
            return Ok(Some(KgResponse {
                body,
                cached: true,
                generation,
                latency,
            }));
        }
        self.inner.metrics.record_miss();
        // Freshness over availability: no stale fallback for KG bodies.
        if !self
            .inner
            .breaker(EngineKind::Kg)
            .allow(&self.inner.breaker_cfg)
        {
            self.inner.metrics.record_degraded();
            return Err(ServeError::Degraded);
        }
        let deadline = self.default_deadline;
        let (reply_tx, reply_rx) = sync_channel(1);
        let job = Job::Kg(Box::new(KgJob {
            op,
            key,
            deadline: submitted + deadline,
            submitted,
            reply: reply_tx,
        }));
        let sender = match &*lock(&self.queue) {
            Some(tx) => tx.clone(),
            None => return Err(ServeError::Closed),
        };
        self.inner.metrics.enqueued();
        match sender.try_send(job) {
            Ok(()) => self.inner.metrics.record_admitted_depth(),
            Err(TrySendError::Full(_)) => {
                self.inner.metrics.dequeued();
                self.inner.metrics.record_overloaded();
                return Err(ServeError::Overloaded);
            }
            Err(TrySendError::Disconnected(_)) => {
                self.inner.metrics.dequeued();
                return Err(ServeError::Closed);
            }
        }
        match reply_rx.recv_timeout(deadline) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => {
                self.inner.metrics.record_deadline_exceeded();
                Err(ServeError::DeadlineExceeded)
            }
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::Closed),
        }
    }

    /// Current data generation.
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::Acquire)
    }

    /// Run `f` with shared read access to the underlying system — used
    /// by the network front-end for routes (KG node lookups, system
    /// stats) that need data the search scheduler doesn't expose.
    pub fn with_system<R>(&self, f: impl FnOnce(&CovidKg) -> R) -> R {
        f(&read_lock(&self.inner.system))
    }

    /// Run `f` with exclusive access to the underlying system, then
    /// republish the generation mirror — used by the replication layer
    /// to refresh derived state after frames were applied beneath the
    /// system. Takes the ingest gate so it can't interleave with an
    /// in-flight ingest's phases.
    pub fn with_system_mut<R>(&self, f: impl FnOnce(&mut CovidKg) -> R) -> R {
        let _gate = lock(&self.inner.ingest_gate);
        let mut system = write_lock(&self.inner.system);
        let out = f(&mut system);
        self.inner
            .generation
            .store(system.generation(), Ordering::Release);
        out
    }

    /// Point-in-time serving statistics (including cache occupancy /
    /// eviction counters and store-level transient-retry totals).
    pub fn stats(&self) -> ServeStats {
        let mut stats = self.inner.metrics.snapshot();
        stats.cache = self.inner.cache.stats();
        stats.io_retries = read_lock(&self.inner.system).publications().io_retries();
        stats
    }

    /// Cached result pages currently resident.
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// Install (or clear) a deterministic worker-side fault schedule.
    pub fn set_injected_faults(&self, faults: Option<InjectedFaults>) {
        *write_lock(&self.inner.faults) = faults;
    }

    /// Chaos hook: enqueue a job that makes one worker panic *outside*
    /// its per-job `catch_unwind`, killing the thread and exercising the
    /// respawn path. Blocks until queue space is available.
    pub fn inject_worker_panic(&self) -> Result<(), ServeError> {
        let sender = match &*lock(&self.queue) {
            Some(tx) => tx.clone(),
            None => return Err(ServeError::Closed),
        };
        // The worker decrements the depth gauge for every dequeue, so
        // the crash job must increment it like any other.
        self.inner.metrics.enqueued();
        match sender.send(Job::CrashWorker) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.inner.metrics.dequeued();
                Err(ServeError::Closed)
            }
        }
    }

    /// Live worker threads (respawns keep this at the configured size).
    pub fn worker_count(&self) -> usize {
        lock(&self.inner.worker_handles)
            .iter()
            .filter(|h| !h.is_finished())
            .count()
    }

    /// Stop accepting work and join the workers. Already-queued jobs are
    /// drained first; subsequent `search` calls return
    /// [`ServeError::Closed`]. Idempotent.
    pub fn shutdown(&self) {
        drop(lock(&self.queue).take());
        // Workers may still respawn replacements while dying (the
        // replacement sees the disconnected queue and exits); loop until
        // the registry stays empty.
        loop {
            let handle = lock(&self.inner.worker_handles).pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => return,
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Answer a request in degraded mode: a cached page of any generation,
/// marked stale, or the typed [`ServeError::Degraded`].
fn degraded_response(
    inner: &Inner,
    key: &str,
    submitted: Instant,
) -> Result<ServeResponse, ServeError> {
    inner.metrics.record_degraded();
    match inner
        .cache
        .get_stale(key)
        .and_then(|(v, g)| v.into_page().map(|p| (p, g)))
    {
        Some((page, generation)) => {
            inner.metrics.record_stale_served();
            let latency = submitted.elapsed();
            inner.metrics.record_completed(latency);
            Ok(ServeResponse {
                page,
                cached: true,
                stale: true,
                generation,
                latency,
            })
        }
        None => Err(ServeError::Degraded),
    }
}

/// Run one search job with panic isolation: a panicking query is caught,
/// counted, fed to the engine's breaker, and answered degraded — the
/// worker thread (and every other queued request) survives.
fn run_isolated(inner: &Inner, job: SearchJob) {
    let reply = job.reply.clone();
    let key = job.key.clone();
    let engine = job.engine;
    let submitted = job.submitted;
    let outcome = catch_unwind(AssertUnwindSafe(|| run_job(inner, job)));
    if outcome.is_err() {
        inner.metrics.record_panic();
        inner.record_engine_failure(engine);
        let _ = reply.try_send(degraded_response(inner, &key, submitted));
    }
}

fn run_job(inner: &Inner, job: SearchJob) {
    if Instant::now() >= job.deadline {
        // Expired while queued: don't waste a search on it.
        inner.metrics.record_deadline_exceeded();
        let _ = job.reply.try_send(Err(ServeError::DeadlineExceeded));
        return;
    }
    // Chaos schedule: deterministic panics/delays keyed by job sequence.
    let seq = inner.job_seq.fetch_add(1, Ordering::Relaxed);
    if let Some(faults) = read_lock(&inner.faults).clone() {
        if faults.delay_every > 0 && seq % faults.delay_every == faults.delay_every - 1 {
            std::thread::sleep(faults.delay);
        }
        if faults.panic_every > 0 && seq % faults.panic_every == faults.panic_every - 1 {
            panic!("injected query panic (seq {seq})");
        }
    }
    let (page, generation) = {
        let system = read_lock(&inner.system);
        // Generation read under the same read lock the search runs
        // under: the pair is consistent even against concurrent ingests.
        (system.search(&job.mode, job.page), system.generation())
    };
    inner.breaker(job.engine).record_success(&inner.breaker_cfg);
    inner.cache.insert(job.key, generation, page.clone());
    let latency = job.submitted.elapsed();
    inner.metrics.record_completed(latency);
    let _ = job.reply.try_send(Ok(ServeResponse {
        page,
        cached: false,
        stale: false,
        generation,
        latency,
    }));
}

/// Run one KG job with the same panic isolation as search jobs. A
/// panicking traversal feeds the `kg` breaker and answers with the
/// typed [`ServeError::Degraded`] — never a stale body (freshness over
/// availability for the KG traffic class).
fn run_kg_isolated(inner: &Inner, job: KgJob) {
    let reply = job.reply.clone();
    let outcome = catch_unwind(AssertUnwindSafe(|| run_kg_job(inner, job)));
    if outcome.is_err() {
        inner.metrics.record_panic();
        inner.record_engine_failure(EngineKind::Kg);
        inner.metrics.record_degraded();
        let _ = reply.try_send(Err(ServeError::Degraded));
    }
}

fn run_kg_job(inner: &Inner, job: KgJob) {
    if Instant::now() >= job.deadline {
        inner.metrics.record_deadline_exceeded();
        let _ = job.reply.try_send(Err(ServeError::DeadlineExceeded));
        return;
    }
    // KG jobs share the chaos fault schedule: they run on the same
    // workers, so they must survive the same injected failures.
    let seq = inner.job_seq.fetch_add(1, Ordering::Relaxed);
    if let Some(faults) = read_lock(&inner.faults).clone() {
        if faults.delay_every > 0 && seq % faults.delay_every == faults.delay_every - 1 {
            std::thread::sleep(faults.delay);
        }
        if faults.panic_every > 0 && seq % faults.panic_every == faults.panic_every - 1 {
            panic!("injected kg panic (seq {seq})");
        }
    }
    let (body, generation) = {
        let system = read_lock(&inner.system);
        let body = match &job.op {
            KgOp::Query(plan) => {
                let result = system.kg_query(plan);
                inner
                    .metrics
                    .record_kg_traversal(result.hops, result.visited);
                Some(result.to_json().to_json())
            }
            KgOp::QueryTrusted(plan) => Some(system.kg_query_trusted(plan).to_json()),
            KgOp::Profile(vaccine) => system.kg_profile(vaccine).map(|doc| doc.to_json()),
        };
        (body, system.generation())
    };
    inner
        .breaker(EngineKind::Kg)
        .record_success(&inner.breaker_cfg);
    let latency = job.submitted.elapsed();
    inner.metrics.record_completed(latency);
    let response = body.map(|body| {
        inner.cache.insert(job.key, generation, body.clone());
        KgResponse {
            body,
            cached: false,
            generation,
            latency,
        }
    });
    let _ = job.reply.try_send(Ok(response));
}

/// Run one trust job with the same panic isolation as KG jobs: a panic
/// feeds the `trust` breaker and answers with the typed
/// [`ServeError::Degraded`] — never a stale body.
fn run_trust_isolated(inner: &Inner, job: TrustJob) {
    let reply = job.reply.clone();
    let outcome = catch_unwind(AssertUnwindSafe(|| run_trust_job(inner, job)));
    if outcome.is_err() {
        inner.metrics.record_panic();
        inner.record_engine_failure(EngineKind::Trust);
        inner.metrics.record_degraded();
        let _ = reply.try_send(Err(ServeError::Degraded));
    }
}

fn run_trust_job(inner: &Inner, job: TrustJob) {
    if Instant::now() >= job.deadline {
        inner.metrics.record_deadline_exceeded();
        let _ = job.reply.try_send(Err(ServeError::DeadlineExceeded));
        return;
    }
    // Trust jobs share the chaos fault schedule with every other class
    // on these workers.
    let seq = inner.job_seq.fetch_add(1, Ordering::Relaxed);
    if let Some(faults) = read_lock(&inner.faults).clone() {
        if faults.delay_every > 0 && seq % faults.delay_every == faults.delay_every - 1 {
            std::thread::sleep(faults.delay);
        }
        if faults.panic_every > 0 && seq % faults.panic_every == faults.panic_every - 1 {
            panic!("injected trust panic (seq {seq})");
        }
    }
    let (body, generation) = {
        let system = read_lock(&inner.system);
        let body = match &job.op {
            TrustOp::Node(id) => system.trust_node(*id).map(|doc| doc.to_json()),
            TrustOp::Source(venue) => system.trust_source(venue).map(|doc| doc.to_json()),
            TrustOp::Bias => Some(system.bias_document().to_json()),
        };
        (body, system.generation())
    };
    inner
        .breaker(EngineKind::Trust)
        .record_success(&inner.breaker_cfg);
    let latency = job.submitted.elapsed();
    inner.metrics.record_completed(latency);
    let response = body.map(|body| {
        inner.cache.insert(job.key, generation, body.clone());
        KgResponse {
            body,
            cached: false,
            generation,
            latency,
        }
    });
    let _ = job.reply.try_send(Ok(response));
}

fn engine_kind(mode: &SearchMode) -> EngineKind {
    match mode {
        SearchMode::AllFields(_) => EngineKind::AllFields,
        SearchMode::Tables(_) => EngineKind::Tables,
        SearchMode::TitleAbstractCaption { .. } => EngineKind::Scoped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerSettings {
        BreakerSettings {
            window: Duration::from_secs(1),
            error_rate: 0.5,
            min_samples: 4,
            cooldown: Duration::from_millis(100),
        }
    }

    /// All transitions are driven through the `_at` variants with an
    /// explicit clock so the tests are deterministic.
    #[test]
    fn bursty_errors_open_the_breaker_once() {
        let b = Breaker::default();
        let cfg = cfg();
        let t0 = Instant::now();
        // Three failures in a burst: below the sample floor, still closed.
        for i in 0..3u64 {
            let newly = b.record_failure_at(t0 + Duration::from_millis(i), &cfg);
            assert!(!newly, "failure {i} must not open below min_samples");
            assert!(b.allow_at(t0 + Duration::from_millis(i), &cfg));
        }
        // Fourth failure meets the floor at 100% error rate: opens.
        assert!(b.record_failure_at(t0 + Duration::from_millis(3), &cfg));
        assert!(!b.allow_at(t0 + Duration::from_millis(4), &cfg), "open blocks");
        // Further failures while open are not "newly opened".
        assert!(!b.record_failure_at(t0 + Duration::from_millis(5), &cfg));
    }

    #[test]
    fn steady_errors_below_the_rate_never_open() {
        let b = Breaker::default();
        let cfg = cfg();
        let t0 = Instant::now();
        // Alternate ok/err well past the sample floor: rate stays at
        // ~1/2 of outcomes but never *exceeds* it with the successes
        // interleaved first — use 1 err per 3 ok so the rate is 0.25.
        for i in 0..40u64 {
            let now = t0 + Duration::from_millis(i * 10);
            if i % 4 == 0 {
                assert!(!b.record_failure_at(now, &cfg), "steady trickle at 25%");
            } else {
                b.record_success_at(now, &cfg);
            }
            assert!(b.allow_at(now, &cfg), "breaker must stay closed");
        }
    }

    #[test]
    fn error_rate_is_windowed_old_failures_age_out() {
        let b = Breaker::default();
        let cfg = cfg();
        let t0 = Instant::now();
        // Three failures now; then, after the window has slid past
        // them, a fourth failure meets the floor only if the old ones
        // still counted — they don't, so it stays closed.
        for i in 0..3u64 {
            b.record_failure_at(t0 + Duration::from_millis(i), &cfg);
        }
        let later = t0 + Duration::from_secs(2);
        assert!(
            !b.record_failure_at(later, &cfg),
            "aged-out failures must not contribute to the rate"
        );
        assert!(b.allow_at(later, &cfg));
    }

    #[test]
    fn half_open_probe_success_closes_and_clears() {
        let b = Breaker::default();
        let cfg = cfg();
        let t0 = Instant::now();
        for i in 0..4u64 {
            b.record_failure_at(t0 + Duration::from_millis(i), &cfg);
        }
        assert!(!b.allow_at(t0 + Duration::from_millis(10), &cfg), "open");
        // Cooldown elapses: exactly the next allow becomes the probe.
        let probe_at = t0 + Duration::from_millis(110);
        assert!(b.allow_at(probe_at, &cfg), "half-open lets the probe through");
        b.record_success_at(probe_at, &cfg);
        // Fully closed, and the window was cleared: a single follow-up
        // failure is below the sample floor again.
        assert!(b.allow_at(probe_at + Duration::from_millis(1), &cfg));
        assert!(!b.record_failure_at(probe_at + Duration::from_millis(2), &cfg));
        assert!(b.allow_at(probe_at + Duration::from_millis(3), &cfg));
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = Breaker::default();
        let cfg = cfg();
        let t0 = Instant::now();
        for i in 0..4u64 {
            b.record_failure_at(t0 + Duration::from_millis(i), &cfg);
        }
        let probe_at = t0 + Duration::from_millis(110);
        assert!(b.allow_at(probe_at, &cfg));
        assert!(
            b.record_failure_at(probe_at, &cfg),
            "failed probe re-opens (and counts as an open)"
        );
        assert!(!b.allow_at(probe_at + Duration::from_millis(10), &cfg), "open again");
        // And the *second* cooldown ends with another probe chance.
        assert!(b.allow_at(probe_at + Duration::from_millis(210), &cfg));
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let b = Breaker::default();
        let cfg = cfg();
        let t0 = Instant::now();
        for i in 0..4u64 {
            b.record_failure_at(t0 + Duration::from_millis(i), &cfg);
        }
        let probe_at = t0 + Duration::from_millis(110);
        assert!(b.allow_at(probe_at, &cfg), "first caller becomes the probe");
        // While the probe is in flight every other request keeps
        // short-circuiting — the engine gets one probe, not a burst.
        assert!(!b.allow_at(probe_at, &cfg), "concurrent caller blocked");
        assert!(!b.allow_at(probe_at + Duration::from_millis(50), &cfg));
        // Only the probe's own outcome closes the breaker.
        b.record_success_at(probe_at + Duration::from_millis(60), &cfg);
        assert!(b.allow_at(probe_at + Duration::from_millis(61), &cfg));
    }

    #[test]
    fn lost_probe_expires_and_frees_the_slot() {
        let b = Breaker::default();
        let cfg = cfg();
        let t0 = Instant::now();
        for i in 0..4u64 {
            b.record_failure_at(t0 + Duration::from_millis(i), &cfg);
        }
        let probe_at = t0 + Duration::from_millis(110);
        assert!(b.allow_at(probe_at, &cfg));
        // The probe's outcome is never recorded (e.g. its job was
        // dropped on a queue deadline). The breaker must not wedge:
        // after one cooldown the slot is released to a fresh probe.
        assert!(!b.allow_at(probe_at + Duration::from_millis(50), &cfg));
        assert!(
            b.allow_at(probe_at + Duration::from_millis(210), &cfg),
            "expired probe releases the slot"
        );
        // And again: exactly one at a time.
        assert!(!b.allow_at(probe_at + Duration::from_millis(211), &cfg));
    }
}
