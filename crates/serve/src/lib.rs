#![warn(missing_docs)]

//! # covidkg-serve
//!
//! Concurrent query-serving frontend for the COVIDKG reproduction — the
//! layer that turns the single-threaded `CovidKg::search` API into the
//! "Web-scale … interrogated" serving story of the paper's deployment
//! (§2: the site serves its three search engines to concurrent users
//! from one long-lived sharded store).
//!
//! Architecture (std-only, no external dependencies):
//!
//! * [`Server`] — a worker thread pool draining a **bounded request
//!   queue**. Admission control is explicit: a full queue rejects with
//!   [`ServeError::Overloaded`] instead of queueing unboundedly, and
//!   every request carries a deadline after which the caller gets
//!   [`ServeError::DeadlineExceeded`] instead of waiting forever.
//! * [`cache::QueryCache`] — a sharded LRU over whole result pages keyed
//!   by `(engine, normalized query, page)` ([`covidkg_search::cache_key`]),
//!   invalidated by data generation: [`Server::ingest`] bumps the
//!   generation, and a cached page whose tag no longer matches is never
//!   served (see `server.rs` for the stale-freedom argument).
//! * [`metrics`] — per-engine request counts, cache hit/miss, queue
//!   depth and a log-bucketed latency histogram, snapshotted into
//!   [`ServeStats`] (p50/p95/p99).
//! * [`loadgen`] — closed-loop and open-loop (fixed arrival rate,
//!   coordinated-omission-aware) load generators (N client threads × M
//!   queries from `covidkg-corpus`) with direct-search spot checks,
//!   driving the `covidkg serve-bench` CLI command.

pub mod cache;
pub mod loadgen;
pub mod metrics;
pub mod server;

pub use cache::{CachedValue, CacheStats, QueryCache};
pub use loadgen::{LoadGenConfig, LoadGenReport, OpenLoopConfig, OpenLoopReport};
pub use metrics::{DenseKind, EngineKind, LatencyHistogram, ServeStats};
pub use server::{InjectedFaults, KgResponse, ServeConfig, ServeError, ServeResponse, Server};
