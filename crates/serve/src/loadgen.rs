//! Closed-loop load generator: N client threads × M queries against a
//! [`Server`], with per-response correctness spot checks.
//!
//! Closed-loop means each client issues its next request only after the
//! previous one resolved — throughput self-regulates to the server's
//! capacity instead of piling up unbounded, and `Overloaded` rejections
//! are retried after a short backoff (bounded, so a stuck server cannot
//! hang the run).

use crate::server::{ServeError, Server};
use covidkg_corpus::query_workload;
use covidkg_search::SearchMode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Queries each client issues.
    pub queries_per_client: usize,
    /// Spot-check every n-th successful response against an uncached
    /// direct search (0 disables verification).
    pub verify_every: usize,
    /// Backoff between retries after an `Overloaded` rejection.
    pub backoff: Duration,
    /// Retries before an overloaded request is abandoned.
    pub max_retries: usize,
}

impl Default for LoadGenConfig {
    fn default() -> LoadGenConfig {
        LoadGenConfig {
            clients: 8,
            queries_per_client: 50,
            verify_every: 8,
            backoff: Duration::from_micros(200),
            max_retries: 10_000,
        }
    }
}

/// Aggregated outcome of a load-generator run.
#[derive(Debug, Clone, Default)]
pub struct LoadGenReport {
    /// Requests that returned a page.
    pub ok: u64,
    /// Of `ok`, answered from the cache.
    pub cached: u64,
    /// `Overloaded` rejections observed (including retried ones).
    pub overloaded: u64,
    /// Requests that hit their deadline.
    pub deadline_exceeded: u64,
    /// Requests answered degraded with a stale cached page (counted in
    /// `ok` too; excluded from spot checks, which compare against the
    /// *current* ground truth).
    pub stale_served: u64,
    /// Requests that failed with the typed `Degraded` error (engine
    /// unhealthy, nothing cached to stand in).
    pub degraded: u64,
    /// Requests abandoned after `max_retries` rejections.
    pub abandoned: u64,
    /// Responses spot-checked against a direct search.
    pub verified: u64,
    /// Spot checks that disagreed with the direct search (must be 0).
    pub mismatches: u64,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
}

impl LoadGenReport {
    /// Completed requests per second over the run.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ok as f64 / secs
        }
    }

    /// Human-readable one-paragraph summary.
    pub fn render(&self) -> String {
        format!(
            "loadgen: {} ok ({} cached, {} stale), {} overloaded, {} deadline-exceeded, \
             {} degraded, {} abandoned, {}/{} spot checks ok, {:.2} req/s over {:.2} s\n",
            self.ok,
            self.cached,
            self.stale_served,
            self.overloaded,
            self.deadline_exceeded,
            self.degraded,
            self.abandoned,
            self.verified - self.mismatches,
            self.verified,
            self.throughput(),
            self.wall.as_secs_f64(),
        )
    }
}

/// The search mode a client uses for query `i` of its stream: mostly the
/// all-fields engine, every 4th query the tables engine, every 7th the
/// scoped engine — so all three engines see traffic.
fn mode_for(i: usize, query: String) -> SearchMode {
    if i % 7 == 3 {
        SearchMode::TitleAbstractCaption {
            title: query,
            abstract_q: String::new(),
            caption: String::new(),
        }
    } else if i % 4 == 1 {
        SearchMode::Tables(query)
    } else {
        SearchMode::AllFields(query)
    }
}

/// Run the closed loop and aggregate per-client tallies.
pub fn run(server: &Server, config: &LoadGenConfig) -> LoadGenReport {
    let ok = AtomicU64::new(0);
    let cached = AtomicU64::new(0);
    let overloaded = AtomicU64::new(0);
    let deadline_exceeded = AtomicU64::new(0);
    let stale_served = AtomicU64::new(0);
    let degraded = AtomicU64::new(0);
    let abandoned = AtomicU64::new(0);
    let verified = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..config.clients {
            #[allow(clippy::type_complexity)]
            let (ok, cached, overloaded, deadline_exceeded, stale_served, degraded, abandoned, verified, mismatches) = (
                &ok,
                &cached,
                &overloaded,
                &deadline_exceeded,
                &stale_served,
                &degraded,
                &abandoned,
                &verified,
                &mismatches,
            );
            scope.spawn(move || {
                let queries = query_workload(config.queries_per_client, client as u64);
                for (i, query) in queries.into_iter().enumerate() {
                    let mode = mode_for(i, query);
                    let page = i % 2; // exercise pagination in the key
                    let mut attempts = 0;
                    loop {
                        match server.search(&mode, page) {
                            Ok(resp) => {
                                ok.fetch_add(1, Ordering::Relaxed);
                                if resp.cached {
                                    cached.fetch_add(1, Ordering::Relaxed);
                                }
                                if resp.stale {
                                    stale_served.fetch_add(1, Ordering::Relaxed);
                                }
                                // Stale (degraded) pages may legitimately
                                // predate the current ground truth.
                                if !resp.stale
                                    && config.verify_every != 0
                                    && i % config.verify_every == 0
                                {
                                    verified.fetch_add(1, Ordering::Relaxed);
                                    let direct = server.search_direct(&mode, page);
                                    let same_ids = direct.total == resp.page.total
                                        && direct
                                            .results
                                            .iter()
                                            .zip(&resp.page.results)
                                            .all(|(a, b)| a.id == b.id);
                                    if !same_ids {
                                        mismatches.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                break;
                            }
                            Err(ServeError::Overloaded) => {
                                overloaded.fetch_add(1, Ordering::Relaxed);
                                attempts += 1;
                                if attempts > config.max_retries {
                                    abandoned.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                std::thread::sleep(config.backoff);
                            }
                            Err(ServeError::DeadlineExceeded) => {
                                deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(ServeError::Degraded) => {
                                degraded.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(ServeError::Closed) => {
                                abandoned.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }
            });
        }
    });

    LoadGenReport {
        ok: ok.into_inner(),
        cached: cached.into_inner(),
        overloaded: overloaded.into_inner(),
        deadline_exceeded: deadline_exceeded.into_inner(),
        stale_served: stale_served.into_inner(),
        degraded: degraded.into_inner(),
        abandoned: abandoned.into_inner(),
        verified: verified.into_inner(),
        mismatches: mismatches.into_inner(),
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_math() {
        let r = LoadGenReport {
            ok: 100,
            cached: 40,
            wall: Duration::from_secs(2),
            ..LoadGenReport::default()
        };
        assert!((r.throughput() - 50.0).abs() < 1e-9);
        assert!(r.render().contains("100 ok (40 cached, 0 stale)"));
        let empty = LoadGenReport::default();
        assert_eq!(empty.throughput(), 0.0);
    }

    #[test]
    fn mode_rotation_covers_all_engines() {
        let modes: Vec<SearchMode> = (0..28).map(|i| mode_for(i, "q".into())).collect();
        assert!(modes.iter().any(|m| matches!(m, SearchMode::AllFields(_))));
        assert!(modes.iter().any(|m| matches!(m, SearchMode::Tables(_))));
        assert!(modes
            .iter()
            .any(|m| matches!(m, SearchMode::TitleAbstractCaption { .. })));
    }
}
