//! Load generators: closed-loop and open-loop drivers for a [`Server`].
//!
//! Closed-loop means each client issues its next request only after the
//! previous one resolved — throughput self-regulates to the server's
//! capacity instead of piling up unbounded, and `Overloaded` rejections
//! are retried after a short backoff (bounded, so a stuck server cannot
//! hang the run). Closed loops measure capacity, but they *hide* queueing
//! delay: a slow server simply receives requests more slowly.
//!
//! The open loop instead fires requests at a **fixed offered rate**
//! regardless of how fast responses come back, and measures each latency
//! from the request's *scheduled arrival time* — so time spent queued
//! behind a saturated server counts against the percentiles
//! (coordinated-omission-aware). Driving the same server at offered rates
//! below, at, and above capacity shows where goodput flattens and the
//! tail explodes.

use crate::metrics::LatencyHistogram;
use crate::server::{ServeError, Server};
use covidkg_corpus::query_workload;
use covidkg_search::SearchMode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Queries each client issues.
    pub queries_per_client: usize,
    /// Spot-check every n-th successful response against an uncached
    /// direct search (0 disables verification).
    pub verify_every: usize,
    /// Backoff between retries after an `Overloaded` rejection.
    pub backoff: Duration,
    /// Retries before an overloaded request is abandoned.
    pub max_retries: usize,
}

impl Default for LoadGenConfig {
    fn default() -> LoadGenConfig {
        LoadGenConfig {
            clients: 8,
            queries_per_client: 50,
            verify_every: 8,
            backoff: Duration::from_micros(200),
            max_retries: 10_000,
        }
    }
}

/// Aggregated outcome of a load-generator run.
#[derive(Debug, Clone, Default)]
pub struct LoadGenReport {
    /// Requests that returned a page.
    pub ok: u64,
    /// Of `ok`, answered from the cache.
    pub cached: u64,
    /// `Overloaded` rejections observed (including retried ones).
    pub overloaded: u64,
    /// Requests that hit their deadline.
    pub deadline_exceeded: u64,
    /// Requests answered degraded with a stale cached page (counted in
    /// `ok` too; excluded from spot checks, which compare against the
    /// *current* ground truth).
    pub stale_served: u64,
    /// Requests that failed with the typed `Degraded` error (engine
    /// unhealthy, nothing cached to stand in).
    pub degraded: u64,
    /// Requests abandoned after `max_retries` rejections.
    pub abandoned: u64,
    /// Responses spot-checked against a direct search.
    pub verified: u64,
    /// Spot checks that disagreed with the direct search (must be 0).
    pub mismatches: u64,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
}

impl LoadGenReport {
    /// Completed requests per second over the run.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ok as f64 / secs
        }
    }

    /// Human-readable one-paragraph summary.
    pub fn render(&self) -> String {
        format!(
            "loadgen: {} ok ({} cached, {} stale), {} overloaded, {} deadline-exceeded, \
             {} degraded, {} abandoned, {}/{} spot checks ok, {:.2} req/s over {:.2} s\n",
            self.ok,
            self.cached,
            self.stale_served,
            self.overloaded,
            self.deadline_exceeded,
            self.degraded,
            self.abandoned,
            self.verified - self.mismatches,
            self.verified,
            self.throughput(),
            self.wall.as_secs_f64(),
        )
    }
}

/// The search mode a client uses for query `i` of its stream: mostly the
/// all-fields engine, every 4th query the tables engine, every 7th the
/// scoped engine — so all three engines see traffic.
fn mode_for(i: usize, query: String) -> SearchMode {
    if i % 7 == 3 {
        SearchMode::TitleAbstractCaption {
            title: query,
            abstract_q: String::new(),
            caption: String::new(),
        }
    } else if i % 4 == 1 {
        SearchMode::Tables(query)
    } else {
        SearchMode::AllFields(query)
    }
}

/// Run the closed loop and aggregate per-client tallies.
pub fn run(server: &Server, config: &LoadGenConfig) -> LoadGenReport {
    let ok = AtomicU64::new(0);
    let cached = AtomicU64::new(0);
    let overloaded = AtomicU64::new(0);
    let deadline_exceeded = AtomicU64::new(0);
    let stale_served = AtomicU64::new(0);
    let degraded = AtomicU64::new(0);
    let abandoned = AtomicU64::new(0);
    let verified = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..config.clients {
            #[allow(clippy::type_complexity)]
            let (ok, cached, overloaded, deadline_exceeded, stale_served, degraded, abandoned, verified, mismatches) = (
                &ok,
                &cached,
                &overloaded,
                &deadline_exceeded,
                &stale_served,
                &degraded,
                &abandoned,
                &verified,
                &mismatches,
            );
            scope.spawn(move || {
                let queries = query_workload(config.queries_per_client, client as u64);
                for (i, query) in queries.into_iter().enumerate() {
                    let mode = mode_for(i, query);
                    let page = i % 2; // exercise pagination in the key
                    let mut attempts = 0;
                    loop {
                        match server.search(&mode, page) {
                            Ok(resp) => {
                                ok.fetch_add(1, Ordering::Relaxed);
                                if resp.cached {
                                    cached.fetch_add(1, Ordering::Relaxed);
                                }
                                if resp.stale {
                                    stale_served.fetch_add(1, Ordering::Relaxed);
                                }
                                // Stale (degraded) pages may legitimately
                                // predate the current ground truth.
                                if !resp.stale
                                    && config.verify_every != 0
                                    && i % config.verify_every == 0
                                {
                                    verified.fetch_add(1, Ordering::Relaxed);
                                    let direct = server.search_direct(&mode, page);
                                    let same_ids = direct.total == resp.page.total
                                        && direct
                                            .results
                                            .iter()
                                            .zip(&resp.page.results)
                                            .all(|(a, b)| a.id == b.id);
                                    if !same_ids {
                                        mismatches.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                break;
                            }
                            Err(ServeError::Overloaded) => {
                                overloaded.fetch_add(1, Ordering::Relaxed);
                                attempts += 1;
                                if attempts > config.max_retries {
                                    abandoned.fetch_add(1, Ordering::Relaxed);
                                    break;
                                }
                                std::thread::sleep(config.backoff);
                            }
                            Err(ServeError::DeadlineExceeded) => {
                                deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(ServeError::Degraded) => {
                                degraded.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(ServeError::Closed) => {
                                abandoned.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }
            });
        }
    });

    LoadGenReport {
        ok: ok.into_inner(),
        cached: cached.into_inner(),
        overloaded: overloaded.into_inner(),
        deadline_exceeded: deadline_exceeded.into_inner(),
        stale_served: stale_served.into_inner(),
        degraded: degraded.into_inner(),
        abandoned: abandoned.into_inner(),
        verified: verified.into_inner(),
        mismatches: mismatches.into_inner(),
        wall: start.elapsed(),
    }
}

/// Open-loop (fixed arrival rate) run configuration.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Offered arrival rate, requests per second.
    pub rate: f64,
    /// Run length; `ceil(rate × duration)` arrivals are scheduled.
    pub duration: Duration,
    /// Dispatcher threads; arrival `i` is fired by dispatcher
    /// `i mod dispatchers`, so a single slow response only delays that
    /// dispatcher's stripe of the schedule.
    pub dispatchers: usize,
}

impl Default for OpenLoopConfig {
    fn default() -> OpenLoopConfig {
        OpenLoopConfig {
            rate: 200.0,
            duration: Duration::from_secs(2),
            dispatchers: 4,
        }
    }
}

/// Outcome of one open-loop run at one offered rate.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// The offered rate driven, requests per second.
    pub offered: f64,
    /// Arrivals actually dispatched.
    pub sent: u64,
    /// Requests that returned a page.
    pub ok: u64,
    /// `Overloaded` rejections (not retried — the schedule moves on).
    pub overloaded: u64,
    /// Requests that hit their deadline.
    pub deadline_exceeded: u64,
    /// Requests failed with `Degraded` or `Closed`.
    pub degraded: u64,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Median latency of successful requests, measured from the
    /// *scheduled* arrival (includes dispatcher queueing delay).
    pub p50: Option<Duration>,
    /// 99th-percentile latency, same clock.
    pub p99: Option<Duration>,
}

impl OpenLoopReport {
    /// Successful responses per second of wall time — the goodput the
    /// offered rate actually bought.
    pub fn goodput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ok as f64 / secs
        }
    }

    /// One-line summary for rate-sweep tables.
    pub fn render(&self) -> String {
        fn dur(d: Option<Duration>) -> String {
            match d {
                None => "-".into(),
                Some(d) if d.as_secs_f64() >= 1.0 => format!("{:.2} s", d.as_secs_f64()),
                Some(d) if d.as_micros() >= 1000 => format!("{:.2} ms", d.as_secs_f64() * 1e3),
                Some(d) => format!("{} µs", d.as_micros()),
            }
        }
        format!(
            "offered {:7.1} req/s → goodput {:7.1} req/s  ({} ok / {} sent, \
             {} overloaded, {} deadline, {} degraded)  p50 {}  p99 {}",
            self.offered,
            self.goodput(),
            self.ok,
            self.sent,
            self.overloaded,
            self.deadline_exceeded,
            self.degraded,
            dur(self.p50),
            dur(self.p99),
        )
    }
}

/// Drive the server at `config.rate` requests/sec for `config.duration`.
///
/// Arrival `i` is scheduled at `start + i/rate`; its dispatcher sleeps
/// until then, fires the request synchronously, and charges the response
/// latency from the *scheduled* instant — a request that waited behind a
/// saturated dispatcher pays its queueing delay in the histogram instead
/// of silently sliding the schedule (coordinated omission).
pub fn run_open_loop(server: &Server, config: &OpenLoopConfig) -> OpenLoopReport {
    let rate = config.rate.max(1e-3);
    let dispatchers = config.dispatchers.max(1);
    let arrivals = ((rate * config.duration.as_secs_f64()).ceil() as u64).max(1);

    let sent = AtomicU64::new(0);
    let ok = AtomicU64::new(0);
    let overloaded = AtomicU64::new(0);
    let deadline_exceeded = AtomicU64::new(0);
    let degraded = AtomicU64::new(0);
    let latency = LatencyHistogram::default();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for d in 0..dispatchers {
            let (sent, ok, overloaded, deadline_exceeded, degraded, latency) =
                (&sent, &ok, &overloaded, &deadline_exceeded, &degraded, &latency);
            scope.spawn(move || {
                // Each dispatcher owns the arrivals i ≡ d (mod dispatchers)
                // and replays a deterministic query stream seeded by d.
                let queries = query_workload(
                    (arrivals as usize).div_ceil(dispatchers),
                    d as u64,
                );
                for (j, i) in (d as u64..arrivals).step_by(dispatchers).enumerate() {
                    let scheduled_offset = Duration::from_secs_f64(i as f64 / rate);
                    let scheduled = start + scheduled_offset;
                    if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let query = queries[j % queries.len()].clone();
                    let mode = mode_for(i as usize, query);
                    sent.fetch_add(1, Ordering::Relaxed);
                    match server.search(&mode, i as usize % 2) {
                        Ok(_) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            latency.record(scheduled.elapsed());
                        }
                        Err(ServeError::Overloaded) => {
                            overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::DeadlineExceeded) => {
                            deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::Degraded) | Err(ServeError::Closed) => {
                            degraded.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    OpenLoopReport {
        offered: rate,
        sent: sent.into_inner(),
        ok: ok.into_inner(),
        overloaded: overloaded.into_inner(),
        deadline_exceeded: deadline_exceeded.into_inner(),
        degraded: degraded.into_inner(),
        wall: start.elapsed(),
        p50: latency.quantile(0.50),
        p99: latency.quantile(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_math() {
        let r = LoadGenReport {
            ok: 100,
            cached: 40,
            wall: Duration::from_secs(2),
            ..LoadGenReport::default()
        };
        assert!((r.throughput() - 50.0).abs() < 1e-9);
        assert!(r.render().contains("100 ok (40 cached, 0 stale)"));
        let empty = LoadGenReport::default();
        assert_eq!(empty.throughput(), 0.0);
    }

    #[test]
    fn open_loop_report_math() {
        let r = OpenLoopReport {
            offered: 100.0,
            sent: 200,
            ok: 150,
            overloaded: 40,
            deadline_exceeded: 5,
            degraded: 5,
            wall: Duration::from_secs(2),
            p50: Some(Duration::from_micros(800)),
            p99: Some(Duration::from_millis(12)),
        };
        assert!((r.goodput() - 75.0).abs() < 1e-9);
        let line = r.render();
        assert!(line.contains("150 ok / 200 sent"), "{line}");
        assert!(line.contains("40 overloaded"), "{line}");
    }

    #[test]
    fn mode_rotation_covers_all_engines() {
        let modes: Vec<SearchMode> = (0..28).map(|i| mode_for(i, "q".into())).collect();
        assert!(modes.iter().any(|m| matches!(m, SearchMode::AllFields(_))));
        assert!(modes.iter().any(|m| matches!(m, SearchMode::Tables(_))));
        assert!(modes
            .iter()
            .any(|m| matches!(m, SearchMode::TitleAbstractCaption { .. })));
    }
}
