//! Positional features (§3.5) and metadata orientation (§3.3).
//!
//! "The feature vector consists of 7 features {f1, …, f7} where f1 is a
//! data or metadata row with valid numerical substitutions …, f2 is the
//! number of cells in the table row, f3 is a binary value conforming if
//! the above row exists …, f4 … the row below exists …, f5 equals the
//! total number of cells in the row above, f6 … in the below row, f7 is a
//! boolean label indicating if it is a metadata row (NULL for the training
//! instances). {f3, …, f7} … are called *positional* features."
//!
//! §3.3 additionally distinguishes horizontal metadata (header rows on
//! top) from vertical metadata (header column at the left);
//! [`detect_orientation`] provides that signal.

use crate::preprocess::{preprocess_row, Preprocessor};

/// The §3.5 feature vector for one table row.
#[derive(Debug, Clone, PartialEq)]
pub struct RowFeatures {
    /// f1 — the row text after numeric substitution.
    pub processed: String,
    /// f2 — number of cells in this row.
    pub cells: usize,
    /// f3 — a row exists above this one.
    pub has_above: bool,
    /// f4 — a row exists below this one.
    pub has_below: bool,
    /// f5 — cell count of the row above (0 when f3 is false).
    pub above_cells: usize,
    /// f6 — cell count of the row below (0 when f4 is false).
    pub below_cells: usize,
    /// f7 — metadata label; `None` for unlabeled (inference) instances.
    pub label: Option<bool>,
}

impl RowFeatures {
    /// The numeric part of the vector `{f2…f6}` as f32s, in paper order,
    /// ready to concatenate with the bag-of-words encoding of `f1`.
    pub fn positional(&self) -> [f32; 5] {
        [
            self.cells as f32,
            f32::from(u8::from(self.has_above)),
            f32::from(u8::from(self.has_below)),
            self.above_cells as f32,
            self.below_cells as f32,
        ]
    }
}

/// Compute [`RowFeatures`] for every row of a table (rows as cell lists).
/// `labels`, when provided, must be one bool per row (true = metadata).
pub fn row_features(
    pre: &Preprocessor,
    rows: &[Vec<String>],
    labels: Option<&[bool]>,
) -> Vec<RowFeatures> {
    if let Some(ls) = labels {
        assert_eq!(
            ls.len(),
            rows.len(),
            "labels must align with rows"
        );
    }
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let above = i.checked_sub(1).map(|j| rows[j].len());
            let below = rows.get(i + 1).map(Vec::len);
            RowFeatures {
                processed: preprocess_row(pre, row),
                cells: row.len(),
                has_above: above.is_some(),
                has_below: below.is_some(),
                above_cells: above.unwrap_or(0),
                below_cells: below.unwrap_or(0),
                label: labels.map(|ls| ls[i]),
            }
        })
        .collect()
}

/// Which axis the table's metadata lies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Header cells form the top row(s); attributes run left→right.
    Horizontal,
    /// Header cells form the left column(s); attributes run top→bottom.
    Vertical,
}

/// Heuristic orientation detector.
///
/// Data cells are type-homogeneous along the data axis, and the header
/// lane *breaks* the other axis's homogeneity: in a horizontal table each
/// column is consistent over all rows except the header row on top, so
/// column consistency measured over the whole table stays high while row
/// consistency is diluted by the textual name column — and symmetrically
/// for vertical tables. We score per-lane type consistency
/// (`max(p_numeric, 1 − p_numeric)`) on both axes over the full grid;
/// the more consistent axis is the data axis. Ties (e.g. all-text
/// tables) default to horizontal, which dominates CORD-19.
pub fn detect_orientation(rows: &[Vec<String>]) -> Orientation {
    let height = rows.len();
    let width = rows.iter().map(Vec::len).max().unwrap_or(0);
    if height < 2 || width < 2 {
        return Orientation::Horizontal;
    }
    // A cell reads as numeric when it *leads* with a number-ish glyph and
    // contains a digit — "45 mg", "<0.05", "12.5%" are numeric; "Arm 1"
    // and "Age, median" are labels that merely mention a digit.
    let numeric = |cell: &str| -> f64 {
        let t = cell.trim();
        let leads_numeric = t
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '<' | '>' | '-' | '+' | '.' | '±' | '$'));
        f64::from(u8::from(leads_numeric && t.chars().any(|c| c.is_ascii_digit())))
    };
    let consistency = |fracs: &[f64]| -> f64 {
        if fracs.is_empty() {
            return 0.0;
        }
        fracs.iter().map(|&p| p.max(1.0 - p)).sum::<f64>() / fracs.len() as f64
    };
    let row_fracs: Vec<f64> = rows
        .iter()
        .filter(|r| !r.is_empty())
        .map(|r| r.iter().map(|c| numeric(c)).sum::<f64>() / r.len() as f64)
        .collect();
    let col_fracs: Vec<f64> = (0..width)
        .map(|j| {
            let mut n = 0.0;
            let mut cnt = 0usize;
            for r in rows {
                if let Some(c) = r.get(j) {
                    n += numeric(c);
                    cnt += 1;
                }
            }
            n / cnt.max(1) as f64
        })
        .collect();
    if consistency(&row_fracs) > consistency(&col_fracs) {
        Orientation::Vertical
    } else {
        Orientation::Horizontal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(data: &[&[&str]]) -> Vec<Vec<String>> {
        data.iter()
            .map(|r| r.iter().map(|c| c.to_string()).collect())
            .collect()
    }

    #[test]
    fn feature_vector_matches_paper_definition() {
        let pre = Preprocessor::new();
        let table = rows(&[
            &["Vaccine", "Dose", "Efficacy"],
            &["Pfizer", "30 mg", "95%"],
            &["Moderna", "100 mg", "94%"],
        ]);
        let feats = row_features(&pre, &table, Some(&[true, false, false]));
        assert_eq!(feats.len(), 3);

        let f0 = &feats[0];
        assert_eq!(f0.cells, 3);
        assert!(!f0.has_above);
        assert!(f0.has_below);
        assert_eq!(f0.above_cells, 0);
        assert_eq!(f0.below_cells, 3);
        assert_eq!(f0.label, Some(true));
        assert_eq!(f0.processed, "Vaccine Dose Efficacy");

        let f1 = &feats[1];
        assert!(f1.has_above && f1.has_below);
        assert_eq!(f1.processed, "Pfizer MG INT PERCENT");
        assert_eq!(f1.label, Some(false));

        let f2 = &feats[2];
        assert!(!f2.has_below);
        assert_eq!(f2.below_cells, 0);
    }

    #[test]
    fn positional_array_order() {
        let f = RowFeatures {
            processed: String::new(),
            cells: 4,
            has_above: true,
            has_below: false,
            above_cells: 3,
            below_cells: 0,
            label: None,
        };
        assert_eq!(f.positional(), [4.0, 1.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn unlabeled_rows_have_null_f7() {
        let pre = Preprocessor::new();
        let feats = row_features(&pre, &rows(&[&["a"]]), None);
        assert_eq!(feats[0].label, None);
    }

    #[test]
    #[should_panic(expected = "labels must align")]
    fn misaligned_labels_panic() {
        let pre = Preprocessor::new();
        row_features(&pre, &rows(&[&["a"], &["b"]]), Some(&[true]));
    }

    #[test]
    fn horizontal_table_detected() {
        let t = rows(&[
            &["Vaccine", "Doses", "Efficacy"],
            &["Pfizer", "2", "95"],
            &["Moderna", "2", "94"],
            &["J&J", "1", "72"],
        ]);
        assert_eq!(detect_orientation(&t), Orientation::Horizontal);
    }

    #[test]
    fn vertical_table_detected() {
        let t = rows(&[
            &["Vaccine", "Pfizer", "Moderna", "AstraZeneca"],
            &["Doses", "2", "2", "2"],
            &["Efficacy", "95", "94", "67"],
        ]);
        assert_eq!(detect_orientation(&t), Orientation::Vertical);
    }

    #[test]
    fn degenerate_tables_default_horizontal() {
        assert_eq!(detect_orientation(&rows(&[&["a"]])), Orientation::Horizontal);
        assert_eq!(detect_orientation(&[]), Orientation::Horizontal);
        assert_eq!(
            detect_orientation(&rows(&[&["a", "b", "c"]])),
            Orientation::Horizontal
        );
    }

    #[test]
    fn all_text_table_defaults_horizontal() {
        let t = rows(&[
            &["Symptom", "Severity"],
            &["Fever", "mild"],
            &["Cough", "moderate"],
        ]);
        assert_eq!(detect_orientation(&t), Orientation::Horizontal);
    }
}
