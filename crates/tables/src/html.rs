//! HTML table parser and post-processor (§3.1).
//!
//! CORD-19 ships table bodies as raw HTML fragments. This module extracts
//! every `<table>` from a fragment into a [`CleanTable`]: caption, header
//! rows (from `<thead>` / `<th>` cells) and data rows, with `colspan`
//! expansion, nested-markup stripping and entity decoding. The result
//! converts to the "semi-structured, clean JSON" format the paper stores
//! in MongoDB via [`CleanTable::to_json`].

use covidkg_json::{obj, Value};
use std::fmt;

/// A parsed table: caption plus a rectangular cell grid.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CleanTable {
    /// Caption text (from `<caption>`), empty if absent.
    pub caption: String,
    /// Rows; each row is a list of cell strings. Header rows come first.
    pub rows: Vec<Vec<String>>,
    /// Indices of rows whose cells were `<th>` or inside `<thead>` —
    /// ground-truth-ish hints that the classifier does NOT get to see
    /// (they exist so the corpus generator can label training data).
    pub header_rows: Vec<usize>,
}

impl CleanTable {
    /// Number of columns (widest row).
    pub fn width(&self) -> usize {
        self.rows.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Convert to the clean JSON document shape stored in the backend:
    /// `{caption, n_rows, n_cols, rows: [[…]]}`.
    pub fn to_json(&self) -> Value {
        obj! {
            "caption" => self.caption.clone(),
            "n_rows" => self.rows.len(),
            "n_cols" => self.width(),
            "rows" => Value::Array(
                self.rows
                    .iter()
                    .map(|r| Value::Array(r.iter().map(|c| Value::str(c.clone())).collect()))
                    .collect()
            ),
        }
    }

    /// Reconstruct from the JSON produced by [`CleanTable::to_json`]
    /// (header hints are not persisted).
    pub fn from_json(v: &Value) -> Option<CleanTable> {
        let caption = v.get("caption")?.as_str()?.to_string();
        let rows = v
            .get("rows")?
            .as_array()?
            .iter()
            .map(|r| {
                r.as_array()
                    .map(|cells| {
                        cells
                            .iter()
                            .map(|c| c.as_str().unwrap_or_default().to_string())
                            .collect()
                    })
                    .unwrap_or_default()
            })
            .collect();
        Some(CleanTable {
            caption,
            rows,
            header_rows: Vec::new(),
        })
    }
}

/// Error for fragments containing no parseable table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HtmlParseError {
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for HtmlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "html table parse error: {}", self.message)
    }
}

impl std::error::Error for HtmlParseError {}

/// Extract all tables from an HTML fragment. Unknown tags inside cells are
/// stripped; entities are decoded; whitespace is collapsed. Returns an
/// error only if the fragment contains `<table>` markup that never closes
/// a cell structure (wildly malformed input still yields best-effort rows).
pub fn parse_tables(fragment: &str) -> Result<Vec<CleanTable>, HtmlParseError> {
    let tokens = lex(fragment);
    let mut tables = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Tok::Open(name, _) = &tokens[i] {
            if name == "table" {
                let (table, next) = parse_one_table(&tokens, i + 1);
                tables.push(table);
                i = next;
                continue;
            }
        }
        i += 1;
    }
    if tables.is_empty() && fragment.contains("<table") {
        return Err(HtmlParseError {
            message: "fragment mentions <table but none parsed".into(),
        });
    }
    Ok(tables)
}

/// Lexer tokens.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// `<name attr…>`; attrs kept as a raw lowercase string.
    Open(String, String),
    /// `</name>`
    Close(String),
    /// Text run.
    Text(String),
}

fn lex(html: &str) -> Vec<Tok> {
    let bytes = html.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut text_start = 0;
    while i < bytes.len() {
        if bytes[i] == b'<' {
            if i > text_start {
                toks.push(Tok::Text(html[text_start..i].to_string()));
            }
            // Comment?
            if html[i..].starts_with("<!--") {
                match html[i + 4..].find("-->") {
                    Some(end) => {
                        i = i + 4 + end + 3;
                    }
                    None => {
                        i = bytes.len();
                    }
                }
                text_start = i;
                continue;
            }
            match html[i..].find('>') {
                Some(rel_end) => {
                    let inner = &html[i + 1..i + rel_end];
                    let inner = inner.trim().trim_end_matches('/').trim();
                    if let Some(name) = inner.strip_prefix('/') {
                        toks.push(Tok::Close(name.trim().to_ascii_lowercase()));
                    } else if !inner.is_empty() && !inner.starts_with('!') {
                        let (name, attrs) = match inner.split_once(char::is_whitespace) {
                            Some((n, a)) => (n, a),
                            None => (inner, ""),
                        };
                        toks.push(Tok::Open(
                            name.to_ascii_lowercase(),
                            attrs.to_ascii_lowercase(),
                        ));
                    }
                    i += rel_end + 1;
                    text_start = i;
                }
                None => {
                    // Unterminated tag: treat rest as text.
                    text_start = i;
                    break;
                }
            }
        } else {
            i += 1;
        }
    }
    if text_start < html.len() {
        toks.push(Tok::Text(html[text_start..].to_string()));
    }
    toks
}

/// A pending `rowspan` fill owed to later rows.
#[derive(Debug)]
struct RowspanFill {
    /// Column the cell occupied in its origin row.
    col: usize,
    /// Rows still owed a copy.
    remaining: usize,
    /// Cell text (patched when the origin cell closes).
    text: String,
    /// Index the origin row will get in `table.rows` — the fill must not
    /// apply to its own row.
    origin_row: usize,
}

/// An open cell being accumulated.
#[derive(Debug)]
struct OpenCell {
    text: String,
    colspan: usize,
    /// Index into the rowspan list to patch with the final text.
    rowspan_idx: Option<usize>,
}

/// Parse one table starting just after its `<table>` token. Returns the
/// table and the token index after `</table>` (or end of input).
fn parse_one_table(toks: &[Tok], mut i: usize) -> (CleanTable, usize) {
    let mut table = CleanTable::default();
    let mut in_thead = false;
    let mut cur_row: Option<Vec<String>> = None;
    let mut cur_row_is_header = false;
    let mut cur_cell: Option<OpenCell> = None;
    let mut rowspans: Vec<RowspanFill> = Vec::new();
    let mut caption_depth = 0usize;

    fn flush_cell(
        cur_cell: &mut Option<OpenCell>,
        cur_row: &mut Option<Vec<String>>,
        rowspans: &mut [RowspanFill],
    ) {
        if let Some(cell) = cur_cell.take() {
            let clean = clean_text(&cell.text);
            if let Some(idx) = cell.rowspan_idx {
                rowspans[idx].text = clean.clone();
            }
            let row = cur_row.get_or_insert_with(Vec::new);
            for _ in 0..cell.colspan.max(1) {
                row.push(clean.clone());
            }
        }
    }

    fn flush_row(
        table: &mut CleanTable,
        cur_cell: &mut Option<OpenCell>,
        cur_row: &mut Option<Vec<String>>,
        cur_row_is_header: &mut bool,
        in_thead: bool,
        rowspans: &mut Vec<RowspanFill>,
    ) {
        flush_cell(cur_cell, cur_row, rowspans);
        if let Some(mut row) = cur_row.take() {
            let row_idx = table.rows.len();
            rowspans.sort_by_key(|f| f.col);
            for fill in rowspans.iter_mut() {
                if fill.remaining > 0 && fill.origin_row < row_idx {
                    let at = fill.col.min(row.len());
                    row.insert(at, fill.text.clone());
                    fill.remaining -= 1;
                }
            }
            rowspans.retain(|f| f.remaining > 0);
            if *cur_row_is_header || in_thead {
                table.header_rows.push(row_idx);
            }
            table.rows.push(row);
        }
        *cur_row_is_header = false;
    }

    while i < toks.len() {
        match &toks[i] {
            Tok::Open(name, attrs) => match name.as_str() {
                "caption" => caption_depth += 1,
                "thead" => in_thead = true,
                "tbody" | "tfoot" => in_thead = false,
                "tr" => {
                    flush_row(
                        &mut table,
                        &mut cur_cell,
                        &mut cur_row,
                        &mut cur_row_is_header,
                        in_thead,
                        &mut rowspans,
                    );
                    cur_row = Some(Vec::new());
                }
                "td" | "th" => {
                    flush_cell(&mut cur_cell, &mut cur_row, &mut rowspans);
                    if cur_row.is_none() {
                        cur_row = Some(Vec::new());
                    }
                    if name == "th" {
                        cur_row_is_header = true;
                    }
                    let colspan = attr_usize(attrs, "colspan").unwrap_or(1);
                    let rowspan = attr_usize(attrs, "rowspan").unwrap_or(1);
                    let rowspan_idx = if rowspan > 1 {
                        rowspans.push(RowspanFill {
                            col: cur_row.as_ref().map_or(0, Vec::len),
                            remaining: rowspan - 1,
                            text: String::new(),
                            origin_row: table.rows.len(),
                        });
                        Some(rowspans.len() - 1)
                    } else {
                        None
                    };
                    cur_cell = Some(OpenCell {
                        text: String::new(),
                        colspan,
                        rowspan_idx,
                    });
                }
                "table" => {
                    // Nested table: parse and discard (rare in CORD-19; the
                    // outer cell keeps its own text only).
                    let (_inner, next) = parse_one_table(toks, i + 1);
                    i = next;
                    continue;
                }
                _ => {} // formatting tags inside cells are stripped
            },
            Tok::Close(name) => match name.as_str() {
                "caption" => caption_depth = caption_depth.saturating_sub(1),
                "thead" => in_thead = false,
                "tr" => flush_row(
                    &mut table,
                    &mut cur_cell,
                    &mut cur_row,
                    &mut cur_row_is_header,
                    in_thead,
                    &mut rowspans,
                ),
                "td" | "th" => flush_cell(&mut cur_cell, &mut cur_row, &mut rowspans),
                "table" => {
                    flush_row(
                        &mut table,
                        &mut cur_cell,
                        &mut cur_row,
                        &mut cur_row_is_header,
                        in_thead,
                        &mut rowspans,
                    );
                    table.caption = clean_text(&table.caption);
                    return (table, i + 1);
                }
                _ => {}
            },
            Tok::Text(text) => {
                if caption_depth > 0 {
                    table.caption.push_str(text);
                } else if let Some(cell) = &mut cur_cell {
                    cell.text.push_str(text);
                }
            }
        }
        i += 1;
    }
    flush_row(
        &mut table,
        &mut cur_cell,
        &mut cur_row,
        &mut cur_row_is_header,
        in_thead,
        &mut rowspans,
    );
    table.caption = clean_text(&table.caption);
    (table, i)
}

fn attr_usize(attrs: &str, key: &str) -> Option<usize> {
    let at = attrs.find(key)?;
    let rest = &attrs[at + key.len()..];
    let rest = rest.trim_start().strip_prefix('=')?.trim_start();
    let rest = rest.trim_start_matches(['"', '\'']);
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Decode entities and collapse whitespace.
fn clean_text(text: &str) -> String {
    let decoded = decode_entities(text);
    let mut out = String::with_capacity(decoded.len());
    let mut last_space = true;
    for c in decoded.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(c);
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

fn decode_entities(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let tail = &rest[amp..];
        let semi = tail.find(';').filter(|&s| s <= 10);
        match semi {
            Some(s) => {
                let entity = &tail[1..s];
                let decoded: Option<char> = match entity {
                    "amp" => Some('&'),
                    "lt" => Some('<'),
                    "gt" => Some('>'),
                    "quot" => Some('"'),
                    "apos" => Some('\''),
                    "nbsp" => Some(' '),
                    "ndash" => Some('–'),
                    "mdash" => Some('—'),
                    "plusmn" => Some('±'),
                    "deg" => Some('°'),
                    "micro" => Some('µ'),
                    "times" => Some('×'),
                    e if e.starts_with("#x") || e.starts_with("#X") => u32::from_str_radix(&e[2..], 16)
                        .ok()
                        .and_then(char::from_u32),
                    e if e.starts_with('#') => e[1..].parse::<u32>().ok().and_then(char::from_u32),
                    _ => None,
                };
                match decoded {
                    Some(c) => {
                        out.push(c);
                        rest = &tail[s + 1..];
                    }
                    None => {
                        out.push('&');
                        rest = &tail[1..];
                    }
                }
            }
            None => {
                out.push('&');
                rest = &tail[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_table() {
        let html = "<table><caption>Table 1: doses</caption>\
                    <tr><th>Vaccine</th><th>Dose</th></tr>\
                    <tr><td>Pfizer</td><td>30 µg</td></tr></table>";
        let t = &parse_tables(html).unwrap()[0];
        assert_eq!(t.caption, "Table 1: doses");
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0], ["Vaccine", "Dose"]);
        assert_eq!(t.rows[1], ["Pfizer", "30 µg"]);
        assert_eq!(t.header_rows, [0]);
    }

    #[test]
    fn thead_marks_header_rows() {
        let html = "<table><thead><tr><td>h1</td><td>h2</td></tr></thead>\
                    <tbody><tr><td>a</td><td>b</td></tr></tbody></table>";
        let t = &parse_tables(html).unwrap()[0];
        assert_eq!(t.header_rows, [0]);
        assert_eq!(t.rows[1], ["a", "b"]);
    }

    #[test]
    fn colspan_expands_cells() {
        let html = "<table><tr><td colspan=\"3\">span</td></tr>\
                    <tr><td>a</td><td>b</td><td>c</td></tr></table>";
        let t = &parse_tables(html).unwrap()[0];
        assert_eq!(t.rows[0], ["span", "span", "span"]);
        assert_eq!(t.width(), 3);
    }

    #[test]
    fn rowspan_fills_following_rows() {
        let html = "<table>\
                    <tr><td rowspan=2>v</td><td>x</td></tr>\
                    <tr><td>y</td></tr></table>";
        let t = &parse_tables(html).unwrap()[0];
        assert_eq!(t.rows[0], ["v", "x"]);
        assert_eq!(t.rows[1], ["v", "y"]);
    }

    #[test]
    fn nested_markup_is_stripped() {
        let html = "<table><tr><td><b>Fever</b> &amp; <i>chills</i></td></tr></table>";
        let t = &parse_tables(html).unwrap()[0];
        assert_eq!(t.rows[0], ["Fever & chills"]);
    }

    #[test]
    fn entities_decode() {
        assert_eq!(decode_entities("5&nbsp;&plusmn;&nbsp;2"), "5 ± 2");
        assert_eq!(decode_entities("&lt;0.05"), "<0.05");
        assert_eq!(decode_entities("&#37;"), "%");
        assert_eq!(decode_entities("&#x2264;"), "≤");
        assert_eq!(decode_entities("a&unknown;b"), "a&unknown;b");
        assert_eq!(decode_entities("AT&T"), "AT&T");
    }

    #[test]
    fn whitespace_collapses() {
        let html = "<table><tr><td>  multi\n  line\t text </td></tr></table>";
        let t = &parse_tables(html).unwrap()[0];
        assert_eq!(t.rows[0], ["multi line text"]);
    }

    #[test]
    fn multiple_tables_in_fragment() {
        let html = "<p>intro</p><table><tr><td>1</td></tr></table>\
                    <table><tr><td>2</td></tr></table>";
        let ts = parse_tables(html).unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].rows[0], ["1"]);
        assert_eq!(ts[1].rows[0], ["2"]);
    }

    #[test]
    fn fragment_without_tables_is_empty_ok() {
        assert!(parse_tables("<p>no tables here</p>").unwrap().is_empty());
    }

    #[test]
    fn missing_tr_close_tags_recover() {
        // Real-world sloppy HTML omits </tr>/</td>.
        let html = "<table><tr><td>a<td>b<tr><td>c<td>d</table>";
        let t = &parse_tables(html).unwrap()[0];
        assert_eq!(t.rows, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn comments_are_ignored() {
        let html = "<table><!-- hidden --><tr><td>x</td></tr></table>";
        let t = &parse_tables(html).unwrap()[0];
        assert_eq!(t.rows[0], ["x"]);
    }

    #[test]
    fn json_round_trip() {
        let html = "<table><caption>C</caption><tr><td>a</td><td>b</td></tr></table>";
        let t = &parse_tables(html).unwrap()[0];
        let j = t.to_json();
        let back = CleanTable::from_json(&j).unwrap();
        assert_eq!(back.caption, t.caption);
        assert_eq!(back.rows, t.rows);
        assert_eq!(j.path("n_cols").and_then(Value::as_i64), Some(2));
    }

    #[test]
    fn self_closing_and_attributes_survive() {
        let html = "<table class='x'><tr><td align=\"left\">v<br/>w</td></tr></table>";
        let t = &parse_tables(html).unwrap()[0];
        assert_eq!(t.rows[0], ["vw"]);
    }
}
