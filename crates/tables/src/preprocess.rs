//! Numeric pre-processing (§3.4).
//!
//! "To streamline the processing of numerical data handled by the model, we
//! have created several regular expressions that encode all numerical data
//! falling in similar forms under its relevant category." The substitutions
//! are applied **in order** — the paper stresses that "the order of these
//! expressions is important as 0 in 50 is not the same as 0.0":
//!
//! 1. dates written with month words → `DATE` (before bare numbers would
//!    swallow the day/year; `mm/dd/yy` is deliberately *not* handled,
//!    matching the paper);
//! 2. arithmetic ranges `5-10 mg` → `RANGE` (units survive for rule 8);
//! 3. zeros in decimal and integer form → `ZERO`;
//! 4. negative integers → `NEG` ("only takes negative numbers and not the
//!    words/ranges with - in them");
//! 5. numbers in (0, 1) → `SMALLPOS`;
//! 6. remaining numbers ≥ 1 → `FLOAT` (fractional) or `INT` (integral) —
//!    "these numbers have no limit and are not further binned";
//! 7. `%` → `PERCENT` (so `0.5%` → `SMALLPOS PERCENT`, `5%` →
//!    `INT PERCENT`; the paper's §3.4 prose swaps the two names in one
//!    sentence — we follow its own earlier definitions, see DESIGN.md);
//! 8. `<` → `LESS`, `>` → `GREATER`;
//! 9. quantities with the frequent units (time units, `ml`, `mg`, `kg`)
//!    → the unit's descriptive keyword (`TIME`/`ML`/`MG`/`KG`).

use covidkg_regex::Regex;

/// Compiled substitution pipeline. Construction compiles ~a dozen
/// patterns; reuse one instance across a corpus.
#[derive(Debug)]
pub struct Preprocessor {
    date: Regex,
    range: Regex,
    neg: Regex,
    number: Regex,
    percent: Regex,
    unit_time: Regex,
    unit_ml: Regex,
    unit_mg: Regex,
    unit_kg: Regex,
}

impl Default for Preprocessor {
    fn default() -> Self {
        Self::new()
    }
}

impl Preprocessor {
    /// Compile the substitution patterns.
    pub fn new() -> Self {
        let month = "(january|february|march|april|may|june|july|august|september|october|november|december|jan|feb|mar|apr|jun|jul|aug|sep|sept|oct|nov|dec)";
        Preprocessor {
            // "March 15, 2021", "15 March 2021", "March 2020".
            date: Regex::new_ci(&format!(
                r"(\d{{1,2}}\s+{month}\.?,?\s+\d{{2,4}})|({month}\.?\s+\d{{1,2}},?\s+\d{{2,4}})|({month}\.?,?\s+\d{{4}})"
            ))
            .expect("date pattern"),
            range: Regex::new(r"\d+(\.\d+)?\s?(-|–|—|to)\s?\d+(\.\d+)?").expect("range pattern"),
            neg: Regex::new(r"(^|[\s(\[=:,;])-\d+(\.\d+)?\b").expect("neg pattern"),
            number: Regex::new(r"\d+(\.\d+)?").expect("number pattern"),
            percent: Regex::new("%").expect("percent pattern"),
            unit_time: Regex::new_ci(
                r"\b(INT|FLOAT|RANGE|ZERO|SMALLPOS)\s?(seconds|second|secs|sec|s|minutes|minute|mins|min|hours|hour|hrs|hr|h|days|day|weeks|week|wks|wk|months|month|years|year|yrs|yr)\b",
            )
            .expect("time pattern"),
            unit_ml: Regex::new_ci(r"\b(INT|FLOAT|RANGE|ZERO|SMALLPOS)\s?(ml|milliliters|milliliter)\b")
                .expect("ml pattern"),
            unit_mg: Regex::new_ci(r"\b(INT|FLOAT|RANGE|ZERO|SMALLPOS)\s?(mg|milligrams|milligram|µg|mcg)\b")
                .expect("mg pattern"),
            unit_kg: Regex::new_ci(r"\b(INT|FLOAT|RANGE|ZERO|SMALLPOS)\s?(kg|kilograms|kilogram)\b")
                .expect("kg pattern"),
        }
    }

    /// Apply the full ordered substitution pipeline to one cell.
    pub fn process(&self, cell: &str) -> String {
        // 1. Dates first: "March 15, 2021" must not decay into INT INT.
        let s = self.date.replace_all(cell, "DATE");
        // 2. Ranges before single numbers: "5-10" is one RANGE, not NEG.
        let s = self.range.replace_all(&s, "RANGE");
        // 3. Negative integers; the leading context char is preserved.
        let s = self.neg.replace_all_with(&s, |m| {
            let keep: String = m.chars().take_while(|c| *c != '-').collect();
            format!("{keep}NEG")
        });
        // 4–6. Remaining decimal tokens classified atomically, implementing
        // the paper's ordered ZERO / SMALLPOS / FLOAT / INT rules ("0 in 50
        // is not the same as 0.0") without partial-token mangling:
        let s = self.number.replace_all_with(&s, |m| {
            let v: f64 = m.parse().unwrap_or(0.0);
            if v == 0.0 {
                "ZERO".into()
            } else if v < 1.0 {
                "SMALLPOS".into()
            } else if m.contains('.') {
                "FLOAT".into()
            } else {
                "INT".into()
            }
        });
        // 7. Percent signs.
        let s = self.percent.replace_all(&s, " PERCENT");
        // 8. Comparison symbols.
        let s = s.replace('<', " LESS ").replace('>', " GREATER ");
        // 9. Frequent units fold the preceding quantity into the unit keyword.
        let s = self.unit_ml.replace_all(&s, "ML");
        let s = self.unit_mg.replace_all(&s, "MG");
        let s = self.unit_kg.replace_all(&s, "KG");
        let s = self.unit_time.replace_all(&s, "TIME");
        collapse_ws(&s)
    }
}

fn collapse_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(c);
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Process a single cell with a fresh pipeline (convenience for tests and
/// one-off calls; hot paths should hold a [`Preprocessor`]).
pub fn preprocess_cell(cell: &str) -> String {
    Preprocessor::new().process(cell)
}

/// Process every cell of a row, joining with a single space — the tuple
/// form consumed as feature `f1` (§3.5) and by the BiGRU tokenizer.
pub fn preprocess_row(pre: &Preprocessor, row: &[String]) -> String {
    let mut out = String::new();
    for cell in row {
        let p = pre.process(cell);
        if !p.is_empty() {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> String {
        preprocess_cell(s)
    }

    #[test]
    fn zeros_in_both_forms() {
        assert_eq!(p("0"), "ZERO");
        assert_eq!(p("0.0"), "ZERO");
        assert_eq!(p("0.00"), "ZERO");
    }

    #[test]
    fn zero_inside_larger_number_is_untouched() {
        // The paper: "0 in 50 is not the same as 0.0".
        assert_eq!(p("50"), "INT");
        assert_eq!(p("105"), "INT");
    }

    #[test]
    fn ranges_with_units_keep_the_unit_for_later() {
        assert_eq!(p("5-10 mg"), "MG");
        assert_eq!(p("5-10 bpm"), "RANGE bpm");
        assert_eq!(p("1.5 - 2.5"), "RANGE");
        assert_eq!(p("10 to 20"), "RANGE");
    }

    #[test]
    fn negative_integers_only() {
        assert_eq!(p("-5"), "NEG");
        assert_eq!(p("temp -12.5"), "temp NEG");
        // Hyphenated words keep their hyphen.
        assert_eq!(p("covid-19"), "covid-INT");
        assert_eq!(p("follow-up"), "follow-up");
    }

    #[test]
    fn small_positvalues() {
        assert_eq!(p("0.5"), "SMALLPOS");
        assert_eq!(p("0.95"), "SMALLPOS");
    }

    #[test]
    fn float_and_int_split() {
        assert_eq!(p("3.75"), "FLOAT");
        assert_eq!(p("42"), "INT");
        assert_eq!(p("12345678901"), "INT"); // "no limit", not binned
    }

    #[test]
    fn percent_variants() {
        assert_eq!(p("5%"), "INT PERCENT");
        assert_eq!(p("0.5%"), "SMALLPOS PERCENT");
        assert_eq!(p("0%"), "ZERO PERCENT");
    }

    #[test]
    fn word_month_dates() {
        assert_eq!(p("March 15, 2021"), "DATE");
        assert_eq!(p("15 March 2021"), "DATE");
        assert_eq!(p("enrolled January 2020"), "enrolled DATE");
        // Slash dates are explicitly NOT handled (paper §3.4).
        assert_eq!(p("03/15/21"), "INT/INT/INT".to_string());
    }

    #[test]
    fn comparison_symbols() {
        assert_eq!(p("<0.05"), "LESS SMALLPOS");
        assert_eq!(p("p>0.5"), "p GREATER SMALLPOS");
    }

    #[test]
    fn unit_keywords() {
        assert_eq!(p("5 mg"), "MG");
        assert_eq!(p("2.5 ml"), "ML");
        assert_eq!(p("70 kg"), "KG");
        assert_eq!(p("30 min"), "TIME");
        assert_eq!(p("2 hours"), "TIME");
        assert_eq!(p("14 days"), "TIME");
    }

    #[test]
    fn mixed_realistic_cells() {
        assert_eq!(p("dose: 30 mg twice"), "dose: MG twice");
        assert_eq!(
            p("fever in 12 of 50 patients (24%)"),
            "fever in INT of INT patients (INT PERCENT)"
        );
        assert_eq!(p("p < 0.001"), "p LESS SMALLPOS");
    }

    #[test]
    fn text_without_numbers_is_unchanged() {
        assert_eq!(p("Vaccine"), "Vaccine");
        assert_eq!(p("Side effects"), "Side effects");
    }

    #[test]
    fn row_processing_joins_cells() {
        let pre = Preprocessor::new();
        let row = vec!["Pfizer".to_string(), "30 mg".to_string(), "94%".to_string()];
        assert_eq!(preprocess_row(&pre, &row), "Pfizer MG INT PERCENT");
    }

    #[test]
    fn empty_cells_are_skipped_in_rows() {
        let pre = Preprocessor::new();
        let row = vec!["a".to_string(), String::new(), "b".to_string()];
        assert_eq!(preprocess_row(&pre, &row), "a b");
    }
}
