#![warn(missing_docs)]

//! # covidkg-tables
//!
//! Table handling for the COVIDKG metadata-classification pipeline (§3):
//!
//! * [`html`] — "an additional HTML table parser and post-processor that
//!   takes raw HTML fragments from CORD-19 and converts them to
//!   semi-structured, clean JSON" (§3.1);
//! * [`preprocess`] — the ordered numeric substitutions of §3.4
//!   (ZERO / RANGE / NEG / SMALLPOS / FLOAT / INT / PERCENT / DATE /
//!   LESS / GREATER / unit keywords);
//! * [`features`] — the 7 positional features {f1…f7} of §3.5 fed to the
//!   SVM, plus horizontal/vertical orientation detection (§3.3 reports
//!   results "depending on whether the classified metadata is horizontal
//!   or vertical").

pub mod features;
pub mod html;
pub mod preprocess;

pub use features::{detect_orientation, row_features, Orientation, RowFeatures};
pub use html::{parse_tables, CleanTable, HtmlParseError};
pub use preprocess::{preprocess_cell, preprocess_row, Preprocessor};
