//! Property tests: the §3.4 pre-processor eliminates every ASCII digit,
//! the HTML parser never panics, and well-formed grids round-trip. Runs
//! on the in-repo `covidkg_rand::prop` harness.

use covidkg_rand::prop::{self, any_string, charset_string, pick, vec_of};
use covidkg_rand::{Rng, SmallRng};
use covidkg_tables::{detect_orientation, parse_tables, preprocess_cell, row_features, Preprocessor};

const CELL_CHARS: &[char] = &[
    'a', 'b', 'c', 'x', 'Y', 'Z', '0', '1', '5', '9', ' ', '.', '%', '<', '>', '-',
];
const GRID_CHARS: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'A', 'B', 'C', '0', '1', '2', '9', ' ',
];

/// §3.4 substitutes "all numerical data"; after the pipeline no ASCII
/// digit may survive (every digit run becomes a category keyword).
#[test]
fn preprocessor_eliminates_all_digits() {
    prop::run(256, |rng| {
        let cell = any_string(rng, 0, 40);
        let out = preprocess_cell(&cell);
        assert!(
            !out.bytes().any(|b| b.is_ascii_digit()),
            "digits survived: {cell:?} -> {out:?}"
        );
    });
}

#[test]
fn preprocessor_is_idempotent() {
    prop::run(256, |rng| {
        let cell = charset_string(rng, CELL_CHARS, 0, 32);
        let once = preprocess_cell(&cell);
        let twice = preprocess_cell(&once);
        assert_eq!(once, twice);
    });
}

#[test]
fn html_parser_never_panics() {
    prop::run(192, |rng| {
        let fragment = any_string(rng, 0, 200);
        let _ = parse_tables(&fragment);
    });
}

#[test]
fn html_parser_handles_random_tag_soup() {
    const TAGS: &[&str] = &[
        "<table>", "</table>", "<tr>", "</tr>", "<td>", "</td>", "<th colspan=2>", "<caption>",
    ];
    const FILLER: &[char] = &['a', 'b', 'z', ' '];
    prop::run(192, |rng| {
        let parts = vec_of(rng, 0, 29, |r| {
            if r.gen_bool(0.8) {
                pick(r, TAGS).to_string()
            } else {
                charset_string(r, FILLER, 0, 6)
            }
        });
        let soup = parts.concat();
        let _ = parse_tables(&soup); // must not panic or loop
    });
}

fn grid_cell(rng: &mut SmallRng) -> String {
    charset_string(rng, GRID_CHARS, 1, 8)
}

#[test]
fn generated_grid_round_trips() {
    prop::run(96, |rng| {
        let grid = vec_of(rng, 2, 5, |r| vec_of(r, 2, 4, grid_cell));
        // Regular grid: pad rows to equal width.
        let width = grid.iter().map(Vec::len).max().unwrap();
        let rows: Vec<Vec<String>> = grid
            .into_iter()
            .map(|mut r| {
                while r.len() < width {
                    r.push("x".to_string());
                }
                r.iter()
                    .map(|c| c.trim().to_string())
                    .map(|c| if c.is_empty() { "x".to_string() } else { c })
                    .collect()
            })
            .collect();
        let mut html = String::from("<table>");
        for row in &rows {
            html.push_str("<tr>");
            for cell in row {
                html.push_str(&format!("<td>{cell}</td>"));
            }
            html.push_str("</tr>");
        }
        html.push_str("</table>");
        let parsed = parse_tables(&html).unwrap();
        assert_eq!(parsed.len(), 1);
        // Cells survive modulo whitespace collapsing.
        let expect: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|c| c.split_whitespace().collect::<Vec<_>>().join(" "))
                    .collect()
            })
            .collect();
        assert_eq!(&parsed[0].rows, &expect);
    });
}

#[test]
fn row_features_shapes_hold() {
    const LOWER_DIGIT: &[char] = &['a', 'b', 'c', 'x', '0', '1', '9', ' '];
    prop::run(96, |rng| {
        let rows: Vec<Vec<String>> =
            vec_of(rng, 1, 5, |r| vec_of(r, 1, 4, |rr| charset_string(rr, LOWER_DIGIT, 0, 6)));
        let pre = Preprocessor::new();
        let feats = row_features(&pre, &rows, None);
        assert_eq!(feats.len(), rows.len());
        for (i, f) in feats.iter().enumerate() {
            assert_eq!(f.cells, rows[i].len());
            assert_eq!(f.has_above, i > 0);
            assert_eq!(f.has_below, i + 1 < rows.len());
            if i > 0 {
                assert_eq!(f.above_cells, rows[i - 1].len());
            }
        }
        // Orientation detection must never panic on ragged grids.
        let _ = detect_orientation(&rows);
    });
}
