//! Property tests: the §3.4 pre-processor eliminates every ASCII digit,
//! the HTML parser never panics, and well-formed grids round-trip.

use covidkg_tables::{detect_orientation, parse_tables, preprocess_cell, row_features, Preprocessor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// §3.4 substitutes "all numerical data"; after the pipeline no ASCII
    /// digit may survive (every digit run becomes a category keyword).
    #[test]
    fn preprocessor_eliminates_all_digits(cell in "\\PC{0,40}") {
        let out = preprocess_cell(&cell);
        prop_assert!(
            !out.bytes().any(|b| b.is_ascii_digit()),
            "digits survived: {cell:?} -> {out:?}"
        );
    }

    #[test]
    fn preprocessor_is_idempotent(cell in "[a-zA-Z0-9 .%<>-]{0,32}") {
        let once = preprocess_cell(&cell);
        let twice = preprocess_cell(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn html_parser_never_panics(fragment in "\\PC{0,200}") {
        let _ = parse_tables(&fragment);
    }

    #[test]
    fn html_parser_handles_random_tag_soup(
        parts in prop::collection::vec(
            prop_oneof![
                Just("<table>".to_string()),
                Just("</table>".to_string()),
                Just("<tr>".to_string()),
                Just("</tr>".to_string()),
                Just("<td>".to_string()),
                Just("</td>".to_string()),
                Just("<th colspan=2>".to_string()),
                Just("<caption>".to_string()),
                "[a-z ]{0,6}",
            ],
            0..30,
        )
    ) {
        let soup = parts.concat();
        let _ = parse_tables(&soup); // must not panic or loop
    }

    #[test]
    fn generated_grid_round_trips(
        grid in prop::collection::vec(
            prop::collection::vec("[a-zA-Z0-9 ]{1,8}", 2..5),
            2..6,
        )
    ) {
        // Regular grid: pad rows to equal width.
        let width = grid.iter().map(Vec::len).max().unwrap();
        let rows: Vec<Vec<String>> = grid
            .into_iter()
            .map(|mut r| {
                while r.len() < width {
                    r.push("x".to_string());
                }
                r.iter().map(|c| c.trim().to_string())
                    .map(|c| if c.is_empty() { "x".to_string() } else { c })
                    .collect()
            })
            .collect();
        let mut html = String::from("<table>");
        for row in &rows {
            html.push_str("<tr>");
            for cell in row {
                html.push_str(&format!("<td>{cell}</td>"));
            }
            html.push_str("</tr>");
        }
        html.push_str("</table>");
        let parsed = parse_tables(&html).unwrap();
        prop_assert_eq!(parsed.len(), 1);
        // Cells survive modulo whitespace collapsing.
        let expect: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(|c| c.split_whitespace().collect::<Vec<_>>().join(" ")).collect())
            .collect();
        prop_assert_eq!(&parsed[0].rows, &expect);
    }

    #[test]
    fn row_features_shapes_hold(
        grid in prop::collection::vec(
            prop::collection::vec("[a-z0-9 ]{0,6}", 1..5),
            1..6,
        )
    ) {
        let rows: Vec<Vec<String>> = grid;
        let pre = Preprocessor::new();
        let feats = row_features(&pre, &rows, None);
        prop_assert_eq!(feats.len(), rows.len());
        for (i, f) in feats.iter().enumerate() {
            prop_assert_eq!(f.cells, rows[i].len());
            prop_assert_eq!(f.has_above, i > 0);
            prop_assert_eq!(f.has_below, i + 1 < rows.len());
            if i > 0 {
                prop_assert_eq!(f.above_cells, rows[i - 1].len());
            }
        }
        // Orientation detection must never panic on ragged grids.
        let _ = detect_orientation(&rows);
    }
}
