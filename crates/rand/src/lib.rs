#![warn(missing_docs)]

//! # covidkg-rand
//!
//! A dependency-free pseudo-random number generator used across the
//! workspace so that normal builds never touch crates.io. The surface
//! mirrors the subset of `rand` 0.8 the repo used — [`SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`], [`Rng::gen`],
//! [`Rng::gen_bool`] and [`seq::SliceRandom`] — so call sites port with
//! an import swap. The generator is xoshiro256++ (Blackman & Vigna)
//! seeded through SplitMix64, the exact construction the reference
//! implementation recommends; streams differ from `rand`'s `SmallRng`,
//! so seed-sensitive experiment shapes were re-checked (EXPERIMENTS.md).
//!
//! The [`prop`] module layers a minimal property-test harness on top,
//! replacing the `proptest` dev-dependency for offline builds.

pub mod prop;

/// Construct a generator from small, human-chosen seeds.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed (SplitMix64
    /// expansion, so nearby seeds yield unrelated streams).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// SplitMix64 — used to expand seeds into xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — the workspace's small, fast, non-cryptographic PRNG.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types producible by [`Rng::gen`] from uniform bits.
pub trait Standard: Sized {
    /// Draw one value from the "standard" distribution for the type
    /// (uniform `[0, 1)` for floats, uniform over all values for ints).
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map 64 random bits onto `[0, span)` without modulo bias hot spots
/// (widening-multiply method).
#[inline]
fn bounded(bits: u64, span: u64) -> u64 {
    ((u128::from(bits) * u128::from(span)) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as Standard>::from_rng(rng) * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A value from the type's standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::from_rng(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::SmallRng;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: xoshiro256++ from state {1, 2, 3, 4} (Vigna's test
        // values, first three outputs).
        let mut rng = SmallRng { s: [1, 2, 3, 4] };
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-0.5..0.5f32);
            assert!((-0.5..0.5).contains(&f));
            let d = rng.gen_range(1.0..5.0f64);
            assert!((1.0..5.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_covers_every_value_of_a_small_range() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_stay_in_unit_interval_and_spread() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..4000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 4000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(21);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((1000..1400).contains(&hits), "hits {hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "32 elements virtually never shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert!(orig.contains(v.choose(&mut rng).unwrap()));
        let empty: &[usize] = &[];
        assert!(empty.choose(&mut rng).is_none());
    }
}
