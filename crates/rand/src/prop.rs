//! Minimal property-test harness (offline replacement for `proptest`).
//!
//! [`run`] executes a closure for `cases` independently seeded
//! generators; a failing case panics with its case index and seed so the
//! failure replays deterministically via [`replay`]. The string and
//! collection helpers below cover the generator shapes the workspace's
//! property suites need (`proptest` regex strategies like `"[a-z]{1,6}"`
//! or `"\\PC{0,64}"` map onto [`charset_string`] / [`any_string`]).

use crate::{Rng, SeedableRng, SmallRng};

/// Golden ratio increment decorrelating case seeds.
const CASE_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Run `check` against `cases` freshly seeded generators. Panics (with
/// the replayable case seed) as soon as one case fails.
pub fn run(cases: usize, mut check: impl FnMut(&mut SmallRng)) {
    for case in 0..cases {
        let seed = 0xC0BD ^ (case as u64).wrapping_mul(CASE_STRIDE);
        let mut rng = SmallRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "property failed at case {case}/{cases} — replay with \
                 covidkg_rand::prop::replay({seed:#x}, check)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Re-run a single case from the seed printed by a failing [`run`].
pub fn replay(seed: u64, mut check: impl FnMut(&mut SmallRng)) {
    let mut rng = SmallRng::seed_from_u64(seed);
    check(&mut rng);
}

/// Uniform length in `[min, max]`, then one uniform char per slot from
/// `chars`. Equivalent to the `proptest` strategy `"[chars]{min,max}"`.
pub fn charset_string(rng: &mut SmallRng, chars: &[char], min: usize, max: usize) -> String {
    let len = rng.gen_range(min..=max);
    (0..len).map(|_| chars[rng.gen_range(0..chars.len())]).collect()
}

/// Printable-ASCII string (space through `~`), like `"[ -~]{min,max}"`.
pub fn ascii_string(rng: &mut SmallRng, min: usize, max: usize) -> String {
    let len = rng.gen_range(min..=max);
    (0..len)
        .map(|_| char::from(rng.gen_range(0x20u8..=0x7E)))
        .collect()
}

/// Arbitrary non-control text, like `proptest`'s `"\\PC{min,max}"`:
/// mostly printable ASCII with multi-byte letters, combining marks,
/// symbols and emoji mixed in to exercise char-boundary handling.
pub fn any_string(rng: &mut SmallRng, min: usize, max: usize) -> String {
    const EXOTIC: &[char] = &[
        'é', 'ï', 'ß', 'ñ', 'Ω', 'λ', 'д', '中', '漢', '字', 'の', '한',
        '€', '£', '°', '·', '—', '“', '”', '😀', '🦠', '𝕍', '\u{0301}',
    ];
    let len = rng.gen_range(min..=max);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.15) {
                EXOTIC[rng.gen_range(0..EXOTIC.len())]
            } else {
                char::from(rng.gen_range(0x20u8..=0x7E))
            }
        })
        .collect()
}

/// Lowercase a–z string, like `"[a-z]{min,max}"`.
pub fn lowercase_string(rng: &mut SmallRng, min: usize, max: usize) -> String {
    let len = rng.gen_range(min..=max);
    (0..len).map(|_| char::from(rng.gen_range(b'a'..=b'z'))).collect()
}

/// A vec of `gen(rng)` values with uniform length in `[min, max]`.
pub fn vec_of<T>(
    rng: &mut SmallRng,
    min: usize,
    max: usize,
    mut gen: impl FnMut(&mut SmallRng) -> T,
) -> Vec<T> {
    let len = rng.gen_range(min..=max);
    (0..len).map(|_| gen(rng)).collect()
}

/// One uniformly chosen element of `options` (cf. `prop_oneof!` over
/// `Just` literals).
pub fn pick<'a, T>(rng: &mut SmallRng, options: &'a [T]) -> &'a T {
    &options[rng.gen_range(0..options.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_executes_every_case() {
        let mut n = 0;
        run(64, |_| n += 1);
        assert_eq!(n, 64);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn failures_propagate() {
        run(8, |rng| {
            if rng.gen_bool(0.9) {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn string_generators_respect_shape() {
        run(64, |rng| {
            let s = lowercase_string(rng, 1, 6);
            assert!((1..=6).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let a = ascii_string(rng, 0, 12);
            assert!(a.chars().all(|c| (' '..='~').contains(&c)));

            let u = any_string(rng, 0, 32);
            assert!(u.chars().count() <= 32);
            assert!(u.chars().all(|c| c == '\u{0301}' || !c.is_control()));
        });
    }

    #[test]
    fn vec_of_and_pick_cover_inputs() {
        run(32, |rng| {
            let v = vec_of(rng, 2, 5, |r| r.gen_range(0..10));
            assert!((2..=5).contains(&v.len()));
            let opts = ["a", "b", "c"];
            assert!(opts.contains(pick(rng, &opts)));
        });
    }
}
