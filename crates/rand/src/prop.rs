//! Minimal property-test harness (offline replacement for `proptest`).
//!
//! [`run`] executes a closure for `cases` independently seeded
//! generators; a failing case panics with its case index and seed so the
//! failure replays deterministically via [`replay`]. The string and
//! collection helpers below cover the generator shapes the workspace's
//! property suites need (`proptest` regex strategies like `"[a-z]{1,6}"`
//! or `"\\PC{0,64}"` map onto [`charset_string`] / [`any_string`]).

use crate::{Rng, SeedableRng, SmallRng};

/// Golden ratio increment decorrelating case seeds.
const CASE_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Run `check` against `cases` freshly seeded generators. Panics (with
/// the replayable case seed) as soon as one case fails.
pub fn run(cases: usize, mut check: impl FnMut(&mut SmallRng)) {
    for case in 0..cases {
        let seed = 0xC0BD ^ (case as u64).wrapping_mul(CASE_STRIDE);
        let mut rng = SmallRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "property failed at case {case}/{cases} — replay with \
                 covidkg_rand::prop::replay({seed:#x}, check)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Re-run a single case from the seed printed by a failing [`run`].
pub fn replay(seed: u64, mut check: impl FnMut(&mut SmallRng)) {
    let mut rng = SmallRng::seed_from_u64(seed);
    check(&mut rng);
}

/// Candidate budget for one shrinking session; greedy descent almost
/// always converges far below this.
const MAX_SHRINK_ATTEMPTS: usize = 4096;

/// Like [`run`], but over explicit generated values with
/// minimal-counterexample shrinking. `gen` produces an input, `check`
/// judges it (`Err` = property violated), and on the first failure the
/// harness greedily walks `shrink`'s candidates — accepting any candidate
/// that still fails — until no candidate reproduces the failure, then
/// panics with the minimal input, its error, and the replay seed.
///
/// `check` reports failures as `Err` rather than panicking so shrinking
/// doesn't spray hundreds of panic backtraces through the test output.
pub fn run_shrink<T: std::fmt::Debug>(
    cases: usize,
    mut gen: impl FnMut(&mut SmallRng) -> T,
    shrink: impl Fn(&T) -> Vec<T>,
    mut check: impl FnMut(&T) -> Result<(), String>,
) {
    for case in 0..cases {
        let seed = 0xC0BD ^ (case as u64).wrapping_mul(CASE_STRIDE);
        let mut rng = SmallRng::seed_from_u64(seed);
        let input = gen(&mut rng);
        if let Err(first) = check(&input) {
            let (minimal, error, steps) = shrink_to_minimal(input, first, &shrink, &mut check);
            panic!(
                "property failed at case {case}/{cases} (replay seed {seed:#x})\n  \
                 minimal counterexample ({steps} shrink steps): {minimal:?}\n  error: {error}"
            );
        }
    }
}

/// Greedy descent: repeatedly move to the first shrink candidate that
/// still fails the property, until none does or the budget runs out.
fn shrink_to_minimal<T>(
    mut current: T,
    mut error: String,
    shrink: &impl Fn(&T) -> Vec<T>,
    check: &mut impl FnMut(&T) -> Result<(), String>,
) -> (T, String, usize) {
    let mut steps = 0;
    let mut attempts = 0;
    'descend: while attempts < MAX_SHRINK_ATTEMPTS {
        for candidate in shrink(&current) {
            attempts += 1;
            if attempts > MAX_SHRINK_ATTEMPTS {
                break 'descend;
            }
            if let Err(e) = check(&candidate) {
                current = candidate;
                error = e;
                steps += 1;
                continue 'descend;
            }
        }
        break;
    }
    (current, error, steps)
}

/// Shrink candidates for an integer: zero, halved, decremented.
pub fn shrink_usize(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    if n > 0 {
        out.push(0);
        if n / 2 > 0 {
            out.push(n / 2);
        }
        if n - 1 > n / 2 {
            out.push(n - 1);
        }
    }
    out
}

/// Shrink candidates for a vec: progressively smaller chunk removals
/// (halving), then per-element shrinks via `shrink_elem` over a prefix.
pub fn shrink_vec<T: Clone>(v: &[T], shrink_elem: impl Fn(&T) -> Vec<T>) -> Vec<Vec<T>> {
    let n = v.len();
    let mut out = Vec::new();
    let mut chunk = n;
    while chunk > 0 {
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let mut candidate = Vec::with_capacity(n - (end - start));
            candidate.extend_from_slice(&v[..start]);
            candidate.extend_from_slice(&v[end..]);
            out.push(candidate);
            start += chunk;
        }
        chunk /= 2;
    }
    for (i, item) in v.iter().enumerate().take(8) {
        for smaller in shrink_elem(item) {
            let mut candidate = v.to_vec();
            candidate[i] = smaller;
            out.push(candidate);
        }
    }
    out
}

/// Shrink candidates for a string: shorter substrings and characters
/// simplified towards `'a'`.
pub fn shrink_string(s: &str) -> Vec<String> {
    let chars: Vec<char> = s.chars().collect();
    shrink_vec(&chars, |&c| if c == 'a' { Vec::new() } else { vec!['a'] })
        .into_iter()
        .map(|cs| cs.into_iter().collect())
        .collect()
}

/// Uniform length in `[min, max]`, then one uniform char per slot from
/// `chars`. Equivalent to the `proptest` strategy `"[chars]{min,max}"`.
pub fn charset_string(rng: &mut SmallRng, chars: &[char], min: usize, max: usize) -> String {
    let len = rng.gen_range(min..=max);
    (0..len).map(|_| chars[rng.gen_range(0..chars.len())]).collect()
}

/// Printable-ASCII string (space through `~`), like `"[ -~]{min,max}"`.
pub fn ascii_string(rng: &mut SmallRng, min: usize, max: usize) -> String {
    let len = rng.gen_range(min..=max);
    (0..len)
        .map(|_| char::from(rng.gen_range(0x20u8..=0x7E)))
        .collect()
}

/// Arbitrary non-control text, like `proptest`'s `"\\PC{min,max}"`:
/// mostly printable ASCII with multi-byte letters, combining marks,
/// symbols and emoji mixed in to exercise char-boundary handling.
pub fn any_string(rng: &mut SmallRng, min: usize, max: usize) -> String {
    const EXOTIC: &[char] = &[
        'é', 'ï', 'ß', 'ñ', 'Ω', 'λ', 'д', '中', '漢', '字', 'の', '한',
        '€', '£', '°', '·', '—', '“', '”', '😀', '🦠', '𝕍', '\u{0301}',
    ];
    let len = rng.gen_range(min..=max);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.15) {
                EXOTIC[rng.gen_range(0..EXOTIC.len())]
            } else {
                char::from(rng.gen_range(0x20u8..=0x7E))
            }
        })
        .collect()
}

/// Lowercase a–z string, like `"[a-z]{min,max}"`.
pub fn lowercase_string(rng: &mut SmallRng, min: usize, max: usize) -> String {
    let len = rng.gen_range(min..=max);
    (0..len).map(|_| char::from(rng.gen_range(b'a'..=b'z'))).collect()
}

/// A vec of `gen(rng)` values with uniform length in `[min, max]`.
pub fn vec_of<T>(
    rng: &mut SmallRng,
    min: usize,
    max: usize,
    mut gen: impl FnMut(&mut SmallRng) -> T,
) -> Vec<T> {
    let len = rng.gen_range(min..=max);
    (0..len).map(|_| gen(rng)).collect()
}

/// One uniformly chosen element of `options` (cf. `prop_oneof!` over
/// `Just` literals).
pub fn pick<'a, T>(rng: &mut SmallRng, options: &'a [T]) -> &'a T {
    &options[rng.gen_range(0..options.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_executes_every_case() {
        let mut n = 0;
        run(64, |_| n += 1);
        assert_eq!(n, 64);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn failures_propagate() {
        run(8, |rng| {
            if rng.gen_bool(0.9) {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn string_generators_respect_shape() {
        run(64, |rng| {
            let s = lowercase_string(rng, 1, 6);
            assert!((1..=6).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let a = ascii_string(rng, 0, 12);
            assert!(a.chars().all(|c| (' '..='~').contains(&c)));

            let u = any_string(rng, 0, 32);
            assert!(u.chars().count() <= 32);
            assert!(u.chars().all(|c| c == '\u{0301}' || !c.is_control()));
        });
    }

    #[test]
    fn run_shrink_passes_clean_properties() {
        let mut n = 0;
        run_shrink(
            32,
            |rng| rng.gen_range(0usize..100),
            |&v| shrink_usize(v),
            |_| {
                n += 1;
                Ok(())
            },
        );
        // `n` counts checks on generated inputs only (no shrinking ran).
        assert!(n >= 32);
    }

    #[test]
    fn shrinking_finds_minimal_counterexample() {
        // Property: every element < 10. The minimal failing input is the
        // one-element vec [10]; greedy shrinking must land exactly there.
        let outcome = std::panic::catch_unwind(|| {
            run_shrink(
                64,
                |rng| vec_of(rng, 0, 20, |r| r.gen_range(0usize..100)),
                |v| shrink_vec(v, |&e| shrink_usize(e)),
                |v| {
                    if v.iter().all(|&e| e < 10) {
                        Ok(())
                    } else {
                        Err(format!("{} >= 10", v.iter().max().unwrap()))
                    }
                },
            )
        });
        let payload = outcome.expect_err("property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic message is a String");
        assert!(msg.contains("[10]"), "not minimal: {msg}");
        assert!(msg.contains("10 >= 10"), "wrong error: {msg}");
    }

    #[test]
    fn string_shrinker_simplifies_towards_short_a_strings() {
        // Property: no 'z' anywhere. Minimal counterexample is "z".
        let outcome = std::panic::catch_unwind(|| {
            run_shrink(
                64,
                |rng| charset_string(rng, &['x', 'y', 'z'], 0, 12),
                |s| shrink_string(s),
                |s| {
                    if s.contains('z') {
                        Err("contains z".into())
                    } else {
                        Ok(())
                    }
                },
            )
        });
        let payload = outcome.expect_err("property must fail");
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains("\"z\""), "not minimal: {msg}");
    }

    #[test]
    fn vec_of_and_pick_cover_inputs() {
        run(32, |rng| {
            let v = vec_of(rng, 2, 5, |r| r.gen_range(0..10));
            assert!((2..=5).contains(&v.len()));
            let opts = ["a", "b", "c"];
            assert!(opts.contains(pick(rng, &opts)));
        });
    }
}
