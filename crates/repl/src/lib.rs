#![warn(missing_docs)]

//! # covidkg-repl
//!
//! WAL-shipping replication for the covidkg serving stack: a single
//! primary streams each collection's write-ahead log over TCP to N
//! replicas, which apply frames through the store's crash-recovery
//! path and serve reads locally. The paper's deployment runs
//! "non-stop" behind a web front-end (§1, Fig 5); this crate supplies
//! the read-scaling and failure-isolation half of that story:
//!
//! * [`ReplListener`] — primary-side session supervisor: streams WAL
//!   frames from any requested sequence, bootstraps stragglers from a
//!   checkpoint, tracks per-replica acks ([`ReplMetrics`]);
//! * [`ReplicaPuller`] / [`ReplicaNode`] — replica-side pull loops
//!   (bounded-backoff reconnect, CRC-verified frames, gap-triggered
//!   re-sync) and the full serving replica (replicated collections +
//!   local query server + derived-state refresh);
//! * [`ReadRouter`] — lag-aware round-robin read scaling with optional
//!   read-your-writes via a client-supplied minimum sequence token;
//! * [`protocol`] — the length-prefixed binary wire protocol, every
//!   leadership-asserting message stamped with a fencing [`Epoch`];
//! * [`failover`] — fenced failover: deterministic promotion
//!   ([`elect`]) of exactly one replica on primary loss, epoch
//!   bump + WAL ownership handoff, stale-epoch rejection so a revived
//!   ex-primary cannot split-brain, plus the kill-the-primary gauntlet;
//! * [`compress`] — std-only LZ compressor behind batched frame
//!   shipping;
//! * [`gauntlet`] — seeded kill/truncate/corrupt convergence gauntlet
//!   asserting every replica ends byte-identical to the primary.

pub mod compress;
pub mod failover;
pub mod gauntlet;
pub mod metrics;
pub mod primary;
pub mod protocol;
pub mod replica;
pub mod router;

pub use failover::{elect, run_failover_gauntlet, Epoch, FailoverConfig, FailoverReport};
pub use gauntlet::{run_repl_gauntlet, ReplGauntletConfig, ReplGauntletReport};
pub use metrics::{ReplMetrics, ReplStats};
pub use primary::{docs_checksum, ReplConfig, ReplListener};
pub use protocol::{Decoder, Message, ProtocolError};
pub use replica::{
    list_collections, PullerState, ReplicaNode, ReplicaNodeConfig, ReplicaPuller,
};
pub use router::{ReadRouter, ReplicaTarget, RouteError, RouteInfo, TargetHealth};

use covidkg_store::StoreError;

/// Replication failure.
#[derive(Debug)]
pub enum ReplError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The store rejected an operation.
    Store(StoreError),
    /// The peer violated the wire protocol (or shipped corrupt data).
    Protocol(String),
    /// A bounded wait expired.
    Timeout(String),
}

impl ReplError {
    /// The peer closed the connection.
    pub(crate) fn closed() -> ReplError {
        ReplError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "peer closed the connection",
        ))
    }
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Io(e) => write!(f, "replication i/o error: {e}"),
            ReplError::Store(e) => write!(f, "replication store error: {e}"),
            ReplError::Protocol(m) => write!(f, "replication protocol error: {m}"),
            ReplError::Timeout(what) => write!(f, "replication timed out waiting for {what}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<std::io::Error> for ReplError {
    fn from(e: std::io::Error) -> ReplError {
        ReplError::Io(e)
    }
}

impl From<StoreError> for ReplError {
    fn from(e: StoreError) -> ReplError {
        ReplError::Store(e)
    }
}
