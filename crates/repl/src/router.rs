//! Lag-aware read routing across replica servers.
//!
//! Round-robin over the replicas whose publications lag is within
//! `max_lag`, with the primary as optional fallback. Read-your-writes:
//! a client that just wrote at sequence `s` passes `min_seq = s`; the
//! router only picks targets whose applied sequence has reached `s`,
//! waiting up to a deadline when none has (the primary, when present,
//! satisfies any `min_seq` instantly — it *is* the write path).

use covidkg_search::SearchMode;
use covidkg_serve::{ServeError, ServeResponse, Server};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Routing availability of one replica. Only [`TargetHealth::Ready`]
/// targets receive reads: a replica mid-promotion is tearing down its
/// puller and taking WAL ownership (reads would race the handoff), and
/// a fenced one is connected to a deposed primary whose stream is
/// frozen. Flipping health is how a controlled failover keeps reads
/// flowing — the router falls back to the remaining pool (or primary)
/// instead of 500ing on a target in transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetHealth {
    /// In the rotation.
    Ready,
    /// Being promoted to primary; out of the read rotation until the
    /// handoff completes.
    Promoting,
    /// Fenced off (stale-epoch upstream); out of the rotation.
    Fenced,
}

impl TargetHealth {
    fn from_u8(v: u8) -> TargetHealth {
        match v {
            1 => TargetHealth::Promoting,
            2 => TargetHealth::Fenced,
            _ => TargetHealth::Ready,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            TargetHealth::Ready => 0,
            TargetHealth::Promoting => 1,
            TargetHealth::Fenced => 2,
        }
    }
}

/// One routable replica.
pub struct ReplicaTarget {
    /// Replica name (response header label).
    pub name: String,
    /// Its local query server.
    pub server: Arc<Server>,
    /// Its applied publications sequence (shared with the puller).
    pub applied: Arc<AtomicU64>,
    /// Routing availability (see [`TargetHealth`]); shared so a
    /// failover controller can flip it while the router runs.
    pub health: Arc<AtomicU8>,
}

impl ReplicaTarget {
    /// A target whose `applied` gauge follows a live puller: a small
    /// mirror thread copies the puller's applied sequence every few
    /// milliseconds and exits once either side (target or puller) is
    /// dropped.
    pub fn tracking(
        name: impl Into<String>,
        server: Arc<Server>,
        state: &Arc<crate::replica::PullerState>,
    ) -> ReplicaTarget {
        let applied = Arc::new(AtomicU64::new(state.applied.load(Ordering::Acquire)));
        let weak_state = Arc::downgrade(state);
        let weak_gauge = Arc::downgrade(&applied);
        std::thread::Builder::new()
            .name("covidkg-repl-gauge".into())
            .spawn(move || loop {
                let (Some(state), Some(gauge)) = (weak_state.upgrade(), weak_gauge.upgrade())
                else {
                    return;
                };
                gauge.store(state.applied.load(Ordering::Acquire), Ordering::Release);
                drop((state, gauge));
                std::thread::sleep(Duration::from_millis(5));
            })
            .expect("spawn gauge mirror thread");
        ReplicaTarget {
            name: name.into(),
            server,
            applied,
            health: Arc::new(AtomicU8::new(TargetHealth::Ready.as_u8())),
        }
    }

    /// Current routing availability.
    pub fn health(&self) -> TargetHealth {
        TargetHealth::from_u8(self.health.load(Ordering::Acquire))
    }

    /// Flip routing availability (e.g. `Promoting` at the start of a
    /// controlled failover, back to `Ready` once the handoff is done).
    pub fn set_health(&self, health: TargetHealth) {
        self.health.store(health.as_u8(), Ordering::Release);
    }
}

/// What the router picked for one read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteInfo {
    /// Name of the serving node (`"primary"` for the fallback).
    pub replica: String,
    /// Sequence lag behind the primary watermark at pick time.
    pub lag: u64,
    /// Applied sequence at pick time.
    pub applied: u64,
    /// True when the primary served the read.
    pub primary: bool,
}

/// Routing failure.
#[derive(Debug)]
pub enum RouteError {
    /// No target reached `min_seq` before the deadline (read-your-
    /// writes unsatisfiable) — HTTP 503 territory.
    NotCaughtUp {
        /// The sequence the client demanded.
        wanted: u64,
        /// The best applied sequence any target offered.
        best: u64,
    },
    /// The picked server failed the search.
    Serve(ServeError),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::NotCaughtUp { wanted, best } => write!(
                f,
                "no replica caught up to sequence {wanted} (best applied: {best})"
            ),
            RouteError::Serve(e) => write!(f, "routed search failed: {e}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Lag-aware round-robin read router.
pub struct ReadRouter {
    /// Primary fallback (always caught up); `None` for a pure replica
    /// pool, where read-your-writes can actually fail with 503.
    primary: Option<Arc<Server>>,
    replicas: Vec<ReplicaTarget>,
    /// Source of the primary's current publications watermark.
    watermark: Arc<dyn Fn() -> u64 + Send + Sync>,
    /// Replicas lagging more than this many sequences are excluded.
    max_lag: u64,
    rr: AtomicUsize,
}

impl ReadRouter {
    /// Build a router. `watermark` supplies the primary's current
    /// durable publications sequence (the lag reference clock).
    pub fn new(
        primary: Option<Arc<Server>>,
        replicas: Vec<ReplicaTarget>,
        watermark: Arc<dyn Fn() -> u64 + Send + Sync>,
        max_lag: u64,
    ) -> ReadRouter {
        ReadRouter {
            primary,
            replicas,
            watermark,
            max_lag,
            rr: AtomicUsize::new(0),
        }
    }

    /// Number of configured replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Whether a primary fallback is configured (read-your-writes can
    /// never 503 when it is).
    pub fn has_primary(&self) -> bool {
        self.primary.is_some()
    }

    /// Point-in-time `(name, applied, lag)` for every replica — the
    /// per-replica series `/metrics` exposes.
    pub fn targets(&self) -> Vec<(String, u64, u64)> {
        let mark = self.watermark();
        self.replicas
            .iter()
            .map(|t| {
                let applied = t.applied.load(Ordering::Acquire);
                (t.name.clone(), applied, mark.saturating_sub(applied))
            })
            .collect()
    }

    /// The primary's current publications watermark (the sequence token
    /// clients use for read-your-writes).
    pub fn watermark(&self) -> u64 {
        (self.watermark)()
    }

    /// Pick an eligible replica (round-robin among those within
    /// `max_lag` and at or past `min_seq`), if any.
    fn pick_replica(&self, min_seq: u64) -> Option<(usize, RouteInfo)> {
        if self.replicas.is_empty() {
            return None;
        }
        let mark = self.watermark();
        let n = self.replicas.len();
        let start = self.rr.fetch_add(1, Ordering::Relaxed) % n;
        for i in 0..n {
            let idx = (start + i) % n;
            let t = &self.replicas[idx];
            if t.health() != TargetHealth::Ready {
                continue;
            }
            let applied = t.applied.load(Ordering::Acquire);
            let lag = mark.saturating_sub(applied);
            if lag <= self.max_lag && applied >= min_seq {
                return Some((
                    idx,
                    RouteInfo {
                        replica: t.name.clone(),
                        lag,
                        applied,
                        primary: false,
                    },
                ));
            }
        }
        None
    }

    /// Best applied sequence across the pool (for 503 diagnostics).
    fn best_applied(&self) -> u64 {
        self.replicas
            .iter()
            .map(|t| t.applied.load(Ordering::Acquire))
            .max()
            .unwrap_or(0)
    }

    /// Route one read. `min_seq = 0` means no read-your-writes
    /// requirement; a nonzero `min_seq` waits up to `deadline` for a
    /// target that has applied it (instantly satisfied by the primary
    /// fallback when configured).
    pub fn route(&self, min_seq: u64, deadline: Duration) -> Result<(Arc<Server>, RouteInfo), RouteError> {
        let start = Instant::now();
        loop {
            if let Some((idx, info)) = self.pick_replica(min_seq) {
                return Ok((Arc::clone(&self.replicas[idx].server), info));
            }
            if let Some(primary) = &self.primary {
                return Ok((
                    Arc::clone(primary),
                    RouteInfo {
                        replica: "primary".into(),
                        lag: 0,
                        applied: self.watermark(),
                        primary: true,
                    },
                ));
            }
            if start.elapsed() >= deadline {
                return Err(RouteError::NotCaughtUp {
                    wanted: min_seq,
                    best: self.best_applied(),
                });
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Route and serve one search.
    pub fn search(
        &self,
        mode: &SearchMode,
        page: usize,
        min_seq: u64,
        deadline: Duration,
    ) -> Result<(ServeResponse, RouteInfo), RouteError> {
        let (server, info) = self.route(min_seq, deadline)?;
        match server.search(mode, page) {
            Ok(resp) => Ok((resp, info)),
            Err(e) => Err(RouteError::Serve(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Routing logic against real servers is covered by the crate's
    /// integration tests; here the pool-exhaustion paths.
    #[test]
    fn empty_pool_without_primary_reports_not_caught_up() {
        let router = ReadRouter::new(None, Vec::new(), Arc::new(|| 10), 2);
        let err = match router.route(5, Duration::from_millis(10)) {
            Ok(_) => panic!("route must fail with an empty pool"),
            Err(e) => e,
        };
        match err {
            RouteError::NotCaughtUp { wanted, best } => {
                assert_eq!(wanted, 5);
                assert_eq!(best, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reads_never_fail_while_targets_cycle_through_a_controlled_failover() {
        use covidkg_core::{CovidKg, CovidKgConfig};
        use covidkg_serve::ServeConfig;

        let system = CovidKg::build(CovidKgConfig {
            corpus_size: 8,
            max_training_rows: 50,
            ..CovidKgConfig::default()
        })
        .unwrap();
        let server = Arc::new(covidkg_serve::Server::start(system, ServeConfig::default()));
        let target = |name: &str| ReplicaTarget {
            name: name.into(),
            server: Arc::clone(&server),
            applied: Arc::new(AtomicU64::new(10)),
            health: Arc::new(AtomicU8::new(TargetHealth::Ready.as_u8())),
        };
        let (r1, r2) = (target("r1"), target("r2"));
        let (h1, h2) = (Arc::clone(&r1.health), Arc::clone(&r2.health));
        let router = ReadRouter::new(
            Some(Arc::clone(&server)),
            vec![r1, r2],
            Arc::new(|| 10),
            2,
        );
        let set = |h: &Arc<AtomicU8>, v: TargetHealth| h.store(v.as_u8(), Ordering::Release);
        let deadline = Duration::from_millis(50);

        // A controlled failover walks r1 through Promoting and r2
        // through Fenced; every route along the way must succeed and
        // never land on a target that is out of the rotation.
        let phases: [(TargetHealth, TargetHealth, &[&str]); 4] = [
            (TargetHealth::Ready, TargetHealth::Ready, &["r1", "r2"]),
            (TargetHealth::Promoting, TargetHealth::Ready, &["r2"]),
            (TargetHealth::Promoting, TargetHealth::Fenced, &["primary"]),
            (TargetHealth::Ready, TargetHealth::Ready, &["r1", "r2"]),
        ];
        for (st1, st2, allowed) in phases {
            set(&h1, st1);
            set(&h2, st2);
            for _ in 0..20 {
                let (_, info) = router
                    .route(0, deadline)
                    .expect("reads must not fail mid-failover");
                assert!(
                    allowed.contains(&info.replica.as_str()),
                    "picked {} while healths were {st1:?}/{st2:?}",
                    info.replica
                );
            }
        }
        server.shutdown();
    }

    #[test]
    fn read_your_writes_waits_out_the_deadline_without_targets() {
        let router = ReadRouter::new(None, Vec::new(), Arc::new(|| 0), 0);
        let t0 = Instant::now();
        assert!(matches!(
            router.route(1, Duration::from_millis(20)),
            Err(RouteError::NotCaughtUp { .. })
        ));
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }
}
