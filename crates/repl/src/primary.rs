//! Primary-side replication listener: accepts replica sessions and
//! streams WAL frames, bootstrapping stragglers from a checkpoint.
//!
//! Connection supervision copies the covidkg-net idioms: bounded
//! session count with honest immediate rejection, a short read timeout
//! so shutdown and acks are noticed between sends, a panic-safe slot
//! guard, and a draining shutdown that joins every session thread.

use crate::failover::Epoch;
use crate::metrics::{ReplMetrics, ReplStats};
use crate::protocol::{batch, frame, pump, Decoder, Message};
use covidkg_json::Value;
use covidkg_store::shard::route_hash;
use covidkg_store::wal::WalTail;
use covidkg_store::{Collection, StoreError};
use std::collections::{BTreeMap, HashSet};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Replication listener tuning knobs.
#[derive(Debug, Clone)]
pub struct ReplConfig {
    /// Address to bind (port 0 for an OS-assigned port).
    pub addr: SocketAddr,
    /// Maximum simultaneously open replication sessions.
    pub max_sessions: usize,
    /// Socket-level bound on blocking writes.
    pub write_timeout: Duration,
    /// Idle heartbeat interval (keeps replica lag clocks honest).
    pub heartbeat_interval: Duration,
    /// Fencing epoch this listener stamps on every shipped message. A
    /// *shared* handle: a promoted replica passes the epoch it already
    /// holds, and a cascading relay's listener stays live-linked to the
    /// epoch its puller learns from upstream.
    pub epoch: Epoch,
    /// Coalesce runs of ≥ 2 tailed frames into compressed
    /// [`Message::FrameBatch`]es (bounded by [`MAX_BATCH_FRAMES`] /
    /// [`MAX_BATCH_BYTES`]). Off ships every frame standalone.
    pub batch_frames: bool,
}

impl Default for ReplConfig {
    fn default() -> ReplConfig {
        ReplConfig {
            addr: "127.0.0.1:0".parse().expect("literal addr"),
            max_sessions: 16,
            write_timeout: Duration::from_secs(5),
            heartbeat_interval: Duration::from_millis(500),
            epoch: Epoch::default(),
            batch_frames: true,
        }
    }
}

/// Most frames one batch may carry.
pub const MAX_BATCH_FRAMES: usize = 128;
/// Most uncompressed entry bytes one batch may carry.
pub const MAX_BATCH_BYTES: usize = 256 * 1024;

/// Read-timeout tick (same rationale as covidkg-net's).
const TICK: Duration = Duration::from_millis(50);

/// The primary's content checksum over an explicit document set — the
/// same fold as [`Collection::content_checksum`], so a replica that
/// installs exactly these documents reproduces it bit for bit.
pub fn docs_checksum<'a>(docs: impl IntoIterator<Item = &'a Value>) -> u64 {
    let mut sum = 0u64;
    let mut count = 0u64;
    for doc in docs {
        let id = doc.get("_id").and_then(Value::as_str).unwrap_or_default();
        sum = sum.wrapping_add(route_hash(&format!("{id}\u{1}{}", doc.to_json())));
        count += 1;
    }
    sum ^ count
}

struct Shared {
    sources: BTreeMap<String, Arc<Collection>>,
    config: ReplConfig,
    metrics: Arc<ReplMetrics>,
    shutting_down: AtomicBool,
    active: AtomicU64,
    /// Highest epoch a peer's Hello revealed that was *newer* than ours
    /// at the time (0 = never fenced): somewhere a promotion happened
    /// that we missed, so we must stop shipping (split-brain guard).
    /// The fence lifts once the shared epoch handle catches up — a
    /// cascading relay adopts the new epoch through its own puller and
    /// resumes; a true deposed primary's handle never advances, so it
    /// stays fenced until re-promoted.
    fenced_at: AtomicU64,
    /// (replica, collection) pairs already served once — a second
    /// session from the same pair is a reconnect.
    seen: Mutex<HashSet<(String, String)>>,
}

impl Shared {
    /// Fenced = a peer revealed a newer leadership generation and our
    /// shared epoch handle has not yet reached it. Re-checked against
    /// the live handle every time, so a relay that later adopts the
    /// newer epoch from its upstream un-fences without a restart.
    fn is_fenced(&self) -> bool {
        let at = self.fenced_at.load(Ordering::Acquire);
        at != 0 && self.config.epoch.get() < at
    }
}

/// A running replication listener. Dropping it (or calling
/// [`ReplListener::shutdown`]) drains and joins every session thread.
pub struct ReplListener {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
}

impl ReplListener {
    /// Bind `config.addr` and start serving the given collections.
    pub fn start(
        sources: Vec<(String, Arc<Collection>)>,
        config: ReplConfig,
    ) -> std::io::Result<ReplListener> {
        let listener = TcpListener::bind(config.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = Arc::new(ReplMetrics::default());
        metrics.observe_epoch(config.epoch.get());
        let shared = Arc::new(Shared {
            sources: sources.into_iter().collect(),
            config,
            metrics,
            shutting_down: AtomicBool::new(false),
            active: AtomicU64::new(0),
            fenced_at: AtomicU64::new(0),
            seen: Mutex::new(HashSet::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("covidkg-repl-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn repl accept thread");
        Ok(ReplListener {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (with the OS-assigned port when 0 was asked).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared metrics handle (lives on after shutdown).
    pub fn metrics(&self) -> Arc<ReplMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Point-in-time replication counters.
    pub fn stats(&self) -> ReplStats {
        self.shared.metrics.snapshot()
    }

    /// The fencing epoch this listener stamps on shipped messages.
    pub fn epoch(&self) -> u64 {
        self.shared.config.epoch.get()
    }

    /// True while a session has revealed a newer epoch elsewhere than
    /// this listener's own: shipping is stopped. A deposed ex-primary
    /// stays fenced (its epoch never catches up); a cascading relay
    /// un-fences once its shared epoch handle adopts the newer
    /// generation from upstream.
    pub fn is_fenced(&self) -> bool {
        self.shared.is_fenced()
    }

    /// Durable watermark of the publications collection (the read-
    /// routing sequence token), 0 when no such collection is served.
    pub fn watermark(&self) -> u64 {
        self.shared
            .sources
            .get("publications")
            .map(|c| c.repl_watermark())
            .unwrap_or(0)
    }

    /// Stop accepting, close live sessions, join every thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReplListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Releases a session's slot on every exit path, including panics.
struct SlotGuard(Arc<Shared>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::AcqRel);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let session_threads: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if shared.active.load(Ordering::Acquire) >= shared.config.max_sessions as u64 {
            let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
            let mut s = stream;
            let _ = Message::Error("session limit reached".into()).write_to(&mut s);
            let _ = s.shutdown(Shutdown::Both);
            continue;
        }
        shared.active.fetch_add(1, Ordering::AcqRel);
        let session_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("covidkg-repl-session".into())
            .spawn(move || {
                let _slot = SlotGuard(Arc::clone(&session_shared));
                serve_session(stream, &session_shared);
            })
            .expect("spawn repl session thread");
        let mut threads = session_threads
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        threads.push(handle);
        threads.retain(|h| !h.is_finished());
    }
    let threads = std::mem::take(
        &mut *session_threads
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    for h in threads {
        let _ = h.join();
    }
}

fn serve_session(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(TICK));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut decoder = Decoder::new();
    let mut scratch = [0u8; 64 * 1024];
    // Handshake: wait for ListCollections or Hello.
    loop {
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        let msgs = match pump(&mut stream, &mut decoder, &mut scratch) {
            Ok(Some(msgs)) => msgs,
            Ok(None) | Err(_) => return,
        };
        for msg in msgs {
            match msg {
                Message::ListCollections => {
                    let names = shared.sources.keys().cloned().collect();
                    if Message::Collections(names).write_to(&mut stream).is_err() {
                        return;
                    }
                }
                Message::Hello {
                    replica,
                    collection,
                    from_seq,
                    epoch,
                } => {
                    let ours = shared.config.epoch.get();
                    if epoch > ours {
                        // The replica has witnessed a newer leadership
                        // generation: a promotion happened without us.
                        // We are the deposed primary — fence ourselves
                        // and refuse, rather than shipping stale frames.
                        shared.fenced_at.fetch_max(epoch, Ordering::AcqRel);
                        shared.metrics.fenced_session();
                        let _ = Message::Error(format!(
                            "fenced: peer epoch {epoch} > primary epoch {ours}"
                        ))
                        .write_to(&mut stream);
                        return;
                    }
                    if shared.is_fenced() {
                        shared.metrics.fenced_session();
                        let _ = Message::Error("fenced: primary was deposed".into())
                            .write_to(&mut stream);
                        return;
                    }
                    stream_collection(
                        &mut stream,
                        shared,
                        &mut decoder,
                        &replica,
                        &collection,
                        from_seq,
                    );
                    return;
                }
                // Anything else before Hello is a protocol violation.
                _ => {
                    let _ = Message::Error("expected hello".into()).write_to(&mut stream);
                    return;
                }
            }
        }
    }
}

/// Send `msg`, recording shipped bytes. `None` when the peer is
/// unusable (session should end); `Some(wire_bytes)` otherwise.
fn send(stream: &mut TcpStream, shared: &Shared, msg: &Message) -> Option<usize> {
    match msg.write_to(stream) {
        Ok(n) => {
            shared.metrics.shipped(n);
            Some(n)
        }
        Err(_) => None,
    }
}

/// Ship a full checkpoint; returns the sequence the checkpoint is
/// consistent with (the replica resumes at `seq + 1`), or `None` when
/// the peer went away.
fn send_checkpoint(
    stream: &mut TcpStream,
    shared: &Shared,
    coll: &Collection,
) -> Result<Option<u64>, StoreError> {
    let (seq, docs) = coll.checkpoint()?;
    let begin = Message::CheckpointBegin {
        seq,
        docs: docs.len() as u64,
    };
    if send(stream, shared, &begin).is_none() {
        return Ok(None);
    }
    let checksum = docs_checksum(docs.iter());
    for doc in docs {
        if send(stream, shared, &Message::CheckpointDoc(doc)).is_none() {
            return Ok(None);
        }
    }
    if send(stream, shared, &Message::CheckpointEnd { checksum }).is_none() {
        return Ok(None);
    }
    shared.metrics.snapshot_bootstrap();
    Ok(Some(seq))
}

fn stream_collection(
    stream: &mut TcpStream,
    shared: &Shared,
    decoder: &mut Decoder,
    replica: &str,
    collection: &str,
    from_seq: u64,
) {
    let Some(coll) = shared.sources.get(collection) else {
        let _ = Message::Error(format!("no such collection {collection:?}")).write_to(stream);
        return;
    };
    {
        let mut seen = shared
            .seen
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if !seen.insert((replica.to_string(), collection.to_string())) {
            shared.metrics.reconnect();
        }
    }
    let meta = Message::Meta {
        shards: coll.config().shards,
        text_fields: coll.config().text_fields.clone(),
        watermark: coll.repl_watermark(),
        epoch: shared.config.epoch.get(),
    };
    if send(stream, shared, &meta).is_none() {
        return;
    }

    let mut next = from_seq.max(1);
    let mut scratch = [0u8; 64 * 1024];
    let mut last_sent = Instant::now();
    loop {
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        // Drain acks (and notice peer departure) — pump blocks at most
        // one TICK, which also paces the tail polling below.
        let msgs = match pump(stream, decoder, &mut scratch) {
            Ok(Some(msgs)) => msgs,
            Ok(None) | Err(_) => return,
        };
        for msg in msgs {
            match msg {
                Message::Ack { applied } if collection == "publications" => {
                    shared.metrics.acked(replica, applied);
                }
                Message::Ack { .. } => {}
                Message::Error(_) => return,
                _ => {}
            }
        }

        // A promotion elsewhere fences this whole listener mid-stream:
        // stop shipping instantly rather than racing the new primary.
        if shared.is_fenced() {
            let _ = Message::Error("fenced: primary was deposed".into()).write_to(stream);
            return;
        }

        // Ship everything new past `next`. The epoch is re-read per
        // iteration: a cascading relay's epoch can advance mid-session
        // when its upstream is promoted.
        let epoch = shared.config.epoch.get();
        match coll.tail_from(next) {
            Ok(WalTail::Records(records)) => {
                let shipped_any = !records.is_empty();
                if !ship_records(stream, shared, epoch, records, &mut next) {
                    return;
                }
                if shipped_any {
                    last_sent = Instant::now();
                }
            }
            // The WAL was compacted past `next` (a snapshot ran while
            // we streamed): re-bootstrap the replica from a checkpoint.
            Ok(WalTail::SnapshotNeeded { .. }) => match send_checkpoint(stream, shared, coll) {
                Ok(Some(seq)) => {
                    next = seq + 1;
                    last_sent = Instant::now();
                }
                Ok(None) => return,
                Err(e) if e.is_transient() => {}
                Err(_) => {
                    let _ = Message::Error("checkpoint failed".into()).write_to(stream);
                    return;
                }
            },
            Err(e) if e.is_transient() => {}
            Err(_) => {
                let _ = Message::Error("tail read failed".into()).write_to(stream);
                return;
            }
        }

        if last_sent.elapsed() >= shared.config.heartbeat_interval {
            let hb = Message::Heartbeat {
                watermark: coll.repl_watermark(),
                epoch,
            };
            if send(stream, shared, &hb).is_none() {
                return;
            }
            last_sent = Instant::now();
        }
        let _ = stream.flush();
    }
}

/// Ship a tailed run of records, coalescing runs of small frames into
/// compressed batches when enabled. Returns false when the peer died.
fn ship_records(
    stream: &mut TcpStream,
    shared: &Shared,
    epoch: u64,
    records: Vec<(u64, covidkg_store::WalRecord)>,
    next: &mut u64,
) -> bool {
    let mut pending: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut pending_bytes = 0usize;

    let flush = |stream: &mut TcpStream,
                 pending: &mut Vec<(u64, Vec<u8>)>,
                 pending_bytes: &mut usize,
                 next: &mut u64|
     -> bool {
        if pending.is_empty() {
            return true;
        }
        let last_seq = pending.last().expect("non-empty").0;
        let count = pending.len();
        if count == 1 || !shared.config.batch_frames {
            // A lone frame (or batching off): the standalone message is
            // cheaper than a batch header + compressor warm-up.
            for (seq, record) in pending.drain(..) {
                let msg = frame(epoch, seq, record);
                if send(stream, shared, &msg).is_none() {
                    return false;
                }
                shared.metrics.frame_shipped();
            }
        } else {
            // Entry bytes as the batch encoder lays them out (16-byte
            // header per record) — the compression baseline.
            let uncompressed = *pending_bytes + 16 * count;
            let msg = batch(epoch, std::mem::take(pending));
            let Some(wire) = send(stream, shared, &msg) else {
                return false;
            };
            shared.metrics.batch_shipped(count, uncompressed, wire);
        }
        *pending_bytes = 0;
        *next = last_seq + 1;
        true
    };

    for (seq, record) in records {
        let bytes = record.to_value().to_json().into_bytes();
        let full =
            pending.len() >= MAX_BATCH_FRAMES || pending_bytes + bytes.len() > MAX_BATCH_BYTES;
        if full && !flush(stream, &mut pending, &mut pending_bytes, next) {
            return false;
        }
        pending_bytes += bytes.len();
        pending.push((seq, bytes));
    }
    flush(stream, &mut pending, &mut pending_bytes, next)
}
