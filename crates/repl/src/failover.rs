//! Fenced failover: surviving primary death without losing a byte or
//! electing two leaders.
//!
//! # The fencing epoch
//!
//! Every leadership generation is numbered by a monotonic **fencing
//! epoch**. The epoch rides in every session handshake (Hello), every
//! stream preamble (Meta), every shipped record (Frame / FrameBatch)
//! and every Heartbeat. The rules are deliberately tiny:
//!
//! 1. A receiver **rejects** anything stamped with an epoch *older*
//!    than its own — the sender is a deposed ex-primary replaying
//!    stale state. (Replica side: the session aborts and
//!    `PullerState::fenced_rejects` counts it. Primary side: a Hello
//!    carrying a newer epoch marks the listener fenced and it stops
//!    shipping.)
//! 2. A receiver **adopts** any *newer* epoch it sees — a promotion
//!    happened upstream; the chain learns it from the next stamped
//!    message, which is how fencing propagates through cascading
//!    relays without any extra coordination.
//!
//! # Promotion
//!
//! On primary loss every survivor evaluates the same deterministic
//! rule over the same candidate list — [`elect`]: **highest applied
//! sequence wins; lowest node id breaks ties**. Because the rule is a
//! pure function of data every survivor already shares, no two nodes
//! can pick different winners. The winner bumps its epoch, persists it
//! (tmp + rename, like every store sidecar), takes WAL ownership —
//! its collections already came up through the store's torn-tail-
//! repairing open, so new writes append past the last applied frame —
//! and starts a listener that stamps the new epoch on everything it
//! ships. Survivors re-point their pullers at it; their durable
//! watermarks make resumption exact.
//!
//! A revived ex-primary is harmless from both directions: if it tries
//! to ship, its stale stamps are rejected (rule 1); if a current
//! replica says Hello to it with the newer epoch, it learns it was
//! deposed and fences itself.
//!
//! # The gauntlet
//!
//! [`run_failover_gauntlet`] kills the primary at the nasty moments —
//! at a frame boundary, mid-frame (a proxy severs the stream inside a
//! record), and during a snapshot bootstrap — then asserts exactly one
//! promotion, fenced-out revival, and byte-identical content-checksum
//! convergence across every survivor. Chaos phase 5 runs it; so does
//! the seeded property test in `tests/failover_prop.rs`.

use crate::gauntlet::{WireFault, WireProxy};
use crate::primary::{ReplConfig, ReplListener};
use crate::protocol::{frame, pump, Decoder, Message};
use crate::replica::ReplicaPuller;
use crate::ReplError;
use covidkg_rand::{Rng, SeedableRng, SmallRng};
use covidkg_store::wal;
use covidkg_store::{Collection, CollectionConfig, Database, RetryPolicy, StoreError};
use std::fmt;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared, monotonic fencing epoch — the replication cluster's
/// leadership generation counter.
///
/// Cloning shares the underlying counter: a node hands clones to its
/// pullers and any relay listener it runs, so an epoch learned from
/// upstream is instantly stamped on everything shipped downstream.
#[derive(Debug, Clone, Default)]
pub struct Epoch(Arc<AtomicU64>);

impl Epoch {
    /// An epoch starting at `initial`.
    pub fn new(initial: u64) -> Epoch {
        Epoch(Arc::new(AtomicU64::new(initial)))
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Adopt `seen` if it is newer (monotonic max). Returns the
    /// current value afterwards.
    pub fn observe(&self, seen: u64) -> u64 {
        self.0.fetch_max(seen, Ordering::AcqRel).max(seen)
    }

    /// Advance to the next leadership generation; returns the new value.
    pub fn bump(&self) -> u64 {
        self.0.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Load the epoch last persisted under `data_dir` (0 for a fresh
    /// node — the pre-failover generation).
    pub fn load(data_dir: impl AsRef<Path>) -> Result<Epoch, StoreError> {
        Ok(Epoch::new(wal::read_epoch(&epoch_anchor(data_dir.as_ref()))?))
    }

    /// Persist the current value under `data_dir` (tmp + rename), so a
    /// restart rejoins at this generation instead of a stale one.
    pub fn persist(&self, data_dir: impl AsRef<Path>) -> Result<(), StoreError> {
        wal::write_epoch(&epoch_anchor(data_dir.as_ref()), self.get())
    }
}

/// The epoch sidecar anchors on a per-node pseudo-file so
/// `wal::write_epoch` produces `<data_dir>/node.epoch`.
fn epoch_anchor(data_dir: &Path) -> PathBuf {
    data_dir.join("node")
}

/// Deterministic promotion rule: among `(node_id, applied_seq)`
/// candidates, the **highest applied sequence** wins (no acked byte is
/// abandoned); ties break toward the **lowest node id**. Returns the
/// winner's index, or `None` for an empty slate.
///
/// Every survivor runs this over the same candidate list, so no two
/// nodes can disagree about the winner — that, plus the fencing epoch,
/// is the whole split-brain story.
pub fn elect(candidates: &[(String, u64)]) -> Option<usize> {
    let mut winner: Option<usize> = None;
    for (i, (id, applied)) in candidates.iter().enumerate() {
        let better = match winner {
            None => true,
            Some(w) => {
                let (wid, wapplied) = &candidates[w];
                *applied > *wapplied || (*applied == *wapplied && id < wid)
            }
        };
        if better {
            winner = Some(i);
        }
    }
    winner
}

/// Failover gauntlet parameters.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// Seed driving the workload and every kill point.
    pub seed: u64,
    /// Documents written before the first kill.
    pub docs: usize,
    /// Unique suffix for the scratch directory.
    pub tag: String,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            seed: 0xC0BD,
            docs: 16,
            tag: "default".into(),
        }
    }
}

/// Outcome of a failover gauntlet run.
#[derive(Debug, Clone, Default)]
pub struct FailoverReport {
    /// Kill-and-recover scenarios executed.
    pub scenarios: usize,
    /// Primary kills performed.
    pub kills: usize,
    /// Promotions performed (must equal elections held — exactly one
    /// new primary per kill).
    pub promotions: usize,
    /// Sessions a fenced ex-primary refused after learning of a newer
    /// epoch (primary-side fencing).
    pub fenced_sessions: u64,
    /// Stale-epoch messages replicas rejected (replica-side fencing).
    pub stale_rejects: u64,
    /// Replication hops in the deepest cascaded chain exercised.
    pub cascade_hops: usize,
    /// Human-readable descriptions of every invariant that broke.
    pub failures: Vec<String>,
}

impl FailoverReport {
    /// True when every scenario held its invariants.
    pub fn converged(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for FailoverReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "failover gauntlet: {} scenarios ({} primary kills, {} promotions, {}-hop cascade)",
            self.scenarios, self.kills, self.promotions, self.cascade_hops
        )?;
        writeln!(
            f,
            "  {} fenced sessions, {} stale-epoch rejects observed",
            self.fenced_sessions, self.stale_rejects
        )?;
        if self.converged() {
            write!(
                f,
                "  PASS: exactly-one promotion per kill, revival fenced, survivors byte-identical"
            )
        } else {
            writeln!(f, "  FAIL: {} invariants broke:", self.failures.len())?;
            for failure in &self.failures {
                writeln!(f, "    - {failure}")?;
            }
            Ok(())
        }
    }
}

/// How long any convergence wait may take before it counts as failure.
const CONVERGE_TIMEOUT: Duration = Duration::from_secs(15);

fn policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        base: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
    }
}

fn shape() -> CollectionConfig {
    CollectionConfig::new("publications")
        .with_shards(2)
        .with_text_fields(["title"])
}

/// A lightweight cluster node for failover tests: one replicated
/// collection, an epoch handle, optionally a puller (follower role)
/// and/or a listener (leader or relay role). The full serving
/// [`crate::ReplicaNode`] carries the same pieces plus the query stack.
struct Node {
    id: String,
    dir: PathBuf,
    _db: Database,
    coll: Arc<Collection>,
    epoch: Epoch,
    puller: Option<ReplicaPuller>,
    listener: Option<ReplListener>,
}

impl Node {
    fn open(root: &Path, id: &str) -> Result<Node, ReplError> {
        let dir = root.join(id);
        std::fs::create_dir_all(&dir)?;
        let db = Database::open(&dir)?;
        let coll = db.get_or_create(shape())?;
        let epoch = Epoch::load(&dir)?;
        Ok(Node {
            id: id.to_string(),
            dir,
            _db: db,
            coll,
            epoch,
            puller: None,
            listener: None,
        })
    }

    fn follow(&mut self, upstream: SocketAddr) {
        self.stop_following();
        self.puller = Some(ReplicaPuller::start(
            Arc::clone(&self.coll),
            "publications",
            upstream,
            self.id.clone(),
            policy(),
            self.epoch.clone(),
        ));
    }

    fn stop_following(&mut self) {
        if let Some(mut p) = self.puller.take() {
            p.shutdown();
        }
    }

    fn applied(&self) -> u64 {
        self.coll.repl_watermark()
    }

    fn checksum(&self) -> u64 {
        self.coll.content_checksum()
    }

    fn stale_rejects(&self) -> u64 {
        self.puller
            .as_ref()
            .map(|p| p.state().fenced_rejects.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Promote: stop following, bump + persist the epoch, serve.
    fn promote(&mut self) -> Result<SocketAddr, ReplError> {
        self.stop_following();
        self.epoch.bump();
        self.epoch.persist(&self.dir)?;
        let listener = self.start_listener()?;
        let addr = listener.local_addr();
        self.listener = Some(listener);
        Ok(addr)
    }

    /// Start a listener over this node's collection with its shared
    /// epoch handle (leader serving, or cascading relay while still
    /// following upstream).
    fn start_listener(&self) -> Result<ReplListener, ReplError> {
        ReplListener::start(
            vec![("publications".into(), Arc::clone(&self.coll))],
            ReplConfig {
                heartbeat_interval: Duration::from_millis(100),
                epoch: self.epoch.clone(),
                ..ReplConfig::default()
            },
        )
        .map_err(ReplError::Io)
    }
}

fn write_docs(coll: &Collection, from: usize, count: usize) -> Result<(), ReplError> {
    for i in from..from + count {
        coll.insert(covidkg_json::obj! {
            "_id" => format!("p{i:04}"),
            "title" => format!("variant strain {i} report"),
            "n" => i as i64
        })?;
    }
    coll.sync()?;
    Ok(())
}

/// Wait until every follower matches the leader's checksum at (or
/// past) the leader's watermark.
fn await_convergence(leader: &Collection, followers: &[&Node]) -> Result<(), String> {
    let deadline = Instant::now() + CONVERGE_TIMEOUT;
    loop {
        let mark = leader.repl_watermark();
        let sum = leader.content_checksum();
        if followers
            .iter()
            .all(|n| n.applied() >= mark && n.checksum() == sum)
        {
            return Ok(());
        }
        if Instant::now() >= deadline {
            let states: Vec<String> = followers
                .iter()
                .map(|n| format!("{} applied {} (leader {})", n.id, n.applied(), mark))
                .collect();
            return Err(format!("no convergence: {}", states.join(", ")));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Run one election across survivors from each node's own view and
/// assert every view agrees; returns the winner's index in `nodes`.
fn agree_on_winner(nodes: &[&Node], report: &mut FailoverReport) -> Option<usize> {
    let slate: Vec<(String, u64)> = nodes
        .iter()
        .map(|n| (n.id.clone(), n.applied()))
        .collect();
    // Every survivor evaluates the same pure function over the same
    // slate; a disagreement here would be a split-brain in production.
    let votes: Vec<Option<usize>> = nodes.iter().map(|_| elect(&slate)).collect();
    let first = votes[0];
    if votes.iter().any(|v| *v != first) {
        report
            .failures
            .push(format!("election disagreed across survivors: {votes:?}"));
        return None;
    }
    first
}

/// A fake stale primary: accepts one session, replies with Meta and a
/// Frame both stamped `stale_epoch`, then waits for the replica to
/// hang up. Exercises the replica-side rejection path (rule 1) in
/// isolation — with real nodes the primary-side check fires first.
fn stale_frame_probe(stale_epoch: u64) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let handle = std::thread::spawn(move || {
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let mut decoder = Decoder::new();
        let mut scratch = [0u8; 16 * 1024];
        let deadline = Instant::now() + Duration::from_secs(5);
        // Wait for the Hello, then ship stale-stamped messages.
        while Instant::now() < deadline {
            match pump(&mut stream, &mut decoder, &mut scratch) {
                Ok(Some(msgs)) => {
                    if msgs
                        .iter()
                        .any(|m| matches!(m, Message::Hello { .. }))
                    {
                        // (Watermarks ride JSON as i64 — keep it sane.)
                        let _ = Message::Meta {
                            shards: 2,
                            text_fields: vec!["title".into()],
                            watermark: 1_000_000,
                            epoch: stale_epoch,
                        }
                        .write_to(&mut stream);
                        let _ = frame(
                            stale_epoch,
                            1_000_000,
                            b"{\"op\":\"d\",\"id\":\"bogus\"}".to_vec(),
                        )
                        .write_to(&mut stream);
                        // Linger until the replica rejects and closes.
                        let _ = pump(&mut stream, &mut decoder, &mut scratch);
                        std::thread::sleep(Duration::from_millis(100));
                        return;
                    }
                }
                Ok(None) | Err(_) => return,
            }
        }
    });
    Ok((addr, handle))
}

/// Kill-the-primary chaos gauntlet (chaos phase 5). See module docs
/// for the scenario list and asserted invariants.
pub fn run_failover_gauntlet(config: &FailoverConfig) -> Result<FailoverReport, ReplError> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut report = FailoverReport::default();
    let root = std::env::temp_dir().join(format!("covidkg-failover-{}", config.tag));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root)?;

    // === Scenario 1: kill at a frame boundary, promote, converge. ===
    // p0 ships a full workload to r1/r2, dies cleanly between frames;
    // the survivor with the higher applied sequence must take over.
    {
        let mut p0 = Node::open(&root, "p0")?;
        write_docs(&p0.coll, 0, config.docs)?;
        let addr = p0.promote()?; // epoch 0 -> 1: the initial leader
        let mut r1 = Node::open(&root, "r1")?;
        let mut r2 = Node::open(&root, "r2")?;
        r1.follow(addr);
        r2.follow(addr);
        await_convergence(&p0.coll, &[&r1, &r2])
            .map_err(|e| report.failures.push(format!("scenario 1 pre-kill: {e}")))
            .ok();

        // Kill: every shipped frame is either fully applied or not at
        // all (frame boundary) because both survivors are converged.
        p0.listener.take();
        report.kills += 1;

        r1.stop_following();
        r2.stop_following();
        let survivors = [&r1, &r2];
        if let Some(winner) = agree_on_winner(&survivors, &mut report) {
            report.promotions += 1;
            let (mut winner_node, mut loser_node) = if winner == 0 { (r1, r2) } else { (r2, r1) };
            let new_addr = winner_node.promote()?;
            loser_node.follow(new_addr);
            // Post-failover writes land on the new primary only.
            write_docs(&winner_node.coll, config.docs, 5)?;
            if let Err(e) = await_convergence(&winner_node.coll, &[&loser_node]) {
                report.failures.push(format!("scenario 1 post-promotion: {e}"));
            }
            if winner_node.epoch.get() != 2 {
                report.failures.push(format!(
                    "scenario 1: expected epoch 2 after promotion, got {}",
                    winner_node.epoch.get()
                ));
            }
            // === Scenario 1b: the old primary revives and must be
            // fenced from both directions. ===
            let revived = Node::open(&root, "p0")?; // epoch sidecar says 1
            let stale_listener = revived.start_listener()?;
            loser_node.stop_following();
            let loser_pre = loser_node.checksum();
            loser_node.follow(stale_listener.local_addr());
            let deadline = Instant::now() + Duration::from_secs(5);
            while !stale_listener.is_fenced() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            report.scenarios += 1;
            if !stale_listener.is_fenced() {
                report
                    .failures
                    .push("revival: stale primary never fenced itself".into());
            }
            report.fenced_sessions += stale_listener.stats().fenced_sessions;
            if loser_node.checksum() != loser_pre {
                report
                    .failures
                    .push("revival: follower state changed under a fenced primary".into());
            }
            loser_node.stop_following();

            // Replica-side rejection in isolation: a forged stale
            // stream must be refused by the epoch check itself.
            let (probe_addr, probe) = stale_frame_probe(0)?;
            loser_node.follow(probe_addr);
            let deadline = Instant::now() + Duration::from_secs(5);
            while loser_node.stale_rejects() == 0 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            let rejects = loser_node.stale_rejects();
            loser_node.stop_following();
            let _ = probe.join();
            report.scenarios += 1;
            report.stale_rejects += rejects;
            if rejects == 0 {
                report
                    .failures
                    .push("stale frames: replica never rejected epoch-0 stream".into());
            }
            if loser_node.checksum() != loser_pre {
                report
                    .failures
                    .push("stale frames: forged frame reached the store".into());
            }
        }
        report.scenarios += 1;
    }

    // === Scenario 2: kill mid-frame. A proxy severs the stream inside
    // a record; the replica holds a torn tail in its decoder, the
    // primary dies, and promotion must still converge. ===
    {
        let mut p0 = Node::open(&root, "mid-p0")?;
        write_docs(&p0.coll, 0, config.docs)?;
        let addr = p0.promote()?;
        let mut r1 = Node::open(&root, "mid-r1")?;
        let mut r2 = Node::open(&root, "mid-r2")?;
        // r1 syncs clean first so the cluster still holds every byte.
        r1.follow(addr);
        await_convergence(&p0.coll, &[&r1])
            .map_err(|e| report.failures.push(format!("scenario 2 pre-sync: {e}")))
            .ok();
        // r2's only session dies mid-frame at a seeded odd offset.
        let cut = rng.gen_range(30..200_u64) * 2 + 1;
        let mut proxy = WireProxy::start(addr, vec![WireFault::CutAfter(cut)])?;
        r2.follow(proxy.addr);
        std::thread::sleep(Duration::from_millis(50));
        // Primary dies with r2 mid-stream.
        p0.listener.take();
        report.kills += 1;
        proxy.shutdown();
        r1.stop_following();
        r2.stop_following();
        let survivors = [&r1, &r2];
        if let Some(winner) = agree_on_winner(&survivors, &mut report) {
            report.promotions += 1;
            // r1 converged fully, r2 was cut short: r1 must win unless
            // the cut landed after everything shipped.
            let (mut winner_node, mut loser_node) = if winner == 0 { (r1, r2) } else { (r2, r1) };
            let new_addr = winner_node.promote()?;
            loser_node.follow(new_addr);
            write_docs(&winner_node.coll, config.docs, 4)?;
            if let Err(e) = await_convergence(&winner_node.coll, &[&loser_node]) {
                report.failures.push(format!("scenario 2 post-promotion: {e}"));
            }
        }
        report.scenarios += 1;
    }

    // === Scenario 3: kill during snapshot bootstrap. The straggler's
    // checkpoint transfer is severed partway, the primary dies, and
    // the straggler must finish bootstrapping from the new primary. ===
    {
        let mut p0 = Node::open(&root, "snap-p0")?;
        write_docs(&p0.coll, 0, config.docs)?;
        p0.coll.snapshot()?; // compact: newcomers need a checkpoint
        let addr = p0.promote()?;
        let mut r1 = Node::open(&root, "snap-r1")?;
        r1.follow(addr);
        await_convergence(&p0.coll, &[&r1])
            .map_err(|e| report.failures.push(format!("scenario 3 pre-sync: {e}")))
            .ok();
        // The straggler's first (checkpoint) session is cut mid-way.
        let cut = rng.gen_range(80..400_u64);
        let mut proxy = WireProxy::start(addr, vec![WireFault::CutAfter(cut)])?;
        let mut r2 = Node::open(&root, "snap-r2")?;
        r2.follow(proxy.addr);
        std::thread::sleep(Duration::from_millis(30));
        p0.listener.take();
        report.kills += 1;
        proxy.shutdown();
        r1.stop_following();
        r2.stop_following();
        // The straggler holds no (or partial) state; r1 must win.
        let survivors = [&r1, &r2];
        if let Some(winner) = agree_on_winner(&survivors, &mut report) {
            report.promotions += 1;
            if survivors[winner].id != "snap-r1" && r1.applied() > r2.applied() {
                report
                    .failures
                    .push("scenario 3: straggler won over a caught-up replica".into());
            }
            let (mut winner_node, mut loser_node) = if winner == 0 { (r1, r2) } else { (r2, r1) };
            let new_addr = winner_node.promote()?;
            loser_node.follow(new_addr);
            if let Err(e) = await_convergence(&winner_node.coll, &[&loser_node]) {
                report.failures.push(format!("scenario 3 post-promotion: {e}"));
            }
        }
        report.scenarios += 1;
    }

    // === Scenario 4: cascading chain p0 -> r1 -> r2. Kill p0; r1 is
    // promoted mid-chain and its relay (same epoch handle) keeps r2
    // fed — the epoch bump must propagate to the chain's tail. ===
    {
        let mut p0 = Node::open(&root, "casc-p0")?;
        write_docs(&p0.coll, 0, config.docs)?;
        let addr = p0.promote()?;
        let mut r1 = Node::open(&root, "casc-r1")?;
        r1.follow(addr);
        let relay = r1.start_listener()?;
        let mut r2 = Node::open(&root, "casc-r2")?;
        r2.follow(relay.local_addr());
        report.cascade_hops = report.cascade_hops.max(2);
        await_convergence(&p0.coll, &[&r1, &r2])
            .map_err(|e| report.failures.push(format!("scenario 4 pre-kill: {e}")))
            .ok();
        // Kill the chain's head; promote r1 in place (it already has a
        // relay listener — promotion is just the epoch bump + WAL
        // ownership, and the shared handle re-stamps the live session).
        p0.listener.take();
        report.kills += 1;
        r1.stop_following();
        let pre_bump = r1.epoch.get();
        r1.epoch.bump();
        r1.epoch.persist(&r1.dir)?;
        report.promotions += 1;
        write_docs(&r1.coll, config.docs, 5)?;
        if let Err(e) = await_convergence(&r1.coll, &[&r2]) {
            report.failures.push(format!("scenario 4 post-promotion: {e}"));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while r2.epoch.get() <= pre_bump && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        if r2.epoch.get() != r1.epoch.get() {
            report.failures.push(format!(
                "scenario 4: cascade tail stuck at epoch {} (head at {})",
                r2.epoch.get(),
                r1.epoch.get()
            ));
        }
        report.scenarios += 1;
        drop(relay);
    }

    let _ = std::fs::remove_dir_all(&root);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elect_prefers_applied_then_lowest_id() {
        let slate = vec![
            ("r-c".to_string(), 10),
            ("r-a".to_string(), 12),
            ("r-b".to_string(), 12),
        ];
        assert_eq!(elect(&slate), Some(1), "highest applied, lowest id tie-break");
        assert_eq!(elect(&[]), None);
        let solo = vec![("only".to_string(), 0)];
        assert_eq!(elect(&solo), Some(0));
    }

    #[test]
    fn epoch_is_monotonic_shared_and_durable() {
        let e = Epoch::new(3);
        let clone = e.clone();
        assert_eq!(e.observe(1), 3, "older epochs never regress the counter");
        assert_eq!(e.observe(7), 7);
        assert_eq!(clone.get(), 7, "clones share the counter");
        assert_eq!(clone.bump(), 8);
        assert_eq!(e.get(), 8);

        let dir = std::env::temp_dir().join(format!("covidkg-epoch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        e.persist(&dir).unwrap();
        assert_eq!(Epoch::load(&dir).unwrap().get(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failover_gauntlet_converges_with_default_seed() {
        let report = run_failover_gauntlet(&FailoverConfig {
            docs: 12,
            tag: "unit".into(),
            ..FailoverConfig::default()
        })
        .expect("gauntlet runs");
        assert!(report.converged(), "invariants broke:\n{report}");
        assert!(report.kills >= 4, "every scenario kills the primary");
        assert_eq!(
            report.promotions, report.kills,
            "exactly one promotion per kill"
        );
        assert!(report.fenced_sessions >= 1, "revival was fenced");
        assert!(report.stale_rejects >= 1, "stale frames were rejected");
        assert_eq!(report.cascade_hops, 2, "the cascade chain ran");
    }
}
