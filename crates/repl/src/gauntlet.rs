//! Seeded replication convergence gauntlet.
//!
//! The crash-recovery gauntlet in covidkg-store proves a *single* node
//! comes back from any torn WAL; this one proves the *pair* does: a
//! replica whose disk is truncated at every frame boundary (plus
//! mid-frame cuts and flipped bytes), whose puller is killed and
//! restarted mid-stream, and whose wire is severed or corrupted by a
//! fault-injecting proxy must always reconnect and converge
//! byte-identical to the primary — checked with
//! [`Collection::content_checksum`] after every scenario.
//!
//! Everything is driven by one seed through `covidkg_rand`, so a
//! failing run replays exactly.

use crate::primary::{ReplConfig, ReplListener};
use crate::replica::ReplicaPuller;
use crate::ReplError;
use covidkg_rand::{Rng, SeedableRng, SmallRng};
use covidkg_store::wal;
use covidkg_store::{Collection, CollectionConfig, Database, RetryPolicy};
use std::fmt;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Gauntlet workload and damage parameters.
#[derive(Debug, Clone)]
pub struct ReplGauntletConfig {
    /// Seed driving the workload and every damage choice.
    pub seed: u64,
    /// Documents in the primary's initial workload (every 3rd updated,
    /// every 5th deleted, so all WAL record kinds ship).
    pub docs: usize,
    /// Mid-stream kill/restart rounds with live primary writes.
    pub kill_rounds: usize,
    /// Seeded mid-frame truncation points tried on top of the
    /// cut-at-every-boundary sweep.
    pub intra_frame_cuts: usize,
    /// Seeded single-byte flips applied to the replica's WAL.
    pub byte_flips: usize,
    /// Unique suffix for the scratch directory.
    pub tag: String,
}

impl Default for ReplGauntletConfig {
    fn default() -> Self {
        ReplGauntletConfig {
            seed: 0xC0BD,
            docs: 18,
            kill_rounds: 3,
            intra_frame_cuts: 4,
            byte_flips: 3,
            tag: "default".into(),
        }
    }
}

/// Outcome of a gauntlet run.
#[derive(Debug, Clone, Default)]
pub struct ReplGauntletReport {
    /// Convergence checks performed (each ends in a checksum compare).
    pub scenarios: usize,
    /// Mid-stream puller kill/restart cycles.
    pub kills: usize,
    /// Replica-WAL truncation points exercised (boundary + mid-frame).
    pub truncations: usize,
    /// Single-byte corruptions (replica disk + wire).
    pub corruptions: usize,
    /// Wire sessions severed or corrupted by the proxy.
    pub wire_faults: usize,
    /// Reconnect sessions observed across all replicas.
    pub reconnects: u64,
    /// Checkpoint bootstraps installed across all replicas.
    pub checkpoints: u64,
    /// Human-readable descriptions of every scenario that diverged.
    pub failures: Vec<String>,
}

impl ReplGauntletReport {
    /// True when every scenario converged byte-identical.
    pub fn converged(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for ReplGauntletReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "replication gauntlet: {} scenarios ({} kills, {} truncations, {} corruptions, {} wire faults)",
            self.scenarios, self.kills, self.truncations, self.corruptions, self.wire_faults
        )?;
        writeln!(
            f,
            "  {} reconnects, {} checkpoint bootstraps observed",
            self.reconnects, self.checkpoints
        )?;
        if self.converged() {
            write!(f, "  PASS: every replica converged byte-identical")
        } else {
            writeln!(f, "  FAIL: {} scenarios diverged:", self.failures.len())?;
            for failure in &self.failures {
                writeln!(f, "    - {failure}")?;
            }
            Ok(())
        }
    }
}

/// How long any single scenario may take to converge before it counts
/// as a divergence.
const CONVERGE_TIMEOUT: Duration = Duration::from_secs(15);

/// Backoff policy for gauntlet pullers: fast, so damage rounds are
/// cheap, but still exercising the growth path.
fn gauntlet_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        base: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
    }
}

fn shape() -> CollectionConfig {
    CollectionConfig::new("publications")
        .with_shards(2)
        .with_text_fields(["title"])
}

/// Apply one seeded mutation to the primary, tracking live ids.
fn mutate(c: &Collection, rng: &mut SmallRng, live: &mut Vec<String>, i: usize) -> Result<(), ReplError> {
    let id = format!("p{i:04}");
    c.insert(covidkg_json::obj! {
        "_id" => id.clone(),
        "title" => format!("variant strain {i} report"),
        "n" => i as i64
    })?;
    live.push(id);
    if i % 3 == 2 && !live.is_empty() {
        let pick = live[rng.gen_range(0..live.len())].clone();
        c.update(&pick, |d| d.insert("updated", i as i64))?;
    }
    if i % 5 == 4 && live.len() > 1 {
        let victim = live.remove(rng.gen_range(0..live.len()));
        c.delete(&victim)?;
    }
    Ok(())
}

/// Saved bytes of a replica's durable artifacts (WAL, snapshot, seq
/// sidecar), so a scenario can be restored to a known-good state before
/// damage is applied.
struct GoldenFiles {
    files: Vec<(PathBuf, Option<Vec<u8>>)>,
}

impl GoldenFiles {
    fn capture(dir: &Path) -> GoldenFiles {
        let files = ["publications.wal", "publications.snapshot", "publications.seq"]
            .iter()
            .map(|name| {
                let path = dir.join(name);
                let bytes = std::fs::read(&path).ok();
                (path, bytes)
            })
            .collect();
        GoldenFiles { files }
    }

    fn restore(&self) -> std::io::Result<()> {
        for (path, bytes) in &self.files {
            match bytes {
                Some(b) => std::fs::write(path, b)?,
                None => {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
        Ok(())
    }
}

fn truncate_file(path: &Path, len: u64) -> std::io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    f.sync_all()
}

fn flip_byte(path: &Path, offset: usize) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Ok(());
    }
    let at = offset % bytes.len();
    bytes[at] ^= 0x80;
    std::fs::write(path, bytes)
}

/// Counters harvested from one replica sync before it is torn down.
struct SyncOutcome {
    reconnects: u64,
    checkpoints: u64,
}

/// Open the replica directory, pull from `primary_addr` until the
/// replica's checksum matches the primary's, then tear everything down
/// (so the caller may damage the files). Returns `Err(reason)` when
/// convergence does not happen inside [`CONVERGE_TIMEOUT`].
fn sync_until_converged(
    dir: &Path,
    primary_addr: SocketAddr,
    primary: &Collection,
    replica_name: &str,
) -> Result<SyncOutcome, String> {
    let db = Database::open(dir).map_err(|e| format!("replica reopen failed: {e}"))?;
    let coll = db
        .get_or_create(shape())
        .map_err(|e| format!("replica collection failed: {e}"))?;
    let puller = ReplicaPuller::start(
        Arc::clone(&coll),
        "publications",
        primary_addr,
        replica_name,
        gauntlet_policy(),
        crate::failover::Epoch::default(),
    );
    let state = puller.state();
    let deadline = Instant::now() + CONVERGE_TIMEOUT;
    let converged = loop {
        let mark = primary.repl_watermark();
        if state.applied.load(Ordering::Acquire) >= mark
            && coll.content_checksum() == primary.content_checksum()
        {
            break true;
        }
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    let outcome = SyncOutcome {
        reconnects: state.reconnects.load(Ordering::Relaxed),
        checkpoints: state.checkpoints.load(Ordering::Relaxed),
    };
    drop(puller);
    drop(coll);
    drop(db);
    if converged {
        Ok(outcome)
    } else {
        Err(format!(
            "replica {replica_name:?} did not converge (applied {}, primary watermark {})",
            outcome_applied(&state),
            primary.repl_watermark()
        ))
    }
}

fn outcome_applied(state: &crate::replica::PullerState) -> u64 {
    state.applied.load(Ordering::Acquire)
}

/// One wire fault the proxy injects, indexed by session number; later
/// sessions pass through clean.
#[derive(Clone, Copy)]
pub(crate) enum WireFault {
    /// Forward only this many upstream bytes, then sever both ways.
    CutAfter(u64),
    /// XOR 0x80 into the upstream byte at this stream offset.
    FlipAt(u64),
}

/// A byte-level TCP proxy between replica and primary that injects one
/// scheduled fault per early session. Used to prove the replica
/// survives severed and corrupted wires (CRC check, reconnect).
pub(crate) struct WireProxy {
    pub(crate) addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl WireProxy {
    pub(crate) fn start(upstream: SocketAddr, schedule: Vec<WireFault>) -> std::io::Result<WireProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("covidkg-repl-gauntlet-proxy".into())
            .spawn(move || proxy_loop(listener, upstream, schedule, thread_stop))
            .expect("spawn proxy thread");
        Ok(WireProxy {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    pub(crate) fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WireProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn proxy_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    schedule: Vec<WireFault>,
    stop: Arc<AtomicBool>,
) {
    let mut session = 0usize;
    let mut handles = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(client) = conn else { continue };
        let fault = schedule.get(session).copied();
        session += 1;
        let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(1)) else {
            let _ = client.shutdown(Shutdown::Both);
            continue;
        };
        let session_stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            proxy_session(client, server, fault, session_stop);
        }));
        handles.retain(|h: &JoinHandle<()>| !h.is_finished());
    }
    for h in handles {
        let _ = h.join();
    }
}

/// Forward both directions; the fault (if any) applies to the
/// upstream→client (primary→replica) direction, where frames flow.
fn proxy_session(client: TcpStream, server: TcpStream, fault: Option<WireFault>, stop: Arc<AtomicBool>) {
    let tick = Duration::from_millis(20);
    let _ = client.set_read_timeout(Some(tick));
    let _ = server.set_read_timeout(Some(tick));
    let (Ok(client_rd), Ok(server_rd)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let up_stop = Arc::clone(&stop);
    // Replica→primary: always clean (acks and hellos pass through).
    let up = std::thread::spawn(move || {
        forward(client_rd, server, None, &up_stop);
    });
    forward(server_rd, client, fault, &stop);
    let _ = up.join();
}

/// Copy bytes from `src` to `dst`, applying `fault` at its offset.
fn forward(mut src: TcpStream, mut dst: TcpStream, fault: Option<WireFault>, stop: &AtomicBool) {
    let mut offset = 0u64;
    let mut buf = [0u8; 8 * 1024];
    loop {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => break,
        };
        let mut keep = n;
        match fault {
            Some(WireFault::CutAfter(limit)) => {
                let remaining = limit.saturating_sub(offset);
                if remaining == 0 {
                    break;
                }
                keep = (remaining as usize).min(n);
            }
            Some(WireFault::FlipAt(at)) if at >= offset && at < offset + n as u64 => {
                buf[(at - offset) as usize] ^= 0x80;
            }
            Some(WireFault::FlipAt(_)) | None => {}
        }
        let chunk = &buf[..keep];
        offset += chunk.len() as u64;
        if dst.write_all(chunk).is_err() {
            break;
        }
        let _ = dst.flush();
        if matches!(fault, Some(WireFault::CutAfter(limit)) if offset >= limit) {
            break;
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

/// Run the replication gauntlet. Scratch state lives under the system
/// temp directory, keyed by `config.tag`, and is recreated per run.
pub fn run_repl_gauntlet(config: &ReplGauntletConfig) -> Result<ReplGauntletReport, ReplError> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut report = ReplGauntletReport::default();
    let root = std::env::temp_dir().join(format!("covidkg-repl-gauntlet-{}", config.tag));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root)?;

    // --- Primary: seeded workload, then the replication listener. ---
    let primary_db = Database::open(root.join("primary"))?;
    let primary = primary_db.get_or_create(shape())?;
    let mut live = Vec::new();
    let mut next_doc = 0usize;
    for _ in 0..config.docs {
        mutate(&primary, &mut rng, &mut live, next_doc)?;
        next_doc += 1;
    }
    primary.sync()?;
    let listener = ReplListener::start(
        vec![("publications".into(), Arc::clone(&primary))],
        ReplConfig {
            heartbeat_interval: Duration::from_millis(100),
            ..ReplConfig::default()
        },
    )?;
    let addr = listener.local_addr();

    let replica_dir = root.join("replica-damage");
    std::fs::create_dir_all(&replica_dir)?;
    let harvest = |report: &mut ReplGauntletReport, outcome: Result<SyncOutcome, String>, what: &str| {
        report.scenarios += 1;
        match outcome {
            Ok(o) => {
                report.reconnects += o.reconnects;
                report.checkpoints += o.checkpoints;
            }
            Err(reason) => report.failures.push(format!("{what}: {reason}")),
        }
    };

    // --- Scenario 1: cold frame-by-frame bootstrap. ---
    harvest(
        &mut report,
        sync_until_converged(&replica_dir, addr, &primary, "gauntlet-r1"),
        "cold bootstrap",
    );

    // --- Scenario 2: cut the replica WAL at EVERY frame boundary, plus
    // seeded mid-frame cuts and byte flips, re-sync after each. ---
    let golden = GoldenFiles::capture(&replica_dir);
    let wal_bytes = std::fs::read(replica_dir.join("publications.wal")).unwrap_or_default();
    let ends = wal::frame_ends(&wal_bytes);
    let mut cuts: Vec<(u64, &'static str)> = Vec::new();
    cuts.push((0, "boundary"));
    for &end in &ends {
        cuts.push((end as u64, "boundary"));
    }
    for _ in 0..config.intra_frame_cuts {
        if wal_bytes.len() > 1 {
            cuts.push((rng.gen_range(1..wal_bytes.len()) as u64, "mid-frame"));
        }
    }
    for (len, kind) in cuts {
        golden.restore()?;
        truncate_file(&replica_dir.join("publications.wal"), len)?;
        report.truncations += 1;
        harvest(
            &mut report,
            sync_until_converged(&replica_dir, addr, &primary, "gauntlet-r1"),
            &format!("{kind} cut at {len}"),
        );
    }
    for _ in 0..config.byte_flips {
        if wal_bytes.is_empty() {
            break;
        }
        golden.restore()?;
        let at = rng.gen_range(0..wal_bytes.len());
        flip_byte(&replica_dir.join("publications.wal"), at)?;
        report.corruptions += 1;
        harvest(
            &mut report,
            sync_until_converged(&replica_dir, addr, &primary, "gauntlet-r1"),
            &format!("byte flip at {at}"),
        );
    }

    // --- Scenario 3: mid-stream kill/restart rounds under live writes;
    // some kills are followed by extra tail damage before restart. ---
    for round in 0..config.kill_rounds {
        for _ in 0..rng.gen_range(3..8_usize) {
            mutate(&primary, &mut rng, &mut live, next_doc)?;
            next_doc += 1;
        }
        // Start the replica catching up, kill it mid-apply.
        {
            let db = Database::open(&replica_dir)?;
            let coll = db.get_or_create(shape())?;
            let mut puller = ReplicaPuller::start(
                Arc::clone(&coll),
                "publications",
                addr,
                "gauntlet-r1",
                gauntlet_policy(),
                crate::failover::Epoch::default(),
            );
            std::thread::sleep(Duration::from_millis(rng.gen_range(1..25_u64)));
            puller.shutdown();
            report.kills += 1;
        }
        if rng.gen_range(0..2_u32) == 1 {
            let bytes = std::fs::read(replica_dir.join("publications.wal")).unwrap_or_default();
            let ends = wal::frame_ends(&bytes);
            if let Some(&end) = ends.get(rng.gen_range(0..ends.len().max(1)).min(ends.len().saturating_sub(1))) {
                truncate_file(&replica_dir.join("publications.wal"), end as u64)?;
                report.truncations += 1;
            }
        }
        harvest(
            &mut report,
            sync_until_converged(&replica_dir, addr, &primary, "gauntlet-r1"),
            &format!("kill round {round}"),
        );
    }

    // --- Scenario 4: checkpoint bootstrap. Compact the primary's WAL,
    // then a brand-new replica must arrive via snapshot shipping. ---
    primary.snapshot()?;
    let r2_dir = root.join("replica-straggler");
    std::fs::create_dir_all(&r2_dir)?;
    let straggler = sync_until_converged(&r2_dir, addr, &primary, "gauntlet-r2");
    if let Ok(o) = &straggler {
        if o.checkpoints == 0 {
            report
                .failures
                .push("straggler bootstrap: expected a checkpoint install, saw none".into());
        }
    }
    harvest(&mut report, straggler, "straggler bootstrap");

    // --- Scenario 5: wire faults. A proxy severs the first session
    // mid-frame and flips a byte in the second; the replica must detect
    // (CRC / protocol error), reconnect, and still converge. ---
    for _ in 0..4 {
        mutate(&primary, &mut rng, &mut live, next_doc)?;
        next_doc += 1;
    }
    let schedule = vec![
        WireFault::CutAfter(rng.gen_range(40..400_u64)),
        WireFault::FlipAt(rng.gen_range(300..1200_u64)),
    ];
    report.wire_faults += schedule.len();
    report.corruptions += 1;
    let mut proxy = WireProxy::start(addr, schedule)?;
    let r3_dir = root.join("replica-wire");
    std::fs::create_dir_all(&r3_dir)?;
    let wired = sync_until_converged(&r3_dir, proxy.addr, &primary, "gauntlet-r3");
    if let Ok(o) = &wired {
        if o.reconnects == 0 {
            report
                .failures
                .push("wire faults: expected at least one reconnect, saw none".into());
        }
    }
    harvest(&mut report, wired, "wire faults");
    proxy.shutdown();

    drop(listener);
    let _ = std::fs::remove_dir_all(&root);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauntlet_converges_with_default_seed() {
        let report = run_repl_gauntlet(&ReplGauntletConfig {
            docs: 10,
            kill_rounds: 2,
            intra_frame_cuts: 2,
            byte_flips: 2,
            tag: "unit".into(),
            ..ReplGauntletConfig::default()
        })
        .expect("gauntlet runs");
        assert!(report.converged(), "diverged:\n{report}");
        assert!(report.truncations > 10, "boundary sweep ran");
        assert!(report.kills == 2);
        assert!(report.checkpoints >= 1, "straggler used a checkpoint");
        assert!(report.reconnects >= 1, "wire faults forced reconnects");
    }
}
