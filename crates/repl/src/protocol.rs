//! The replication wire protocol: length-prefixed binary messages over
//! TCP, one session per (replica, collection).
//!
//! Framing: `u32` little-endian length, one kind byte, then
//! `length - 1` payload bytes. Structured payloads are JSON (the
//! workspace's own parser); the hot [`Message::Frame`] payload is
//! binary — 8-byte LE fencing epoch, 8-byte LE sequence number, 4-byte
//! LE CRC32 of the record bytes, then the record's WAL JSON — so a
//! flipped wire bit is caught by the CRC before the record ever reaches
//! the store. Runs of small frames ship as a [`Message::FrameBatch`]:
//! one epoch for the run, a declared uncompressed length, and the
//! frames' `(seq, crc, len, record)` entries LZ-compressed together
//! (see [`crate::compress`]), which is where bytes_shipped lives.
//!
//! Every shipped message that asserts leadership (Meta, Heartbeat,
//! Frame, FrameBatch) and every session request (Hello) carries the
//! sender's **fencing epoch** — the monotonic leadership generation.
//! Receivers reject anything stamped older than their own epoch, which
//! is what keeps a revived ex-primary from split-braining the cluster
//! (see `failover`).
//!
//! Session shape (replica drives):
//!
//! ```text
//! replica                         primary
//!   ListCollections  ──────────────▶
//!   ◀──────────────────  Collections     (bootstrap discovery)
//!
//!   Hello{collection, from_seq} ──▶
//!   ◀──────────────────  Meta{shards, text_fields, watermark}
//!   ◀─────  CheckpointBegin            (only when from_seq is older
//!   ◀─────  CheckpointDoc ×N            than the primary's compacted
//!   ◀─────  CheckpointEnd{checksum}     base — snapshot bootstrap)
//!   ◀─────  Frame ×N                   (live tail, streamed forever)
//!   Ack{applied} ─────────────────▶    (flow/lag feedback)
//!   ◀─────  Heartbeat{watermark}       (idle keep-alive, lag clock)
//! ```

use covidkg_json::{parse, Value};
use covidkg_store::wal::crc32;
use std::io::{Read, Write};

/// Upper bound on a single message, matching the store's own WAL frame
/// cap: anything larger is a corrupt or hostile peer.
pub const MAX_MESSAGE_BYTES: usize = 32 * 1024 * 1024;

/// Protocol-level failure: the peer sent something we refuse to parse.
#[derive(Debug)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replication protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn proto(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

/// One replication message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Replica → primary: start (or resume) streaming `collection`
    /// from `from_seq`. `replica` names the peer for metrics.
    Hello {
        /// Replica display name (metrics label).
        replica: String,
        /// Collection to stream.
        collection: String,
        /// First sequence number the replica still needs.
        from_seq: u64,
        /// Highest fencing epoch the replica has witnessed. A primary
        /// seeing a *newer* epoch here learns it has been deposed.
        epoch: u64,
    },
    /// Primary → replica: collection shape + current durable watermark.
    Meta {
        /// Shard count the replica must mirror.
        shards: usize,
        /// Text-index fields the replica must mirror.
        text_fields: Vec<String>,
        /// Primary's durable sequence watermark at session start.
        watermark: u64,
        /// Primary's fencing epoch; a replica with a newer epoch
        /// refuses the session (the sender is a fenced ex-primary).
        epoch: u64,
    },
    /// Primary → replica: a snapshot bootstrap follows (`docs`
    /// [`Message::CheckpointDoc`]s), established at sequence `seq`.
    CheckpointBegin {
        /// Sequence number the checkpoint is consistent with.
        seq: u64,
        /// Number of documents that follow.
        docs: u64,
    },
    /// One checkpoint document (raw JSON payload).
    CheckpointDoc(Value),
    /// Checkpoint complete; `checksum` is the primary's
    /// order-independent content checksum at `CheckpointBegin.seq`.
    CheckpointEnd {
        /// Expected [`covidkg_store::Collection::content_checksum`].
        checksum: u64,
    },
    /// One WAL record at `seq`. `crc` covers the record JSON bytes.
    Frame {
        /// Fencing epoch the sender held when shipping this record.
        epoch: u64,
        /// Sequence number assigned by the primary's WAL.
        seq: u64,
        /// CRC32 of the record bytes (wire-corruption tripwire).
        crc: u32,
        /// WAL record JSON bytes ([`covidkg_store::WalRecord`] shape).
        record: Vec<u8>,
    },
    /// A run of WAL records compressed together: one epoch stamp, then
    /// the frames' `(seq, crc, record)` entries LZ-packed as a unit.
    /// Decode inflates back to plain entries; per-record CRCs still
    /// verify on apply, so corruption inside the compressed payload is
    /// caught either by the decompressor or by the record checksums.
    FrameBatch {
        /// Fencing epoch the sender held when shipping this batch.
        epoch: u64,
        /// The batched frames in sequence order.
        frames: Vec<BatchFrame>,
    },
    /// Replica → primary: every sequence ≤ `applied` is durable on the
    /// replica.
    Ack {
        /// Highest contiguously applied sequence.
        applied: u64,
    },
    /// Primary → replica: nothing new, but the watermark is `watermark`
    /// (keeps the replica's lag clock honest while idle).
    Heartbeat {
        /// Primary's current durable watermark.
        watermark: u64,
        /// Primary's fencing epoch (lets an idle downstream learn of a
        /// promotion it missed).
        epoch: u64,
    },
    /// Replica → primary: which collections exist?
    ListCollections,
    /// Primary → replica: the collection names to replicate.
    Collections(Vec<String>),
    /// Either direction: fatal session error, close after sending.
    Error(String),
}

/// One record inside a [`Message::FrameBatch`] — the same payload a
/// standalone [`Message::Frame`] carries, minus the per-message epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchFrame {
    /// Sequence number assigned by the primary's WAL.
    pub seq: u64,
    /// CRC32 of the record bytes.
    pub crc: u32,
    /// WAL record JSON bytes.
    pub record: Vec<u8>,
}

const KIND_HELLO: u8 = 1;
const KIND_META: u8 = 2;
const KIND_CHECKPOINT_BEGIN: u8 = 3;
const KIND_CHECKPOINT_DOC: u8 = 4;
const KIND_CHECKPOINT_END: u8 = 5;
const KIND_FRAME: u8 = 6;
const KIND_ACK: u8 = 7;
const KIND_HEARTBEAT: u8 = 8;
const KIND_LIST: u8 = 9;
const KIND_COLLECTIONS: u8 = 10;
const KIND_ERROR: u8 = 11;
const KIND_FRAME_BATCH: u8 = 12;

/// Build a frame message from a record's JSON bytes, computing the CRC.
pub fn frame(epoch: u64, seq: u64, record: Vec<u8>) -> Message {
    let crc = crc32(&record);
    Message::Frame {
        epoch,
        seq,
        crc,
        record,
    }
}

/// Build a batch message from `(seq, record)` pairs, computing CRCs.
pub fn batch(epoch: u64, frames: Vec<(u64, Vec<u8>)>) -> Message {
    let frames = frames
        .into_iter()
        .map(|(seq, record)| BatchFrame {
            seq,
            crc: crc32(&record),
            record,
        })
        .collect();
    Message::FrameBatch { epoch, frames }
}

fn u64_field(v: &Value, key: &str) -> Result<u64, ProtocolError> {
    v.get(key)
        .and_then(Value::as_i64)
        .filter(|n| *n >= 0)
        .map(|n| n as u64)
        .ok_or_else(|| proto(format!("missing/invalid field {key:?}")))
}

/// Lenient variant for fields added after the original protocol (the
/// epoch stamps): absent or malformed reads as `default`.
fn u64_field_or(v: &Value, key: &str, default: u64) -> u64 {
    v.get(key)
        .and_then(Value::as_i64)
        .filter(|n| *n >= 0)
        .map(|n| n as u64)
        .unwrap_or(default)
}

impl Message {
    /// Encode to wire bytes (length prefix + kind + payload).
    pub fn encode(&self) -> Vec<u8> {
        let (kind, payload): (u8, Vec<u8>) = match self {
            Message::Hello {
                replica,
                collection,
                from_seq,
                epoch,
            } => {
                let v = covidkg_json::obj! {
                    "replica" => replica.clone(),
                    "collection" => collection.clone(),
                    "from_seq" => *from_seq as i64,
                    "epoch" => *epoch as i64,
                };
                (KIND_HELLO, v.to_json().into_bytes())
            }
            Message::Meta {
                shards,
                text_fields,
                watermark,
                epoch,
            } => {
                let fields: Vec<Value> =
                    text_fields.iter().map(|f| Value::from(f.clone())).collect();
                let v = covidkg_json::obj! {
                    "shards" => *shards as i64,
                    "text_fields" => Value::Array(fields),
                    "watermark" => *watermark as i64,
                    "epoch" => *epoch as i64,
                };
                (KIND_META, v.to_json().into_bytes())
            }
            Message::CheckpointBegin { seq, docs } => {
                let v = covidkg_json::obj! {
                    "seq" => *seq as i64,
                    "docs" => *docs as i64,
                };
                (KIND_CHECKPOINT_BEGIN, v.to_json().into_bytes())
            }
            Message::CheckpointDoc(doc) => (KIND_CHECKPOINT_DOC, doc.to_json().into_bytes()),
            Message::CheckpointEnd { checksum } => {
                // Hex string: the checksum uses the full u64 range, which
                // the JSON i64 cannot carry.
                let v = covidkg_json::obj! { "checksum" => format!("{checksum:016x}") };
                (KIND_CHECKPOINT_END, v.to_json().into_bytes())
            }
            Message::Frame {
                epoch,
                seq,
                crc,
                record,
            } => {
                let mut p = Vec::with_capacity(20 + record.len());
                p.extend_from_slice(&epoch.to_le_bytes());
                p.extend_from_slice(&seq.to_le_bytes());
                p.extend_from_slice(&crc.to_le_bytes());
                p.extend_from_slice(record);
                (KIND_FRAME, p)
            }
            Message::FrameBatch { epoch, frames } => {
                // Entries: u64 seq + u32 crc + u32 record_len + record,
                // concatenated, then LZ-compressed as one unit (cross-
                // frame redundancy is the whole point of batching).
                let mut entries = Vec::new();
                for f in frames {
                    entries.extend_from_slice(&f.seq.to_le_bytes());
                    entries.extend_from_slice(&f.crc.to_le_bytes());
                    entries.extend_from_slice(&(f.record.len() as u32).to_le_bytes());
                    entries.extend_from_slice(&f.record);
                }
                let packed = crate::compress::compress(&entries);
                let mut p = Vec::with_capacity(12 + packed.len());
                p.extend_from_slice(&epoch.to_le_bytes());
                p.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                p.extend_from_slice(&packed);
                (KIND_FRAME_BATCH, p)
            }
            Message::Ack { applied } => (KIND_ACK, applied.to_le_bytes().to_vec()),
            Message::Heartbeat { watermark, epoch } => {
                let mut p = Vec::with_capacity(16);
                p.extend_from_slice(&watermark.to_le_bytes());
                p.extend_from_slice(&epoch.to_le_bytes());
                (KIND_HEARTBEAT, p)
            }
            Message::ListCollections => (KIND_LIST, Vec::new()),
            Message::Collections(names) => {
                let arr: Vec<Value> = names.iter().map(|n| Value::from(n.clone())).collect();
                let v = covidkg_json::obj! { "collections" => Value::Array(arr) };
                (KIND_COLLECTIONS, v.to_json().into_bytes())
            }
            Message::Error(text) => (KIND_ERROR, text.clone().into_bytes()),
        };
        let len = (payload.len() + 1) as u32;
        let mut out = Vec::with_capacity(5 + payload.len());
        out.extend_from_slice(&len.to_le_bytes());
        out.push(kind);
        out.extend_from_slice(&payload);
        out
    }

    /// Decode one message from a kind byte and its payload.
    fn decode(kind: u8, payload: &[u8]) -> Result<Message, ProtocolError> {
        let json = |payload: &[u8]| -> Result<Value, ProtocolError> {
            let text = std::str::from_utf8(payload)
                .map_err(|_| proto("payload is not UTF-8"))?;
            parse(text).map_err(|e| proto(format!("payload is not JSON: {e:?}")))
        };
        let le_u64 = |payload: &[u8]| -> Result<u64, ProtocolError> {
            let bytes: [u8; 8] = payload
                .try_into()
                .map_err(|_| proto("expected 8-byte payload"))?;
            Ok(u64::from_le_bytes(bytes))
        };
        match kind {
            KIND_HELLO => {
                let v = json(payload)?;
                Ok(Message::Hello {
                    replica: v
                        .get("replica")
                        .and_then(Value::as_str)
                        .unwrap_or("anonymous")
                        .to_string(),
                    collection: v
                        .get("collection")
                        .and_then(Value::as_str)
                        .ok_or_else(|| proto("hello missing collection"))?
                        .to_string(),
                    from_seq: u64_field(&v, "from_seq")?,
                    epoch: u64_field_or(&v, "epoch", 0),
                })
            }
            KIND_META => {
                let v = json(payload)?;
                let text_fields = v
                    .get("text_fields")
                    .and_then(Value::as_array)
                    .map(|a| {
                        a.iter()
                            .filter_map(Value::as_str)
                            .map(str::to_string)
                            .collect()
                    })
                    .unwrap_or_default();
                Ok(Message::Meta {
                    shards: u64_field(&v, "shards")? as usize,
                    text_fields,
                    watermark: u64_field(&v, "watermark")?,
                    epoch: u64_field_or(&v, "epoch", 0),
                })
            }
            KIND_CHECKPOINT_BEGIN => {
                let v = json(payload)?;
                Ok(Message::CheckpointBegin {
                    seq: u64_field(&v, "seq")?,
                    docs: u64_field(&v, "docs")?,
                })
            }
            KIND_CHECKPOINT_DOC => Ok(Message::CheckpointDoc(json(payload)?)),
            KIND_CHECKPOINT_END => {
                let v = json(payload)?;
                let hex = v
                    .get("checksum")
                    .and_then(Value::as_str)
                    .ok_or_else(|| proto("checkpoint end missing checksum"))?;
                let checksum = u64::from_str_radix(hex, 16)
                    .map_err(|_| proto("checksum is not hex"))?;
                Ok(Message::CheckpointEnd { checksum })
            }
            KIND_FRAME => {
                if payload.len() < 20 {
                    return Err(proto("frame shorter than its fixed header"));
                }
                let epoch = u64::from_le_bytes(payload[..8].try_into().expect("sliced 8"));
                let seq = u64::from_le_bytes(payload[8..16].try_into().expect("sliced 8"));
                let crc = u32::from_le_bytes(payload[16..20].try_into().expect("sliced 4"));
                Ok(Message::Frame {
                    epoch,
                    seq,
                    crc,
                    record: payload[20..].to_vec(),
                })
            }
            KIND_FRAME_BATCH => {
                if payload.len() < 12 {
                    return Err(proto("frame batch shorter than its fixed header"));
                }
                let epoch = u64::from_le_bytes(payload[..8].try_into().expect("sliced 8"));
                let declared =
                    u32::from_le_bytes(payload[8..12].try_into().expect("sliced 4")) as usize;
                if declared > MAX_MESSAGE_BYTES {
                    return Err(proto(format!("batch declares {declared} bytes")));
                }
                let entries = crate::compress::decompress(&payload[12..], declared)
                    .map_err(|e| proto(format!("batch decompress: {e}")))?;
                if entries.len() != declared {
                    return Err(proto(format!(
                        "batch inflated to {} bytes, declared {declared}",
                        entries.len()
                    )));
                }
                let mut frames = Vec::new();
                let mut buf = &entries[..];
                while !buf.is_empty() {
                    if buf.len() < 16 {
                        return Err(proto("batch entry shorter than its header"));
                    }
                    let seq = u64::from_le_bytes(buf[..8].try_into().expect("sliced 8"));
                    let crc = u32::from_le_bytes(buf[8..12].try_into().expect("sliced 4"));
                    let len =
                        u32::from_le_bytes(buf[12..16].try_into().expect("sliced 4")) as usize;
                    if buf.len() < 16 + len {
                        return Err(proto("batch entry record truncated"));
                    }
                    frames.push(BatchFrame {
                        seq,
                        crc,
                        record: buf[16..16 + len].to_vec(),
                    });
                    buf = &buf[16 + len..];
                }
                Ok(Message::FrameBatch { epoch, frames })
            }
            KIND_ACK => Ok(Message::Ack {
                applied: le_u64(payload)?,
            }),
            KIND_HEARTBEAT => {
                if payload.len() != 16 {
                    return Err(proto("expected 16-byte heartbeat payload"));
                }
                Ok(Message::Heartbeat {
                    watermark: u64::from_le_bytes(payload[..8].try_into().expect("sliced 8")),
                    epoch: u64::from_le_bytes(payload[8..16].try_into().expect("sliced 8")),
                })
            }
            KIND_LIST => Ok(Message::ListCollections),
            KIND_COLLECTIONS => {
                let v = json(payload)?;
                let names = v
                    .get("collections")
                    .and_then(Value::as_array)
                    .ok_or_else(|| proto("collections message missing list"))?
                    .iter()
                    .filter_map(Value::as_str)
                    .map(str::to_string)
                    .collect();
                Ok(Message::Collections(names))
            }
            KIND_ERROR => Ok(Message::Error(
                String::from_utf8_lossy(payload).into_owned(),
            )),
            other => Err(proto(format!("unknown message kind {other}"))),
        }
    }

    /// Write this message to `w` (one `write_all` of the encoding).
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<usize> {
        let bytes = self.encode();
        w.write_all(&bytes)?;
        Ok(bytes.len())
    }
}

/// Incremental message decoder over a byte stream with read timeouts:
/// bytes go in whenever the socket yields them, complete messages come
/// out. Mirrors the HTTP parser's feed discipline in covidkg-net.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
}

impl Decoder {
    /// Fresh decoder.
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Append raw bytes and pop every complete message now available.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Vec<Message>, ProtocolError> {
        self.buf.extend_from_slice(bytes);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes(self.buf[..4].try_into().expect("sliced 4")) as usize;
            if len == 0 || len > MAX_MESSAGE_BYTES {
                return Err(proto(format!("bad message length {len}")));
            }
            if self.buf.len() < 4 + len {
                break;
            }
            let kind = self.buf[4];
            let msg = Message::decode(kind, &self.buf[5..4 + len])?;
            self.buf.drain(..4 + len);
            out.push(msg);
        }
        Ok(out)
    }

    /// Bytes buffered awaiting a complete message.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// Read from `stream` into `decoder`, returning any complete messages.
/// `Ok(None)` means the peer closed; an empty vec means a timeout tick
/// (caller should re-check its loop conditions and try again).
pub fn pump(
    stream: &mut impl Read,
    decoder: &mut Decoder,
    scratch: &mut [u8],
) -> Result<Option<Vec<Message>>, ProtocolError> {
    match stream.read(scratch) {
        Ok(0) => Ok(None),
        Ok(n) => decoder.feed(&scratch[..n]).map(Some),
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
                || e.kind() == std::io::ErrorKind::Interrupted =>
        {
            Ok(Some(Vec::new()))
        }
        Err(e) => Err(proto(format!("read failed: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let bytes = msg.encode();
        let mut d = Decoder::new();
        let out = d.feed(&bytes).unwrap();
        assert_eq!(out, vec![msg]);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn every_message_kind_round_trips() {
        round_trip(Message::Hello {
            replica: "r1".into(),
            collection: "publications".into(),
            from_seq: 42,
            epoch: 2,
        });
        round_trip(Message::Meta {
            shards: 4,
            text_fields: vec!["title".into(), "abstract".into()],
            watermark: 7,
            epoch: 1,
        });
        round_trip(Message::CheckpointBegin { seq: 9, docs: 3 });
        round_trip(Message::CheckpointDoc(
            covidkg_json::obj! { "_id" => "p1", "title" => "x" },
        ));
        round_trip(Message::CheckpointEnd {
            checksum: u64::MAX - 5,
        });
        round_trip(frame(3, 11, b"{\"op\":\"d\",\"id\":\"p1\"}".to_vec()));
        round_trip(batch(
            4,
            vec![
                (12, b"{\"op\":\"i\",\"doc\":{\"_id\":\"a\"}}".to_vec()),
                (13, b"{\"op\":\"i\",\"doc\":{\"_id\":\"b\"}}".to_vec()),
                (14, b"{\"op\":\"d\",\"id\":\"a\"}".to_vec()),
            ],
        ));
        round_trip(Message::FrameBatch {
            epoch: 0,
            frames: Vec::new(),
        });
        round_trip(Message::Ack { applied: 11 });
        round_trip(Message::Heartbeat {
            watermark: 12,
            epoch: 5,
        });
        round_trip(Message::ListCollections);
        round_trip(Message::Collections(vec![
            "publications".into(),
            "models".into(),
            "kg".into(),
        ]));
        round_trip(Message::Error("boom".into()));
    }

    #[test]
    fn batch_shipping_beats_loose_frames_on_the_wire() {
        // 64 similar records: one compressed batch must be much
        // smaller than 64 standalone frame messages.
        let frames: Vec<(u64, Vec<u8>)> = (0..64u64)
            .map(|i| {
                (
                    i + 1,
                    format!("{{\"op\":\"i\",\"doc\":{{\"_id\":\"doc-{i}\",\"title\":\"covid paper {i}\"}}}}")
                        .into_bytes(),
                )
            })
            .collect();
        let loose: usize = frames
            .iter()
            .map(|(seq, rec)| frame(1, *seq, rec.clone()).encode().len())
            .sum();
        let batched = batch(1, frames).encode().len();
        assert!(
            batched * 3 < loose,
            "expected ≥3x wire savings, got {loose} -> {batched}"
        );
    }

    #[test]
    fn batch_rejects_corrupt_compressed_payloads() {
        let msg = batch(1, vec![(1, b"{\"op\":\"d\",\"id\":\"x\"}".to_vec()); 4]);
        let good = msg.encode();
        // Understate the declared uncompressed length: inflate must not
        // silently truncate.
        let mut bad = good.clone();
        bad[5 + 8] = bad[5 + 8].wrapping_sub(1); // payload starts at 5; u32 len at offset 8
        let mut d = Decoder::new();
        assert!(d.feed(&bad).is_err());
        // Truncate the compressed tail mid-entry.
        let mut d = Decoder::new();
        let cut = good.len() - 3;
        let mut short = good[..cut].to_vec();
        let new_len = (cut - 4) as u32;
        short[..4].copy_from_slice(&new_len.to_le_bytes());
        assert!(d.feed(&short).is_err());
    }

    #[test]
    fn split_feeds_reassemble() {
        let msgs = [
            Message::Ack { applied: 1 },
            frame(1, 2, b"{\"op\":\"d\",\"id\":\"x\"}".to_vec()),
            Message::Heartbeat {
                watermark: 2,
                epoch: 1,
            },
        ];
        let stream: Vec<u8> = msgs.iter().flat_map(Message::encode).collect();
        let mut d = Decoder::new();
        let mut got = Vec::new();
        for b in stream {
            got.extend(d.feed(&[b]).unwrap());
        }
        assert_eq!(got.as_slice(), &msgs[..]);
    }

    #[test]
    fn frame_crc_catches_byte_flips() {
        let record = b"{\"op\":\"i\",\"doc\":{\"_id\":\"p\"}}".to_vec();
        let msg = frame(1, 5, record.clone());
        let Message::Frame { crc, .. } = &msg else {
            unreachable!()
        };
        let mut flipped = record;
        flipped[3] ^= 0x40;
        assert_ne!(*crc, crc32(&flipped), "crc must detect the flip");
    }

    #[test]
    fn oversized_and_zero_lengths_are_rejected() {
        let mut d = Decoder::new();
        let huge = ((MAX_MESSAGE_BYTES + 1) as u32).to_le_bytes();
        assert!(d.feed(&huge).is_err());
        let mut d = Decoder::new();
        assert!(d.feed(&[0, 0, 0, 0, 0]).is_err());
    }
}
