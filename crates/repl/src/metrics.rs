//! Replication counters, exposed through `/metrics` by covidkg-net.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shared counters updated by the primary's replication sessions.
#[derive(Debug, Default)]
pub struct ReplMetrics {
    bytes_shipped: AtomicU64,
    frames_shipped: AtomicU64,
    batches_shipped: AtomicU64,
    bytes_saved: AtomicU64,
    snapshot_bootstraps: AtomicU64,
    reconnects: AtomicU64,
    fenced_sessions: AtomicU64,
    epoch: AtomicU64,
    /// Last acked applied sequence per replica name, for the
    /// *publications* collection (the read-routing sequence token).
    applied: Mutex<BTreeMap<String, u64>>,
}

impl ReplMetrics {
    /// Record `n` wire bytes shipped to a replica.
    pub fn shipped(&self, bytes: usize) {
        self.bytes_shipped.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record one WAL frame shipped.
    pub fn frame_shipped(&self) {
        self.frames_shipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one compressed frame batch shipped: `frames` records went
    /// out as a unit, `uncompressed` entry bytes became `wire` bytes.
    pub fn batch_shipped(&self, frames: usize, uncompressed: usize, wire: usize) {
        self.batches_shipped.fetch_add(1, Ordering::Relaxed);
        self.frames_shipped
            .fetch_add(frames as u64, Ordering::Relaxed);
        self.bytes_saved.fetch_add(
            uncompressed.saturating_sub(wire) as u64,
            Ordering::Relaxed,
        );
    }

    /// Record a session rejected for carrying a stale fencing epoch.
    pub fn fenced_session(&self) {
        self.fenced_sessions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the node's current fencing epoch (gauge, kept at max).
    pub fn observe_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::Relaxed);
    }

    /// Record one snapshot bootstrap (straggler fed a checkpoint).
    pub fn snapshot_bootstrap(&self) {
        self.snapshot_bootstraps.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a session from a replica already seen before (reconnect).
    pub fn reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an ack: `replica` has applied everything ≤ `seq` in the
    /// publications collection. Returns whether this replica was known.
    pub fn acked(&self, replica: &str, seq: u64) -> bool {
        let mut map = self
            .applied
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let known = map.contains_key(replica);
        let entry = map.entry(replica.to_string()).or_insert(0);
        *entry = (*entry).max(seq);
        known
    }

    /// Point-in-time snapshot for exposition.
    pub fn snapshot(&self) -> ReplStats {
        ReplStats {
            bytes_shipped: self.bytes_shipped.load(Ordering::Relaxed),
            frames_shipped: self.frames_shipped.load(Ordering::Relaxed),
            batches_shipped: self.batches_shipped.load(Ordering::Relaxed),
            bytes_saved: self.bytes_saved.load(Ordering::Relaxed),
            snapshot_bootstraps: self.snapshot_bootstraps.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            fenced_sessions: self.fenced_sessions.load(Ordering::Relaxed),
            epoch: self.epoch.load(Ordering::Relaxed),
            replicas: self
                .applied
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }
}

/// Snapshot of [`ReplMetrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplStats {
    /// Total wire bytes shipped to replicas.
    pub bytes_shipped: u64,
    /// WAL frames shipped (standalone and inside batches).
    pub frames_shipped: u64,
    /// Compressed frame batches shipped.
    pub batches_shipped: u64,
    /// Entry bytes saved by batch compression (uncompressed − wire).
    pub bytes_saved: u64,
    /// Snapshot bootstraps served to stragglers.
    pub snapshot_bootstraps: u64,
    /// Sessions from replicas seen before (reconnects).
    pub reconnects: u64,
    /// Sessions rejected for carrying a stale fencing epoch.
    pub fenced_sessions: u64,
    /// Highest fencing epoch this node has stamped or witnessed.
    pub epoch: u64,
    /// (replica name, applied publications sequence) pairs.
    pub replicas: Vec<(String, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_acks_keep_the_max() {
        let m = ReplMetrics::default();
        m.shipped(100);
        m.frame_shipped();
        m.batch_shipped(7, 900, 300);
        m.snapshot_bootstrap();
        m.fenced_session();
        m.observe_epoch(3);
        m.observe_epoch(2);
        assert!(!m.acked("r1", 5), "first ack: unknown replica");
        assert!(m.acked("r1", 3), "later acks: known");
        m.reconnect();
        let s = m.snapshot();
        assert_eq!(s.bytes_shipped, 100);
        assert_eq!(s.frames_shipped, 8, "batch frames count toward the total");
        assert_eq!(s.batches_shipped, 1);
        assert_eq!(s.bytes_saved, 600);
        assert_eq!(s.snapshot_bootstraps, 1);
        assert_eq!(s.reconnects, 1);
        assert_eq!(s.fenced_sessions, 1);
        assert_eq!(s.epoch, 3, "epoch gauge keeps the max");
        assert_eq!(s.replicas, vec![("r1".to_string(), 5)], "ack is monotonic");
    }
}
