//! Replica side: per-collection pull loops and the full replica node.
//!
//! A [`ReplicaPuller`] owns one TCP session per collection: it asks the
//! primary for everything past its own durable watermark, applies
//! frames through the store's recovery-tolerant path (replay is
//! bit-identical to crash recovery), acks what it applied, and
//! reconnects with bounded backoff when the link drops. Torn local WAL
//! tails are repaired by `Collection::open` exactly as after a crash.
//!
//! A [`ReplicaNode`] assembles a *serving* replica: one shared
//! [`Database`] whose collections the pullers feed, a
//! [`covidkg_core::CovidKg`] reopened over those same live collections
//! once the initial sync converges, a [`covidkg_serve::Server`] on top,
//! and a refresh thread that rebuilds derived state (KG document,
//! profiles, generation) whenever applied frames advance.

use crate::failover::Epoch;
use crate::primary::{docs_checksum, ReplConfig, ReplListener};
use crate::protocol::{pump, BatchFrame, Decoder, Message};
use crate::ReplError;
use covidkg_core::{CovidKg, CovidKgConfig};
use covidkg_json::{parse, Value};
use covidkg_serve::{ServeConfig, Server};
use covidkg_store::wal::crc32;
use covidkg_store::{Collection, CollectionConfig, Database, RetryPolicy, WalRecord};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a single connect attempt may block.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);

/// Read-timeout tick inside a session.
const TICK: Duration = Duration::from_millis(50);

/// A healthy primary heartbeats every few hundred milliseconds, so a
/// session that decodes *no* message for this long is wedged — a
/// half-open TCP connection, or a corrupted length prefix that left the
/// decoder waiting on a frame that will never complete. Drop it and
/// reconnect; the durable watermark makes the retry safe.
const SESSION_STALL: Duration = Duration::from_secs(5);

/// Live state of one puller, shared with routers and metrics.
#[derive(Debug, Default)]
pub struct PullerState {
    /// Highest contiguously applied (durable) sequence on the replica.
    pub applied: AtomicU64,
    /// Last watermark the primary reported for this collection.
    pub primary_watermark: AtomicU64,
    /// Completed sessions beyond the first (reconnects).
    pub reconnects: AtomicU64,
    /// Snapshot bootstraps installed.
    pub checkpoints: AtomicU64,
    /// Sessions aborted because the sender's fencing epoch was older
    /// than ours — a deposed ex-primary tried to ship stale frames.
    pub fenced_rejects: AtomicU64,
    /// Set once the replica has caught up with the primary's watermark
    /// at least once (sticky).
    pub synced: AtomicBool,
}

impl PullerState {
    /// Current lag in sequence numbers (0 when caught up).
    pub fn lag(&self) -> u64 {
        self.primary_watermark
            .load(Ordering::Acquire)
            .saturating_sub(self.applied.load(Ordering::Acquire))
    }
}

/// One collection's pull loop. Dropping stops it.
#[derive(Debug)]
pub struct ReplicaPuller {
    collection: String,
    stop: Arc<AtomicBool>,
    state: Arc<PullerState>,
    handle: Option<JoinHandle<()>>,
}

impl ReplicaPuller {
    /// Start pulling `collection` from `primary` into `coll`. `epoch`
    /// is the node's shared fencing-epoch handle: the puller stamps it
    /// on its Hello, adopts any newer epoch the stream carries, and
    /// refuses frames stamped older (a fenced ex-primary).
    pub fn start(
        coll: Arc<Collection>,
        collection: impl Into<String>,
        primary: SocketAddr,
        replica_name: impl Into<String>,
        policy: RetryPolicy,
        epoch: Epoch,
    ) -> ReplicaPuller {
        let collection = collection.into();
        let replica_name = replica_name.into();
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(PullerState::default());
        state
            .applied
            .store(coll.repl_watermark(), Ordering::Release);
        let thread_stop = Arc::clone(&stop);
        let thread_state = Arc::clone(&state);
        let thread_collection = collection.clone();
        let handle = std::thread::Builder::new()
            .name(format!("covidkg-repl-pull-{collection}"))
            .spawn(move || {
                run_puller(
                    coll,
                    &thread_collection,
                    primary,
                    &replica_name,
                    &policy,
                    &thread_stop,
                    &thread_state,
                    &epoch,
                );
            })
            .expect("spawn puller thread");
        ReplicaPuller {
            collection,
            stop,
            state,
            handle: Some(handle),
        }
    }

    /// The collection this puller feeds.
    pub fn collection(&self) -> &str {
        &self.collection
    }

    /// Shared live state (applied sequence, lag, reconnect counters).
    pub fn state(&self) -> Arc<PullerState> {
        Arc::clone(&self.state)
    }

    /// Signal the pull loop to stop and join it. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReplicaPuller {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Sleep `policy.backoff(attempt)` in small slices so a stop signal is
/// noticed promptly; saturates the attempt counter at `max_retries`.
fn backoff_sleep(policy: &RetryPolicy, attempt: &mut u32, stop: &AtomicBool) {
    let total = policy.backoff(*attempt).max(Duration::from_millis(1));
    *attempt = attempt.saturating_add(1).min(policy.max_retries.max(1));
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !stop.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(5).min(total));
    }
}

#[allow(clippy::too_many_arguments)]
fn run_puller(
    coll: Arc<Collection>,
    collection: &str,
    primary: SocketAddr,
    replica_name: &str,
    policy: &RetryPolicy,
    stop: &AtomicBool,
    state: &PullerState,
    epoch: &Epoch,
) {
    let mut attempt = 0u32;
    let mut sessions = 0u64;
    while !stop.load(Ordering::Acquire) {
        let stream = match TcpStream::connect_timeout(&primary, CONNECT_TIMEOUT) {
            Ok(s) => s,
            Err(_) => {
                backoff_sleep(policy, &mut attempt, stop);
                continue;
            }
        };
        if sessions > 0 {
            state.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        sessions += 1;
        // A session that made progress resets the backoff clock.
        if run_session(stream, &coll, collection, replica_name, stop, state, epoch).is_ok() {
            attempt = 0;
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
        backoff_sleep(policy, &mut attempt, stop);
    }
}

/// A partially received checkpoint.
struct CheckpointBuf {
    seq: u64,
    expect: u64,
    docs: Vec<Value>,
}

/// One replication session. `Ok(())` means the session made progress
/// (or ended cleanly); `Err` means it died before achieving anything,
/// which keeps the reconnect backoff growing.
#[allow(clippy::too_many_arguments)]
fn run_session(
    mut stream: TcpStream,
    coll: &Collection,
    collection: &str,
    replica_name: &str,
    stop: &AtomicBool,
    state: &PullerState,
    epoch: &Epoch,
) -> Result<(), ReplError> {
    let _ = stream.set_read_timeout(Some(TICK));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let durable = coll.repl_watermark();
    state.applied.store(durable, Ordering::Release);
    Message::Hello {
        replica: replica_name.to_string(),
        collection: collection.to_string(),
        from_seq: durable + 1,
        epoch: epoch.get(),
    }
    .write_to(&mut stream)?;

    // Reject anything stamped with an epoch older than ours (a fenced
    // ex-primary replaying stale frames); adopt anything newer (a
    // promotion upstream we hadn't heard about yet).
    let check_epoch = |msg_epoch: u64, what: &str| -> Result<(), ReplError> {
        let ours = epoch.get();
        if msg_epoch < ours {
            state.fenced_rejects.fetch_add(1, Ordering::Relaxed);
            return Err(ReplError::Protocol(format!(
                "stale {what}: epoch {msg_epoch} < ours {ours}"
            )));
        }
        epoch.observe(msg_epoch);
        Ok(())
    };

    let mut decoder = Decoder::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut checkpoint: Option<CheckpointBuf> = None;
    let mut meta_seen = false;
    let mut progressed = false;
    let mut last_message = Instant::now();
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let msgs = match pump(&mut stream, &mut decoder, &mut scratch) {
            Ok(Some(msgs)) => msgs,
            Ok(None) => return if progressed { Ok(()) } else { Err(ReplError::closed()) },
            Err(e) => return Err(ReplError::Protocol(e.0)),
        };
        if msgs.is_empty() {
            if last_message.elapsed() >= SESSION_STALL {
                return Err(ReplError::Protocol("session stalled (no messages)".into()));
            }
        } else {
            last_message = Instant::now();
        }
        let mut advanced = false;
        for msg in msgs {
            match msg {
                Message::Meta {
                    watermark,
                    epoch: msg_epoch,
                    ..
                } => {
                    check_epoch(msg_epoch, "meta")?;
                    meta_seen = true;
                    bump_max(&state.primary_watermark, watermark);
                }
                Message::Heartbeat {
                    watermark,
                    epoch: msg_epoch,
                } => {
                    check_epoch(msg_epoch, "heartbeat")?;
                    meta_seen = true;
                    bump_max(&state.primary_watermark, watermark);
                }
                Message::CheckpointBegin { seq, docs } => {
                    // Checkpoint messages carry no epoch of their own:
                    // they are only trustworthy after this session's
                    // epoch was validated by a Meta/Heartbeat. Without
                    // this gate a fenced ex-primary (or forged peer)
                    // could skip Meta and overwrite the whole
                    // collection via a snapshot.
                    if !meta_seen {
                        state.fenced_rejects.fetch_add(1, Ordering::Relaxed);
                        return Err(ReplError::Protocol(
                            "checkpoint before epoch-checked meta".into(),
                        ));
                    }
                    checkpoint = Some(CheckpointBuf {
                        seq,
                        expect: docs,
                        docs: Vec::with_capacity(docs.min(65_536) as usize),
                    });
                }
                Message::CheckpointDoc(doc) => match &mut checkpoint {
                    Some(buf) => buf.docs.push(doc),
                    None => return Err(ReplError::Protocol("checkpoint doc before begin".into())),
                },
                Message::CheckpointEnd { checksum } => {
                    let Some(buf) = checkpoint.take() else {
                        return Err(ReplError::Protocol("checkpoint end before begin".into()));
                    };
                    if buf.docs.len() as u64 != buf.expect {
                        return Err(ReplError::Protocol(format!(
                            "checkpoint truncated: {}/{} docs",
                            buf.docs.len(),
                            buf.expect
                        )));
                    }
                    if docs_checksum(buf.docs.iter()) != checksum {
                        // Corrupt transfer: drop the session and re-sync.
                        return Err(ReplError::Protocol("checkpoint checksum mismatch".into()));
                    }
                    coll.install_checkpoint(buf.seq, buf.docs)?;
                    state.checkpoints.fetch_add(1, Ordering::Relaxed);
                    bump_max(&state.applied, buf.seq);
                    advanced = true;
                    progressed = true;
                }
                Message::Frame {
                    epoch: msg_epoch,
                    seq,
                    crc,
                    record,
                } => {
                    check_epoch(msg_epoch, "frame")?;
                    if apply_frame(coll, state, seq, crc, &record)? {
                        advanced = true;
                        progressed = true;
                    }
                }
                Message::FrameBatch {
                    epoch: msg_epoch,
                    frames,
                } => {
                    check_epoch(msg_epoch, "frame batch")?;
                    for BatchFrame { seq, crc, record } in frames {
                        if apply_frame(coll, state, seq, crc, &record)? {
                            advanced = true;
                            progressed = true;
                        }
                    }
                }
                Message::Error(text) => return Err(ReplError::Protocol(text)),
                // Replica never expects handshake messages here.
                _ => {}
            }
        }
        if meta_seen
            && state.applied.load(Ordering::Acquire)
                >= state.primary_watermark.load(Ordering::Acquire)
        {
            state.synced.store(true, Ordering::Release);
        }
        if advanced {
            Message::Ack {
                applied: state.applied.load(Ordering::Acquire),
            }
            .write_to(&mut stream)?;
            let _ = stream.flush();
        }
    }
}

fn bump_max(cell: &AtomicU64, value: u64) {
    cell.fetch_max(value, Ordering::AcqRel);
}

/// Verify and apply one shipped WAL record; returns whether the store
/// advanced. A CRC/parse failure or apply gap aborts the session — the
/// reconnect re-requests from the durable watermark, which repairs it.
fn apply_frame(
    coll: &Collection,
    state: &PullerState,
    seq: u64,
    crc: u32,
    record: &[u8],
) -> Result<bool, ReplError> {
    if crc32(record) != crc {
        // A flipped wire bit: never let it near the WAL.
        return Err(ReplError::Protocol(format!(
            "frame {seq} failed its crc check"
        )));
    }
    let text = std::str::from_utf8(record)
        .map_err(|_| ReplError::Protocol("frame is not UTF-8".into()))?;
    let value = parse(text).map_err(|e| ReplError::Protocol(format!("frame is not JSON: {e:?}")))?;
    let rec = WalRecord::from_value(&value)?;
    let applied = coll.apply_replicated(seq, &rec)?;
    bump_max(&state.applied, coll.repl_watermark());
    Ok(applied)
}

/// Ask the primary which collections it serves.
pub fn list_collections(primary: SocketAddr) -> Result<Vec<String>, ReplError> {
    let mut stream = TcpStream::connect_timeout(&primary, CONNECT_TIMEOUT)?;
    let _ = stream.set_read_timeout(Some(TICK));
    Message::ListCollections.write_to(&mut stream)?;
    let mut decoder = Decoder::new();
    let mut scratch = vec![0u8; 16 * 1024];
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        match pump(&mut stream, &mut decoder, &mut scratch) {
            Ok(Some(msgs)) => {
                for msg in msgs {
                    match msg {
                        Message::Collections(names) => return Ok(names),
                        Message::Error(text) => return Err(ReplError::Protocol(text)),
                        _ => {}
                    }
                }
            }
            Ok(None) => return Err(ReplError::closed()),
            Err(e) => return Err(ReplError::Protocol(e.0)),
        }
    }
    Err(ReplError::Timeout("collection list".into()))
}

/// Fetch a collection's shape (shard count, text fields) from the
/// primary, without consuming its stream.
pub fn fetch_meta(
    primary: SocketAddr,
    collection: &str,
    replica_name: &str,
) -> Result<(usize, Vec<String>), ReplError> {
    let mut stream = TcpStream::connect_timeout(&primary, CONNECT_TIMEOUT)?;
    let _ = stream.set_read_timeout(Some(TICK));
    Message::Hello {
        replica: format!("{replica_name}:meta"),
        collection: collection.to_string(),
        // The meta reply comes first regardless of the sequence asked;
        // a far-future sequence keeps the stream quiet afterwards.
        // (Sequences ride JSON as i64, so i64::MAX is the wire's top.)
        from_seq: i64::MAX as u64,
        // A probe never asserts leadership: epoch 0 can't fence anyone.
        epoch: 0,
    }
    .write_to(&mut stream)?;
    let mut decoder = Decoder::new();
    let mut scratch = vec![0u8; 16 * 1024];
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        match pump(&mut stream, &mut decoder, &mut scratch) {
            Ok(Some(msgs)) => {
                for msg in msgs {
                    match msg {
                        Message::Meta {
                            shards,
                            text_fields,
                            ..
                        } => return Ok((shards, text_fields)),
                        Message::Error(text) => return Err(ReplError::Protocol(text)),
                        _ => {}
                    }
                }
            }
            Ok(None) => return Err(ReplError::closed()),
            Err(e) => return Err(ReplError::Protocol(e.0)),
        }
    }
    Err(ReplError::Timeout(format!("meta for {collection:?}")))
}

/// Configuration for a full serving replica node.
#[derive(Debug, Clone)]
pub struct ReplicaNodeConfig {
    /// Primary's replication listener address.
    pub primary: SocketAddr,
    /// This replica's name (metrics label on the primary).
    pub name: String,
    /// Local data directory for the replicated collections.
    pub data_dir: String,
    /// Serving configuration for the local query server.
    pub serve: ServeConfig,
    /// Reconnect backoff policy.
    pub reconnect: RetryPolicy,
    /// How often the refresh thread checks for applied progress.
    pub refresh_interval: Duration,
    /// How long to wait for the initial sync before giving up.
    pub sync_timeout: Duration,
}

impl ReplicaNodeConfig {
    /// Defaults for `primary`, naming the replica `name`.
    pub fn new(primary: SocketAddr, name: impl Into<String>, data_dir: impl Into<String>) -> Self {
        ReplicaNodeConfig {
            primary,
            name: name.into(),
            data_dir: data_dir.into(),
            serve: ServeConfig::default(),
            reconnect: RetryPolicy {
                max_retries: 8,
                base: Duration::from_millis(10),
                max_backoff: Duration::from_millis(500),
            },
            refresh_interval: Duration::from_millis(100),
            sync_timeout: Duration::from_secs(30),
        }
    }
}

/// A serving replica: replicated collections + a local query server
/// that refreshes derived state as frames apply.
pub struct ReplicaNode {
    name: String,
    data_dir: String,
    reconnect: RetryPolicy,
    server: Arc<Server>,
    collections: BTreeMap<String, Arc<Collection>>,
    pullers: Vec<ReplicaPuller>,
    epoch: Epoch,
    refresh_stop: Arc<AtomicBool>,
    refresh_handle: Option<JoinHandle<()>>,
}

impl ReplicaNode {
    /// Bootstrap a replica node: discover the primary's collections,
    /// mirror their shapes, stream them to convergence, then assemble
    /// the serving stack over the same live collections.
    pub fn start(config: ReplicaNodeConfig) -> Result<ReplicaNode, ReplError> {
        // Discovery, with bounded retries while the primary comes up.
        let deadline = Instant::now() + config.sync_timeout;
        let names = loop {
            match list_collections(config.primary) {
                Ok(names) if !names.is_empty() => break names,
                Ok(_) | Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Ok(_) => return Err(ReplError::Timeout("empty collection list".into())),
                Err(e) => return Err(e),
            }
        };
        let db = Database::open(&config.data_dir)?;
        // Rejoin at the leadership generation we last witnessed — a
        // replica restarted after a failover must not trust a fenced
        // ex-primary just because its own epoch reset to zero.
        let epoch = Epoch::load(&config.data_dir)?;
        let mut collections = BTreeMap::new();
        for name in &names {
            let (shards, text_fields) = fetch_meta(config.primary, name, &config.name)?;
            let coll = db.get_or_create(
                CollectionConfig::new(name.clone())
                    .with_shards(shards)
                    .with_text_fields(text_fields),
            )?;
            collections.insert(name.clone(), coll);
        }
        let pullers: Vec<ReplicaPuller> = collections
            .iter()
            .map(|(name, coll)| {
                ReplicaPuller::start(
                    Arc::clone(coll),
                    name.clone(),
                    config.primary,
                    config.name.clone(),
                    config.reconnect,
                    epoch.clone(),
                )
            })
            .collect();
        // Initial sync barrier: the serving stack needs the replicated
        // models and KG document before it can assemble.
        while !pullers.iter().all(|p| p.state().synced.load(Ordering::Acquire)) {
            if Instant::now() >= deadline {
                return Err(ReplError::Timeout("initial sync".into()));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // The system's own config rode along in the replicated kg
        // collection; adopt it with our local data dir.
        let saved = collections
            .get("kg")
            .and_then(|kg| kg.get("config"))
            .map(|doc| CovidKgConfig::from_json(doc.get("config").unwrap_or(&Value::Null)))
            .ok_or_else(|| ReplError::Protocol("replicated kg has no config document".into()))?;
        let system_config = CovidKgConfig {
            data_dir: Some(config.data_dir.clone()),
            ..saved
        };
        let system = CovidKg::reopen_with(db, system_config)?;
        let server = Arc::new(Server::start(system, config.serve.clone()));

        // Refresh thread: when applied frames advance, rebuild derived
        // state (KG doc, profiles) and bump the generation so caches
        // re-key.
        let refresh_stop = Arc::new(AtomicBool::new(false));
        let watch: Vec<Arc<PullerState>> = pullers.iter().map(ReplicaPuller::state).collect();
        let refresh_server = Arc::clone(&server);
        let thread_stop = Arc::clone(&refresh_stop);
        let interval = config.refresh_interval;
        let refresh_handle = std::thread::Builder::new()
            .name("covidkg-repl-refresh".into())
            .spawn(move || {
                let applied_sum =
                    |w: &[Arc<PullerState>]| -> u64 {
                        w.iter().map(|s| s.applied.load(Ordering::Acquire)).sum()
                    };
                let mut last = applied_sum(&watch);
                while !thread_stop.load(Ordering::Acquire) {
                    std::thread::sleep(interval);
                    let now = applied_sum(&watch);
                    if now != last {
                        last = now;
                        let _ = refresh_server.with_system_mut(CovidKg::refresh_derived);
                    }
                }
            })
            .expect("spawn refresh thread");

        Ok(ReplicaNode {
            name: config.name,
            data_dir: config.data_dir,
            reconnect: config.reconnect,
            server,
            collections,
            pullers,
            epoch,
            refresh_stop,
            refresh_handle: Some(refresh_handle),
        })
    }

    /// This replica's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The local query server over the replicated data.
    pub fn server(&self) -> Arc<Server> {
        Arc::clone(&self.server)
    }

    /// Live state of the publications puller (the read-routing token).
    pub fn publications_state(&self) -> Arc<PullerState> {
        self.pullers
            .iter()
            .find(|p| p.collection() == "publications")
            .map(|p| p.state())
            .unwrap_or_default()
    }

    /// Highest applied publications sequence.
    pub fn applied(&self) -> u64 {
        self.publications_state().applied.load(Ordering::Acquire)
    }

    /// Current publications lag behind the primary's last report.
    pub fn lag(&self) -> u64 {
        self.publications_state().lag()
    }

    /// Content checksum of a replicated collection (convergence check).
    pub fn checksum(&self, collection: &str) -> Option<u64> {
        self.collections.get(collection).map(|c| c.content_checksum())
    }

    /// Names of the replicated collections.
    pub fn collections(&self) -> Vec<String> {
        self.collections.keys().cloned().collect()
    }

    /// The node's shared fencing-epoch handle.
    pub fn epoch_handle(&self) -> Epoch {
        self.epoch.clone()
    }

    /// The highest leadership generation this node has witnessed.
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Total fenced-session rejections across this node's pullers.
    pub fn fenced_rejects(&self) -> u64 {
        self.pullers
            .iter()
            .map(|p| p.state().fenced_rejects.load(Ordering::Relaxed))
            .sum()
    }

    /// Promote this replica to primary after the old primary died:
    /// stop pulling, bump and **persist** the fencing epoch, and start
    /// a replication listener over the same live collections. The
    /// collections already went through the store's torn-tail-repairing
    /// open path, so WAL ownership transfers without any copy — new
    /// writes append past the last applied frame, and every message the
    /// new listener ships is stamped with the bumped epoch, fencing the
    /// old primary out if it revives.
    ///
    /// Call only after [`elect`](crate::failover::elect) picked this
    /// node — promotion itself does not re-check the vote.
    pub fn promote(&mut self, mut config: ReplConfig) -> Result<ReplListener, ReplError> {
        for p in &mut self.pullers {
            p.shutdown();
        }
        self.pullers.clear();
        self.epoch.bump();
        self.epoch.persist(&self.data_dir)?;
        config.epoch = self.epoch.clone();
        let sources = self
            .collections
            .iter()
            .map(|(n, c)| (n.clone(), Arc::clone(c)))
            .collect();
        ReplListener::start(sources, config).map_err(ReplError::Io)
    }

    /// Re-point this replica at a different primary (after a failover
    /// elected someone else): restart every puller against `primary`,
    /// keeping the collections, server, and epoch handle. The durable
    /// watermark makes the handoff safe — the first Hello resumes from
    /// exactly what this node already applied.
    pub fn repoint(&mut self, primary: SocketAddr) {
        for p in &mut self.pullers {
            p.shutdown();
        }
        self.pullers = self
            .collections
            .iter()
            .map(|(name, coll)| {
                ReplicaPuller::start(
                    Arc::clone(coll),
                    name.clone(),
                    primary,
                    self.name.clone(),
                    self.reconnect,
                    self.epoch.clone(),
                )
            })
            .collect();
    }

    /// Start re-shipping this replica's collections downstream while it
    /// keeps pulling from its own upstream (cascading replication). The
    /// relay listener shares this node's epoch handle, so a promotion
    /// learned from upstream is immediately stamped on every frame
    /// shipped downstream — epoch checks propagate through the chain.
    pub fn relay(&self, mut config: ReplConfig) -> std::io::Result<ReplListener> {
        config.epoch = self.epoch.clone();
        let sources = self
            .collections
            .iter()
            .map(|(n, c)| (n.clone(), Arc::clone(c)))
            .collect();
        ReplListener::start(sources, config)
    }

    /// Stop pulling and serving. Idempotent.
    pub fn shutdown(&mut self) {
        self.refresh_stop.store(true, Ordering::Release);
        if let Some(h) = self.refresh_handle.take() {
            let _ = h.join();
        }
        for p in &mut self.pullers {
            p.shutdown();
        }
        self.server.shutdown();
    }
}

impl Drop for ReplicaNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}
