//! Std-only LZ77-style byte compressor for batched WAL frame shipping.
//!
//! WAL records are small JSON objects with heavily repeated structure
//! (field names, ids, shard labels), so runs of frames compress well
//! with plain dictionary matching — no entropy coder needed. The format
//! follows the repo's hermetic-dependency rule (like covidkg-rand and
//! the in-repo JSON): simple enough to audit, deterministic, and safe
//! to decode from a hostile peer.
//!
//! # Format
//!
//! The stream is a sequence of *groups*: one control byte followed by
//! up to eight tokens, bit `i` (LSB-first) of the control byte
//! describing token `i`:
//!
//! - bit = 0 → **literal**: one raw byte.
//! - bit = 1 → **match**: three bytes — `u16` LE distance (1-based,
//!   ≤ 65535 back into the output produced so far) and `u8` encoding
//!   `length - MIN_MATCH` (so matches span 4..=259 bytes).
//!
//! The final group may be partial; decoding stops when the input is
//! exhausted. Matches may overlap their own output (distance < length
//! copies byte-at-a-time), which encodes runs cheaply.
//!
//! Corrupt input (distance past the start of output, truncated match
//! token, output exceeding the caller's cap) is a decode error — the
//! replication layer treats it like a CRC mismatch and reconnects.

/// Shortest run worth encoding as a match: a match token costs 3 bytes
/// plus its control bit, so 4 is the break-even point.
const MIN_MATCH: usize = 4;
/// Longest match one token can encode (`MIN_MATCH + u8::MAX`).
const MAX_MATCH: usize = MIN_MATCH + 255;
/// How far back a match may reach — the largest distance the u16 wire
/// field can carry. A full 1 << 16 would truncate to 0 on the wire and
/// the decoder would (rightly) reject the stream.
const WINDOW: usize = u16::MAX as usize;
/// Hash-chain head table size; indexes positions by 4-byte prefix.
const HASH_BITS: u32 = 15;

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `input`. Always succeeds; worst case (incompressible data)
/// costs one control byte per 8 literals (~12.5% expansion).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // Most recent position seen for each 4-byte-prefix hash. A single
    // head (no chains) keeps compression O(n) — plenty for JSON runs.
    let mut heads = vec![u32::MAX; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut group = Vec::with_capacity(1 + 8 * 3);
    let mut flags = 0u8;
    let mut tokens = 0u8;

    let flush = |out: &mut Vec<u8>, group: &mut Vec<u8>, flags: &mut u8, tokens: &mut u8| {
        if *tokens > 0 {
            out.push(*flags);
            out.extend_from_slice(group);
            group.clear();
            *flags = 0;
            *tokens = 0;
        }
    };

    while pos < input.len() {
        let mut match_len = 0usize;
        let mut match_dist = 0usize;
        if pos + MIN_MATCH <= input.len() {
            let h = hash4(&input[pos..]);
            let cand = heads[h] as usize;
            heads[h] = pos as u32;
            if cand != u32::MAX as usize && cand < pos && pos - cand <= WINDOW {
                let dist = pos - cand;
                let limit = (input.len() - pos).min(MAX_MATCH);
                let mut len = 0usize;
                while len < limit && input[cand + len] == input[pos + len] {
                    len += 1;
                }
                if len >= MIN_MATCH {
                    match_len = len;
                    match_dist = dist;
                }
            }
        }
        if match_len > 0 {
            flags |= 1 << tokens;
            group.extend_from_slice(&(match_dist as u16).to_le_bytes());
            group.push((match_len - MIN_MATCH) as u8);
            // Seed the hash table through the matched region so later
            // matches can reference bytes inside it.
            let end = (pos + match_len).min(input.len().saturating_sub(MIN_MATCH - 1));
            for p in (pos + 1)..end {
                heads[hash4(&input[p..])] = p as u32;
            }
            pos += match_len;
        } else {
            group.push(input[pos]);
            pos += 1;
        }
        tokens += 1;
        if tokens == 8 {
            flush(&mut out, &mut group, &mut flags, &mut tokens);
        }
    }
    flush(&mut out, &mut group, &mut flags, &mut tokens);
    out
}

/// Decompress a stream produced by [`compress`]. `max_len` bounds the
/// output so a corrupt or malicious length can't balloon memory; the
/// replication layer passes the batch header's declared uncompressed
/// size and then checks the result length matches exactly.
pub fn decompress(input: &[u8], max_len: usize) -> Result<Vec<u8>, String> {
    let mut out = Vec::with_capacity(input.len().min(max_len));
    let mut i = 0usize;
    while i < input.len() {
        let flags = input[i];
        i += 1;
        for bit in 0..8 {
            if i >= input.len() {
                break;
            }
            if flags & (1 << bit) != 0 {
                if i + 3 > input.len() {
                    return Err("truncated match token".into());
                }
                let dist = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
                let len = MIN_MATCH + input[i + 2] as usize;
                i += 3;
                if dist == 0 || dist > out.len() {
                    return Err(format!("match distance {dist} outside produced output"));
                }
                if out.len() + len > max_len {
                    return Err("decompressed output exceeds declared length".into());
                }
                // Byte-at-a-time: overlapping matches (dist < len) are
                // legal and encode runs.
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                if out.len() + 1 > max_len {
                    return Err("decompressed output exceeds declared length".into());
                }
                out.push(input[i]);
                i += 1;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_rand::{RngCore, SeedableRng, SmallRng};

    fn round_trip(data: &[u8]) {
        let packed = compress(data);
        let back = decompress(&packed, data.len()).unwrap();
        assert_eq!(back, data, "round trip mismatch ({} bytes)", data.len());
    }

    #[test]
    fn round_trips_edge_shapes() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(b"abcdabcdabcdabcd");
        round_trip(&[0u8; 1000]); // long overlapping run
        round_trip("αβγ αβγ αβγ repeated unicode".as_bytes());
    }

    #[test]
    fn window_boundary_round_trips() {
        // A repeat exactly 1 << 16 bytes apart: a distance of 65536
        // would truncate to 0 in the u16 wire field, so the encoder
        // must refuse that candidate and emit literals instead. The
        // filler is a single repeated byte so the marker's 4-byte
        // prefix is still in the hash table when the repeat arrives.
        let mut data = Vec::new();
        data.extend_from_slice(b"abcd");
        data.extend_from_slice(&vec![b'x'; (1 << 16) - 4]);
        data.extend_from_slice(b"abcd");
        round_trip(&data);

        // One byte closer: distance 65535 fits u16 exactly and must
        // still encode and decode as a match.
        let mut data = Vec::new();
        data.extend_from_slice(b"abcd");
        data.extend_from_slice(&vec![b'x'; (1 << 16) - 5]);
        data.extend_from_slice(b"abcd");
        round_trip(&data);
    }

    #[test]
    fn json_frames_actually_shrink() {
        // The shape batched shipping sees: many small, similar records.
        let mut data = Vec::new();
        for i in 0..200 {
            data.extend_from_slice(
                format!(
                    "{{\"kind\":\"insert\",\"doc\":{{\"_id\":\"doc-{i}\",\"title\":\"covid paper {i}\",\"year\":2021}}}}"
                )
                .as_bytes(),
            );
        }
        let packed = compress(&data);
        assert!(
            packed.len() * 4 < data.len(),
            "expected ≥4x on repetitive JSON, got {} -> {}",
            data.len(),
            packed.len()
        );
        assert_eq!(decompress(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn seeded_random_buffers_round_trip() {
        let mut rng = SmallRng::seed_from_u64(0xC0BD);
        for case in 0..40 {
            let len = (rng.next_u64() % 4096) as usize;
            let mut data = vec![0u8; len];
            if case % 2 == 0 {
                // Compressible: small alphabet with repeated chunks.
                for b in data.iter_mut() {
                    *b = b"aabbcc{}:\"x\"," [(rng.next_u64() % 13) as usize];
                }
            } else {
                for b in data.iter_mut() {
                    *b = (rng.next_u64() & 0xFF) as u8;
                }
            }
            round_trip(&data);
        }
    }

    #[test]
    fn corrupt_streams_error_instead_of_panicking() {
        let data = b"abcdabcdabcdabcdabcdabcd".to_vec();
        let packed = compress(&data);
        // Flipping any byte must yield either a clean error or a
        // wrong-but-bounded buffer — never a panic or oversize output.
        for i in 0..packed.len() {
            let mut bad = packed.clone();
            bad[i] ^= 0xFF;
            if let Ok(out) = decompress(&bad, data.len()) {
                assert!(out.len() <= data.len());
            }
        }
        // Declared length smaller than actual output is an error.
        assert!(decompress(&packed, 3).is_err());
        // Distance pointing before the start of output is an error.
        assert!(decompress(&[0x01, 0x09, 0x00, 0x00], 64).is_err());
    }
}
