//! End-to-end replication: a real primary system behind a
//! [`ReplListener`], a full [`ReplicaNode`] bootstrapping over loopback
//! TCP, converged reads on the replica's own server, live writes
//! flowing through, and lag-aware routing with read-your-writes.

use covidkg_core::{CovidKg, CovidKgConfig};
use covidkg_repl::{
    ReadRouter, ReplConfig, ReplListener, ReplicaNode, ReplicaNodeConfig, ReplicaTarget,
};
use covidkg_search::SearchMode;
use covidkg_serve::{ServeConfig, Server};
use covidkg_store::Collection;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("covidkg-repl-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.to_string_lossy().into_owned()
}

/// Build a persistent primary system and its serving stack.
fn primary_stack(tag: &str) -> (Arc<Server>, Vec<(String, Arc<Collection>)>) {
    let system = CovidKg::build(CovidKgConfig {
        corpus_size: 24,
        max_training_rows: 300,
        data_dir: Some(scratch(&format!("{tag}-primary"))),
        ..CovidKgConfig::default()
    })
    .unwrap();
    let server = Arc::new(Server::start(system, ServeConfig::default()));
    let sources = server.with_system(|s| {
        let db = s.database();
        db.collection_names()
            .into_iter()
            .map(|name| {
                let coll = db.collection(&name).unwrap();
                (name, coll)
            })
            .collect::<Vec<_>>()
    });
    (server, sources)
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn replica_node_converges_serves_and_follows_live_writes() {
    let (primary_server, sources) = primary_stack("node");
    let listener = ReplListener::start(sources.clone(), ReplConfig::default()).unwrap();

    let node = ReplicaNode::start(ReplicaNodeConfig::new(
        listener.local_addr(),
        "replica-1",
        scratch("node-replica"),
    ))
    .unwrap();

    // Byte-identical convergence across every replicated collection.
    for (name, coll) in &sources {
        assert_eq!(
            node.checksum(name),
            Some(coll.content_checksum()),
            "collection {name:?} diverged after initial sync"
        );
    }
    assert_eq!(node.collections().len(), sources.len());

    // The replica's own server answers queries identically.
    for query in covidkg_corpus::query_workload(4, 9) {
        let mode = SearchMode::AllFields(query.clone());
        let on_primary = primary_server.search(&mode, 0).unwrap();
        let on_replica = node.server().search(&mode, 0).unwrap();
        assert_eq!(
            on_primary.page.total, on_replica.page.total,
            "replica disagreed with primary for {query:?}"
        );
    }

    // Live writes: ingest on the primary, watch them arrive.
    let before = listener.watermark();
    let new_pubs: Vec<_> = covidkg_corpus::CorpusGenerator::with_size(36, 77)
        .generate()
        .into_iter()
        .skip(24)
        .collect();
    primary_server.ingest(&new_pubs).unwrap();
    let mark = listener.watermark();
    assert!(mark > before, "ingest must advance the primary watermark");
    assert!(
        wait_until(Duration::from_secs(20), || node.applied() >= mark),
        "replica never applied the live ingest (applied {}, want {mark})",
        node.applied()
    );
    let pubs_coll = sources
        .iter()
        .find(|(n, _)| n == "publications")
        .map(|(_, c)| c)
        .unwrap();
    assert!(wait_until(Duration::from_secs(10), || {
        node.checksum("publications") == Some(pubs_coll.content_checksum())
    }));

    // The refresh thread must surface the new docs through the replica's
    // serving path (derived state rebuilt, generation bumped).
    let total_expected = primary_server
        .search(&SearchMode::AllFields("covid".into()), 0)
        .unwrap()
        .page
        .total;
    assert!(
        wait_until(Duration::from_secs(20), || {
            node.server()
                .search(&SearchMode::AllFields("covid".into()), 0)
                .map(|r| r.page.total == total_expected)
                .unwrap_or(false)
        }),
        "replica reads never caught up with the post-ingest corpus"
    );

    // Primary-side accounting saw this replica ack its frames.
    let stats = listener.stats();
    assert!(stats.frames_shipped > 0);
    assert!(stats.bytes_shipped > 0);
    assert!(
        stats.replicas.iter().any(|(name, acked)| name == "replica-1" && *acked >= mark),
        "primary never recorded replica-1's acks: {:?}",
        stats.replicas
    );
    drop(node);
}

#[test]
fn router_prefers_caught_up_replica_and_honours_read_your_writes() {
    let (primary_server, sources) = primary_stack("router");
    let listener = ReplListener::start(sources, ReplConfig::default()).unwrap();

    let node = ReplicaNode::start(ReplicaNodeConfig::new(
        listener.local_addr(),
        "replica-r",
        scratch("router-replica"),
    ))
    .unwrap();

    let state = node.publications_state();
    let watermark_listener = &listener;
    let mark_now = watermark_listener.watermark();
    assert!(
        wait_until(Duration::from_secs(10), || {
            state.applied.load(Ordering::Acquire) >= mark_now
        }),
        "replica not caught up before routing"
    );

    let applied = Arc::new(std::sync::atomic::AtomicU64::new(0));
    applied.store(state.applied.load(Ordering::Acquire), Ordering::Release);
    let mark = listener.watermark();
    let router = ReadRouter::new(
        Some(Arc::clone(&primary_server)),
        vec![ReplicaTarget {
            name: "replica-r".into(),
            server: node.server(),
            applied: Arc::clone(&applied),
            health: Arc::new(std::sync::atomic::AtomicU8::new(0)),
        }],
        Arc::new(move || mark),
        8,
    );

    // A caught-up replica takes the read, even with read-your-writes.
    let (resp, info) = router
        .search(
            &SearchMode::AllFields("vaccine".into()),
            0,
            mark,
            Duration::from_secs(2),
        )
        .unwrap();
    assert!(!info.primary, "caught-up replica should have served");
    assert_eq!(info.replica, "replica-r");
    assert_eq!(info.applied, mark);
    assert_eq!(info.lag, 0);
    assert_eq!(
        resp.page.total,
        primary_server
            .search(&SearchMode::AllFields("vaccine".into()), 0)
            .unwrap()
            .page
            .total
    );

    // Force the replica to look stale: the primary fallback serves
    // instantly instead of 503ing.
    applied.store(0, Ordering::Release);
    let (_, info) = router
        .search(
            &SearchMode::AllFields("vaccine".into()),
            0,
            mark.max(1),
            Duration::from_millis(200),
        )
        .unwrap();
    assert!(info.primary, "stale replica must fall back to the primary");
    drop(node);
}
