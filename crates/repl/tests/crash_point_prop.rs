//! Satellite property: a replica that crashed at an *arbitrary* point —
//! its WAL truncated at any frame boundary or mid-frame — reconnects
//! and converges to the primary's content checksum. Driven by
//! `covidkg_rand::prop::run_shrink`, so a failing cut point shrinks to
//! a minimal counterexample and replays from its printed seed.

use covidkg_rand::{prop, Rng};
use covidkg_repl::{ReplConfig, ReplListener, ReplicaPuller};
use covidkg_store::wal;
use covidkg_store::{Collection, CollectionConfig, Database, RetryPolicy};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn shape() -> CollectionConfig {
    CollectionConfig::new("publications")
        .with_shards(2)
        .with_text_fields(["title"])
}

/// Pull from `addr` until the replica matches `primary`, tearing down
/// before returning so the caller may damage the files again.
fn resync(dir: &Path, addr: std::net::SocketAddr, primary: &Collection) -> Result<(), String> {
    let db = Database::open(dir).map_err(|e| format!("reopen: {e}"))?;
    let coll = db.get_or_create(shape()).map_err(|e| format!("collection: {e}"))?;
    let puller = ReplicaPuller::start(
        Arc::clone(&coll),
        "publications",
        addr,
        "prop-replica",
        RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
        },
        covidkg_repl::Epoch::default(),
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let caught_up = puller.state().applied.load(Ordering::Acquire) >= primary.repl_watermark();
        if caught_up && coll.content_checksum() == primary.content_checksum() {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "no convergence: applied {} of {}, checksums {}/{}",
                puller.state().applied.load(Ordering::Acquire),
                primary.repl_watermark(),
                coll.content_checksum(),
                primary.content_checksum()
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

struct Golden {
    files: Vec<(PathBuf, Option<Vec<u8>>)>,
}

impl Golden {
    fn capture(dir: &Path) -> Golden {
        Golden {
            files: ["publications.wal", "publications.snapshot", "publications.seq"]
                .iter()
                .map(|n| {
                    let p = dir.join(n);
                    let b = std::fs::read(&p).ok();
                    (p, b)
                })
                .collect(),
        }
    }

    fn restore(&self) {
        for (p, b) in &self.files {
            match b {
                Some(bytes) => std::fs::write(p, bytes).unwrap(),
                None => {
                    let _ = std::fs::remove_file(p);
                }
            }
        }
    }
}

#[test]
fn replica_recovers_from_any_crash_point_and_converges() {
    let root = std::env::temp_dir().join(format!("covidkg-repl-prop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    // Primary workload: all three record kinds in the WAL.
    let primary_db = Database::open(root.join("primary")).unwrap();
    let primary = primary_db.get_or_create(shape()).unwrap();
    for i in 0..16_i64 {
        let id = format!("p{i:03}");
        primary
            .insert(covidkg_json::obj! {
                "_id" => id.clone(),
                "title" => format!("variant report {i}"),
                "n" => i
            })
            .unwrap();
        if i % 3 == 2 {
            primary.update(&id, |d| d.insert("updated", true)).unwrap();
        }
        if i % 5 == 4 {
            primary.delete(&id).unwrap();
        }
    }
    primary.sync().unwrap();
    let listener =
        ReplListener::start(vec![("publications".into(), Arc::clone(&primary))], ReplConfig::default())
            .unwrap();
    let addr = listener.local_addr();

    // One clean sync establishes the golden replica state.
    let replica_dir = root.join("replica");
    std::fs::create_dir_all(&replica_dir).unwrap();
    resync(&replica_dir, addr, &primary).expect("initial sync");
    let golden = Golden::capture(&replica_dir);
    let wal_bytes = std::fs::read(replica_dir.join("publications.wal")).unwrap();
    let boundaries = wal::frame_ends(&wal_bytes);
    assert!(boundaries.len() > 10, "workload must produce many frames");

    let wal_len = wal_bytes.len() as u64;
    let wal_path = replica_dir.join("publications.wal");
    prop::run_shrink(
        12,
        // Generator: half the cases crash exactly on a frame boundary,
        // the rest anywhere inside the log (mid-frame tears).
        |rng| {
            if rng.gen_bool(0.5) {
                boundaries[rng.gen_range(0..boundaries.len())] as u64
            } else {
                rng.gen_range(0..=wal_len)
            }
        },
        // Shrinking walks the cut toward 0 (and the boundary below it):
        // the minimal counterexample is the shortest surviving prefix
        // that still breaks convergence.
        |&cut| {
            let mut candidates = vec![0, cut / 2, cut.saturating_sub(1)];
            if let Some(&b) = boundaries.iter().rev().find(|&&b| (b as u64) < cut) {
                candidates.push(b as u64);
            }
            candidates.retain(|&c| c < cut);
            candidates.dedup();
            candidates
        },
        |&cut| {
            golden.restore();
            let f = std::fs::OpenOptions::new().write(true).open(&wal_path).unwrap();
            f.set_len(cut).unwrap();
            f.sync_all().unwrap();
            drop(f);
            resync(&replica_dir, addr, &primary).map_err(|e| format!("cut at {cut}: {e}"))
        },
    );

    drop(listener);
    let _ = std::fs::remove_dir_all(&root);
}
