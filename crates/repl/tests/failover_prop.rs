//! Satellite property: for random cluster sizes (2–5), random kill
//! points and cascaded topologies, killing the primary always yields
//! **exactly one** new primary (every survivor's election agrees) and
//! all survivors converge to byte-identical content checksums. Driven
//! by `covidkg_rand::prop::run_shrink`, so a failing case shrinks to a
//! minimal counterexample (fewest nodes, earliest kill, no cascade)
//! and replays from its printed seed.

use covidkg_rand::{prop, Rng};
use covidkg_repl::protocol::{frame, pump, Decoder, Message};
use covidkg_repl::{docs_checksum, elect, Epoch, ReplConfig, ReplListener, ReplicaPuller};
use covidkg_store::{Collection, CollectionConfig, Database, RetryPolicy};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn shape() -> CollectionConfig {
    CollectionConfig::new("publications")
        .with_shards(2)
        .with_text_fields(["title"])
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        base: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
    }
}

/// One clustered node: a collection plus the failover plumbing.
struct Node {
    id: String,
    dir: PathBuf,
    _db: Database,
    coll: Arc<Collection>,
    epoch: Epoch,
    puller: Option<ReplicaPuller>,
    listener: Option<ReplListener>,
}

impl Node {
    fn open(root: &Path, id: String) -> Result<Node, String> {
        let dir = root.join(&id);
        std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {id}: {e}"))?;
        let db = Database::open(&dir).map_err(|e| format!("open {id}: {e}"))?;
        let coll = db.get_or_create(shape()).map_err(|e| format!("coll {id}: {e}"))?;
        let epoch = Epoch::load(&dir).map_err(|e| format!("epoch {id}: {e}"))?;
        Ok(Node { id, dir, _db: db, coll, epoch, puller: None, listener: None })
    }

    fn follow(&mut self, upstream: std::net::SocketAddr) {
        self.stop_following();
        self.puller = Some(ReplicaPuller::start(
            Arc::clone(&self.coll),
            "publications",
            upstream,
            self.id.clone(),
            policy(),
            self.epoch.clone(),
        ));
    }

    fn stop_following(&mut self) {
        if let Some(mut p) = self.puller.take() {
            p.shutdown();
        }
    }

    fn serve(&mut self) -> Result<std::net::SocketAddr, String> {
        let listener = ReplListener::start(
            vec![("publications".into(), Arc::clone(&self.coll))],
            ReplConfig {
                heartbeat_interval: Duration::from_millis(100),
                epoch: self.epoch.clone(),
                ..ReplConfig::default()
            },
        )
        .map_err(|e| format!("listen {}: {e}", self.id))?;
        let addr = listener.local_addr();
        self.listener = Some(listener);
        Ok(addr)
    }

    fn promote(&mut self) -> Result<std::net::SocketAddr, String> {
        self.stop_following();
        self.epoch.bump();
        self.epoch
            .persist(&self.dir)
            .map_err(|e| format!("persist {}: {e}", self.id))?;
        self.serve()
    }
}

fn write_docs(coll: &Collection, from: usize, count: usize) -> Result<(), String> {
    for i in from..from + count {
        coll.insert(covidkg_json::obj! {
            "_id" => format!("p{i:04}"),
            "title" => format!("spike protein study {i}"),
            "n" => i as i64
        })
        .map_err(|e| format!("insert {i}: {e}"))?;
    }
    coll.sync().map_err(|e| format!("sync: {e}"))?;
    Ok(())
}

fn converge(leader: &Collection, followers: &[&Node], what: &str) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let mark = leader.repl_watermark();
        let sum = leader.content_checksum();
        if followers
            .iter()
            .all(|n| n.coll.repl_watermark() >= mark && n.coll.content_checksum() == sum)
        {
            return Ok(());
        }
        if Instant::now() >= deadline {
            let states: Vec<String> = followers
                .iter()
                .map(|n| format!("{}@{}", n.id, n.coll.repl_watermark()))
                .collect();
            return Err(format!(
                "{what}: no convergence to {mark} ({})",
                states.join(", ")
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// One random failover case.
#[derive(Debug, Clone, PartialEq)]
struct Case {
    /// Replicas in the cluster (the primary is extra).
    replicas: usize,
    /// Documents written *after* the replicas attach, before the kill —
    /// the kill point, effectively (0 = kill immediately).
    docs_before_kill: usize,
    /// Chain the last replica off the first (cascaded topology).
    cascade: bool,
}

fn run_case(case: &Case, round: usize) -> Result<(), String> {
    let root = std::env::temp_dir().join(format!(
        "covidkg-failover-prop-{}-{round}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).map_err(|e| format!("mkdir: {e}"))?;

    // Primary with a base workload, serving at epoch 1.
    let mut primary = Node::open(&root, "zz-primary".into())?;
    write_docs(&primary.coll, 0, 8)?;
    let addr = primary.promote()?;

    // Replicas r0..rN; with cascade, the last one chains off r0's relay
    // (shared epoch handle) instead of the primary.
    let mut replicas: Vec<Node> = Vec::new();
    for i in 0..case.replicas {
        let mut n = Node::open(&root, format!("r{i}"))?;
        if case.cascade && i + 1 == case.replicas && case.replicas >= 2 {
            let relay_addr = replicas[0].serve()?;
            n.follow(relay_addr);
        } else {
            n.follow(addr);
        }
        replicas.push(n);
    }
    let refs: Vec<&Node> = replicas.iter().collect();
    converge(&primary.coll, &refs, "pre-kill sync")?;

    // The kill point: more writes land, then the primary dies without
    // waiting for anyone to catch up.
    write_docs(&primary.coll, 8, case.docs_before_kill)?;
    let final_sum = primary.coll.content_checksum();
    std::thread::sleep(Duration::from_millis(20)); // let frames ship
    primary.listener.take(); // kill

    for n in replicas.iter_mut() {
        n.stop_following();
    }

    // Election: every survivor evaluates the same rule over the same
    // slate; all must agree on exactly one winner.
    let slate: Vec<(String, u64)> = replicas
        .iter()
        .map(|n| (n.id.clone(), n.coll.repl_watermark()))
        .collect();
    let votes: Vec<Option<usize>> = replicas.iter().map(|_| elect(&slate)).collect();
    let winner = votes[0].ok_or("no winner elected")?;
    if votes.iter().any(|v| *v != Some(winner)) {
        return Err(format!("split-brain: votes disagree: {votes:?}"));
    }
    // The winner must hold the highest applied sequence in the slate.
    let best = slate.iter().map(|(_, a)| *a).max().unwrap_or(0);
    if slate[winner].1 != best {
        return Err(format!(
            "winner {} applied {} < best {best}",
            slate[winner].0, slate[winner].1
        ));
    }

    // With no writes after the sync barrier, a kill may lose nothing:
    // the winner must hold the old primary's exact content.
    if case.docs_before_kill == 0 && replicas[winner].coll.content_checksum() != final_sum {
        return Err("clean kill lost acknowledged content".into());
    }

    // Promote; everyone else re-points; cluster converges on content —
    // including whatever tail of the final writes actually shipped.
    let new_addr = replicas[winner].promote()?;
    let new_epoch = replicas[winner].epoch.get();
    if new_epoch < 2 {
        return Err(format!("promotion did not bump the epoch: {new_epoch}"));
    }
    for (i, n) in replicas.iter_mut().enumerate() {
        if i != winner {
            n.follow(new_addr);
        }
    }
    write_docs(&replicas[winner].coll, 2000, 3)?; // post-failover writes
    let winner_coll = Arc::clone(&replicas[winner].coll);
    let losers: Vec<&Node> = replicas
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != winner)
        .map(|(_, n)| n)
        .collect();
    converge(&winner_coll, &losers, "post-promotion")?;

    drop(replicas);
    drop(primary);
    let _ = std::fs::remove_dir_all(&root);
    Ok(())
}

#[test]
fn random_kill_points_elect_exactly_one_primary_and_converge() {
    let round = std::sync::atomic::AtomicUsize::new(0);
    prop::run_shrink(
        6,
        |rng| Case {
            replicas: rng.gen_range(2..=5),
            docs_before_kill: rng.gen_range(0..12),
            cascade: rng.gen_bool(0.4),
        },
        // Shrink toward the minimal cluster, the earliest kill and the
        // flat topology.
        |case| {
            let mut smaller = Vec::new();
            if case.replicas > 2 {
                smaller.push(Case { replicas: case.replicas - 1, ..case.clone() });
            }
            if case.docs_before_kill > 0 {
                smaller.push(Case { docs_before_kill: case.docs_before_kill / 2, ..case.clone() });
                smaller.push(Case {
                    docs_before_kill: case.docs_before_kill - 1,
                    ..case.clone()
                });
            }
            if case.cascade {
                smaller.push(Case { cascade: false, ..case.clone() });
            }
            smaller
        },
        |case| {
            let r = round.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            run_case(case, r).map_err(|e| format!("{case:?}: {e}"))
        },
    );
}

/// Fencing property: a deposed primary that revives and replays stale
/// frames is rejected on sight — nothing it ships is applied, and a
/// current replica that says Hello to it makes it fence itself.
#[test]
fn revived_old_primary_is_fenced_and_its_stale_frames_rejected() {
    let root = std::env::temp_dir().join(format!("covidkg-fence-prop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    // A replica that has lived through two promotions (epoch 2).
    let mut replica = Node::open(&root, "r0".into()).unwrap();
    replica.epoch.observe(2);
    let pre = replica.coll.content_checksum();

    // Direction 1: a fake deposed primary ships Meta + Frame stamped
    // epoch 0. The replica must reject the stream (fenced_rejects) and
    // apply nothing.
    let stale = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let stale_addr = stale.local_addr().unwrap();
    let ship = std::thread::spawn(move || {
        let Ok((mut s, _)) = stale.accept() else { return };
        let _ = s.set_read_timeout(Some(Duration::from_millis(50)));
        let mut dec = Decoder::new();
        let mut buf = [0u8; 8192];
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            match pump(&mut s, &mut dec, &mut buf) {
                Ok(Some(msgs)) => {
                    if msgs.iter().any(|m| matches!(m, Message::Hello { .. })) {
                        let _ = Message::Meta {
                            shards: 2,
                            text_fields: vec!["title".into()],
                            watermark: 999,
                            epoch: 0,
                        }
                        .write_to(&mut s);
                        let _ = frame(0, 999, b"{\"op\":\"d\",\"id\":\"zap\"}".to_vec())
                            .write_to(&mut s);
                        std::thread::sleep(Duration::from_millis(150));
                        return;
                    }
                }
                _ => return,
            }
        }
    });
    replica.follow(stale_addr);
    let deadline = Instant::now() + Duration::from_secs(5);
    let rejected = loop {
        let rejects = replica
            .puller
            .as_ref()
            .map(|p| p.state().fenced_rejects.load(Ordering::Relaxed))
            .unwrap_or(0);
        if rejects > 0 {
            break rejects;
        }
        if Instant::now() >= deadline {
            break 0;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    replica.stop_following();
    ship.join().unwrap();
    assert!(rejected >= 1, "stale frames must be rejected");
    assert_eq!(
        replica.coll.content_checksum(),
        pre,
        "nothing from the stale stream may be applied"
    );

    // Direction 2: a real listener serving at the old epoch fences
    // itself as soon as a newer-epoch replica says Hello.
    let mut deposed = Node::open(&root, "deposed".into()).unwrap();
    write_docs(&deposed.coll, 0, 4).unwrap();
    let addr = deposed.serve().unwrap(); // serves at epoch 0
    replica.follow(addr);
    let listener = deposed.listener.as_ref().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !listener.is_fenced() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(listener.is_fenced(), "deposed primary must fence itself");
    assert!(listener.stats().fenced_sessions >= 1);
    replica.stop_following();
    assert_eq!(
        replica.coll.content_checksum(),
        pre,
        "the fenced primary shipped nothing"
    );

    drop(replica);
    drop(deposed);
    let _ = std::fs::remove_dir_all(&root);
}

/// Fencing property, snapshot edition: checkpoint messages carry no
/// epoch, so a peer that skips the epoch-checked Meta and pushes a
/// (checksum-valid) checkpoint straight away must be rejected — a
/// forged snapshot would otherwise overwrite the whole collection.
#[test]
fn checkpoint_without_epoch_checked_meta_is_rejected() {
    let root = std::env::temp_dir().join(format!("covidkg-ckpt-fence-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    let mut replica = Node::open(&root, "r0".into()).unwrap();
    write_docs(&replica.coll, 0, 3).unwrap();
    let pre = replica.coll.content_checksum();

    // Forged peer: answers Hello with a full, internally consistent
    // checkpoint (correct count and checksum) but no Meta first.
    let forge = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let forge_addr = forge.local_addr().unwrap();
    let ship = std::thread::spawn(move || {
        let Ok((mut s, _)) = forge.accept() else { return };
        let _ = s.set_read_timeout(Some(Duration::from_millis(50)));
        let mut dec = Decoder::new();
        let mut buf = [0u8; 8192];
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            match pump(&mut s, &mut dec, &mut buf) {
                Ok(Some(msgs)) => {
                    if msgs.iter().any(|m| matches!(m, Message::Hello { .. })) {
                        let doc = covidkg_json::obj! {
                            "_id" => "forged",
                            "title" => "attacker-controlled state"
                        };
                        let checksum = docs_checksum([&doc]);
                        let _ = Message::CheckpointBegin { seq: 999, docs: 1 }.write_to(&mut s);
                        let _ = Message::CheckpointDoc(doc).write_to(&mut s);
                        let _ = Message::CheckpointEnd { checksum }.write_to(&mut s);
                        std::thread::sleep(Duration::from_millis(150));
                        return;
                    }
                }
                _ => return,
            }
        }
    });
    replica.follow(forge_addr);
    let deadline = Instant::now() + Duration::from_secs(5);
    let rejected = loop {
        let rejects = replica
            .puller
            .as_ref()
            .map(|p| p.state().fenced_rejects.load(Ordering::Relaxed))
            .unwrap_or(0);
        if rejects > 0 {
            break rejects;
        }
        if Instant::now() >= deadline {
            break 0;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let installed = replica
        .puller
        .as_ref()
        .map(|p| p.state().checkpoints.load(Ordering::Relaxed))
        .unwrap_or(0);
    replica.stop_following();
    ship.join().unwrap();
    assert!(rejected >= 1, "meta-less checkpoint must be rejected");
    assert_eq!(installed, 0, "no checkpoint may install without an epoch check");
    assert_eq!(
        replica.coll.content_checksum(),
        pre,
        "the forged snapshot must not touch the collection"
    );

    drop(replica);
    let _ = std::fs::remove_dir_all(&root);
}

/// A relay whose *downstream* learned of a promotion first fences
/// itself — but must un-fence once its own shared epoch handle catches
/// up (normally via its puller adopting the new epoch from upstream),
/// not stay refused-until-restart.
#[test]
fn fenced_relay_unfences_once_its_epoch_catches_up() {
    let root = std::env::temp_dir().join(format!("covidkg-unfence-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    let mut relay = Node::open(&root, "relay".into()).unwrap();
    write_docs(&relay.coll, 0, 4).unwrap();
    let addr = relay.serve().unwrap(); // listener shares relay.epoch (0)

    // Downstream already witnessed epoch 2; its Hello fences the relay.
    let mut downstream = Node::open(&root, "down".into()).unwrap();
    downstream.epoch.observe(2);
    downstream.follow(addr);
    let listener_fenced = |relay: &Node| relay.listener.as_ref().unwrap().is_fenced();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !listener_fenced(&relay) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(listener_fenced(&relay), "relay must fence on a newer peer epoch");

    // The relay now adopts the promotion from its own upstream (the
    // shared handle is exactly what its puller would observe into):
    // the fence lifts and the downstream's reconnect syncs fully.
    relay.epoch.observe(2);
    assert!(
        !listener_fenced(&relay),
        "fence must lift once the shared epoch catches up"
    );
    let refs = [&downstream];
    converge(&relay.coll, &refs, "post-unfence sync").unwrap();

    downstream.stop_following();
    drop(downstream);
    drop(relay);
    let _ = std::fs::remove_dir_all(&root);
}
