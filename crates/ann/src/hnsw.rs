//! The HNSW proximity graph (Malkov & Yashunin, TPAMI 2018).
//!
//! Layout: every indexed vector is a node with a *level* drawn from a
//! geometric distribution (`P(level ≥ l) = (1/M)^l`), seeded on the
//! external id so the level — and therefore the graph — does not depend
//! on insertion order for the same id set. A node at level `l` keeps an
//! adjacency list on every layer `0..=l`: at most `M` neighbors on the
//! upper layers, `2·M` on the base layer (the paper's `M_max0`).
//! Queries greedily descend the sparse upper layers (beam width 1) to a
//! good entry point, then run a best-first beam search with an
//! `ef_search`-bounded candidate list on the base layer.
//!
//! Vectors are L2-normalized at insert, so "distance" is a single dot
//! product (cosine similarity, larger = closer). Ties on similarity
//! break toward the smaller external id, matching the lexical engine's
//! `(score desc, _id asc)` order.
//!
//! Deletes and replaces tombstone the node: it keeps navigating (its
//! edges still carry traffic) but never surfaces in results, and the
//! base-layer beam is widened by the tombstone count so `k` live
//! results remain reachable. Rebuild when tombstones dominate.

use crate::metrics::{AnnMetrics, AnnStats, QueryStats};
use covidkg_rand::rngs::SmallRng;
use covidkg_rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Hard cap on assigned levels: with `M ≥ 2` the geometric distribution
/// reaches 24 with probability ≤ 2^-24, and a bounded ladder keeps the
/// descent loop obviously finite even on adversarial ids.
const MAX_LEVEL: usize = 24;

/// Tuning knobs (the paper's `M`, `efConstruction`, `ef`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HnswConfig {
    /// Max neighbors per node on layers above 0 (base layer gets `2·m`).
    pub m: usize,
    /// Beam width while building: wider finds better neighbors, slower.
    pub ef_construction: usize,
    /// Beam width while searching: the recall/latency dial.
    pub ef_search: usize,
    /// Seed for level assignment (mixed with the external id).
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> HnswConfig {
        HnswConfig {
            m: 8,
            ef_construction: 80,
            ef_search: 48,
            seed: 42,
        }
    }
}

/// Heap entry with a deterministic total order: similarity first, ties
/// toward the smaller node index.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    sim: f32,
    node: u32,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Scored) -> std::cmp::Ordering {
        self.sim
            .total_cmp(&other.sim)
            .then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Scored) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// L2-normalize a vector (zero vectors stay zero).
pub(crate) fn normalize(v: &[f32]) -> Vec<f32> {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm == 0.0 {
        return v.to_vec();
    }
    let inv = 1.0 / norm;
    v.iter().map(|x| x * inv).collect()
}

/// The index.
#[derive(Debug)]
pub struct HnswIndex {
    config: HnswConfig,
    dims: usize,
    /// External ids, by node index (append-only; replaces tombstone).
    pub(crate) ids: Vec<String>,
    /// Flat row-major vector storage, L2-normalized.
    pub(crate) vectors: Vec<f32>,
    /// Top level per node.
    levels: Vec<usize>,
    /// `links[node][layer]` = neighbor node indexes.
    links: Vec<Vec<Vec<u32>>>,
    /// Live flag per node (false = tombstoned).
    pub(crate) alive: Vec<bool>,
    /// External id → live node index.
    id_index: HashMap<String, u32>,
    /// Entry point (a node on the highest populated level).
    entry: Option<u32>,
    /// Highest level in the graph.
    max_level: usize,
    /// Tombstone count.
    dead: usize,
    metrics: AnnMetrics,
}

impl HnswIndex {
    /// An empty index over `dims`-dimensional vectors.
    pub fn new(dims: usize, config: HnswConfig) -> HnswIndex {
        HnswIndex {
            config,
            dims: dims.max(1),
            ids: Vec::new(),
            vectors: Vec::new(),
            levels: Vec::new(),
            links: Vec::new(),
            alive: Vec::new(),
            id_index: HashMap::new(),
            entry: None,
            max_level: 0,
            dead: 0,
            metrics: AnnMetrics::default(),
        }
    }

    /// Build by inserting `(id, vector)` pairs in order.
    pub fn build<'a>(
        dims: usize,
        config: HnswConfig,
        items: impl IntoIterator<Item = (&'a str, &'a [f32])>,
    ) -> HnswIndex {
        let mut index = HnswIndex::new(dims, config);
        for (id, v) in items {
            index.insert(id, v);
        }
        index
    }

    /// Vector dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The tuning knobs this index was built with.
    pub fn config(&self) -> &HnswConfig {
        &self.config
    }

    /// Live (non-tombstoned) vectors.
    pub fn len(&self) -> usize {
        self.ids.len() - self.dead
    }

    /// True when no live vector is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tombstoned nodes still resident in the graph.
    pub fn tombstones(&self) -> usize {
        self.dead
    }

    /// Highest populated layer.
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Whether `id` is indexed (and live).
    pub fn contains(&self, id: &str) -> bool {
        self.id_index.contains_key(id)
    }

    /// Cumulative work counters for the `/metrics` exposition.
    pub fn stats(&self) -> AnnStats {
        self.metrics.snapshot()
    }

    fn vector(&self, node: u32) -> &[f32] {
        let start = node as usize * self.dims;
        &self.vectors[start..start + self.dims]
    }

    fn similarity(&self, query: &[f32], node: u32) -> f32 {
        query
            .iter()
            .zip(self.vector(node))
            .map(|(a, b)| a * b)
            .sum()
    }

    fn pair_similarity(&self, a: u32, b: u32) -> f32 {
        self.vector(a)
            .iter()
            .zip(self.vector(b))
            .map(|(x, y)| x * y)
            .sum()
    }

    /// Geometric level draw, seeded on `(config.seed, id)` so the level
    /// of a document is a pure function of its id — insertion order
    /// cannot reshape the layer ladder.
    fn assign_level(&self, id: &str) -> usize {
        // FNV-1a over the id bytes, mixed with the index seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.config.seed;
        for b in id.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = SmallRng::seed_from_u64(h);
        let u: f64 = rng.gen::<f64>().max(1e-12);
        let ml = 1.0 / (self.config.m.max(2) as f64).ln();
        ((-u.ln() * ml) as usize).min(MAX_LEVEL)
    }

    /// Best-first beam search on one layer from `entry`, keeping the
    /// `ef` most similar nodes seen. Returns `(sim, node)` sorted by
    /// `(sim desc, node asc)`; tombstoned nodes are traversed and
    /// reported (callers filter).
    fn search_layer(
        &self,
        query: &[f32],
        entry: u32,
        ef: usize,
        layer: usize,
        stats: &mut QueryStats,
    ) -> Vec<(f32, u32)> {
        let ef = ef.max(1);
        let mut visited = vec![false; self.ids.len()];
        visited[entry as usize] = true;
        let entry_sim = self.similarity(query, entry);
        stats.distance_evals += 1;
        // `cand` pops the most promising frontier node; `beam` tracks
        // the ef best results with its worst on top for O(1) bounding.
        let mut cand: BinaryHeap<Scored> = BinaryHeap::new();
        let mut beam: BinaryHeap<Reverse<Scored>> = BinaryHeap::new();
        cand.push(Scored { sim: entry_sim, node: entry });
        beam.push(Reverse(Scored { sim: entry_sim, node: entry }));
        while let Some(best) = cand.pop() {
            let worst = beam.peek().map(|Reverse(s)| s.sim).unwrap_or(f32::NEG_INFINITY);
            if beam.len() >= ef && best.sim < worst {
                break;
            }
            stats.hops += 1;
            let Some(neighbors) = self.links[best.node as usize].get(layer) else {
                continue;
            };
            for &nb in neighbors {
                if visited[nb as usize] {
                    continue;
                }
                visited[nb as usize] = true;
                let sim = self.similarity(query, nb);
                stats.distance_evals += 1;
                let worst = beam.peek().map(|Reverse(s)| s.sim).unwrap_or(f32::NEG_INFINITY);
                if beam.len() < ef || sim > worst {
                    cand.push(Scored { sim, node: nb });
                    beam.push(Reverse(Scored { sim, node: nb }));
                    if beam.len() > ef {
                        beam.pop();
                    }
                }
            }
        }
        let mut out: Vec<(f32, u32)> = beam
            .into_iter()
            .map(|Reverse(s)| (s.sim, s.node))
            .collect();
        out.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        out
    }

    /// The paper's diversity heuristic: walking candidates by falling
    /// similarity to the query, keep one only if it is closer to the
    /// query than to every neighbor already kept — spreading edges
    /// across directions instead of clustering them.
    fn select_diverse(
        &self,
        scored: &[(f32, u32)],
        m: usize,
        stats: &mut QueryStats,
    ) -> Vec<u32> {
        let mut selected: Vec<u32> = Vec::with_capacity(m);
        for &(sim, c) in scored {
            if selected.len() >= m {
                break;
            }
            let mut keep = true;
            for &s in &selected {
                stats.distance_evals += 1;
                if self.pair_similarity(c, s) > sim {
                    keep = false;
                    break;
                }
            }
            if keep {
                selected.push(c);
            }
        }
        if selected.is_empty() {
            if let Some(&(_, first)) = scored.first() {
                selected.push(first);
            }
        }
        selected
    }

    /// Re-bound a node's adjacency list to `max_deg` with the same
    /// diversity heuristic, relative to the node's own vector.
    fn prune(&mut self, node: u32, layer: usize, max_deg: usize, stats: &mut QueryStats) {
        let current = std::mem::take(&mut self.links[node as usize][layer]);
        let mut scored: Vec<(f32, u32)> = current
            .iter()
            .map(|&nb| {
                stats.distance_evals += 1;
                (self.pair_similarity(node, nb), nb)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let kept = self.select_diverse(&scored, max_deg, stats);
        self.links[node as usize][layer] = kept;
    }

    /// Insert (or replace) one vector. The vector is L2-normalized into
    /// the index; an existing `id` is tombstoned first, so a replace is
    /// one call. Panics if `vector.len() != dims`.
    pub fn insert(&mut self, id: &str, vector: &[f32]) {
        assert_eq!(
            vector.len(),
            self.dims,
            "vector dims {} != index dims {}",
            vector.len(),
            self.dims
        );
        if self.contains(id) {
            self.remove(id);
        }
        let q = normalize(vector);
        let node = self.ids.len() as u32;
        let level = self.assign_level(id);
        self.ids.push(id.to_string());
        self.id_index.insert(id.to_string(), node);
        self.vectors.extend_from_slice(&q);
        self.levels.push(level);
        self.alive.push(true);
        self.links.push(vec![Vec::new(); level + 1]);

        let mut stats = QueryStats::default();
        let Some(mut ep) = self.entry else {
            self.entry = Some(node);
            self.max_level = level;
            self.metrics.record_insert(0);
            return;
        };
        // Greedy descent through layers above the new node's level.
        for layer in (level + 1..=self.max_level).rev() {
            if let Some(&(_, best)) = self.search_layer(&q, ep, 1, layer, &mut stats).first() {
                ep = best;
            }
        }
        // Connect on every layer the node lives on.
        for layer in (0..=level.min(self.max_level)).rev() {
            let cands = self.search_layer(&q, ep, self.config.ef_construction, layer, &mut stats);
            if let Some(&(_, best)) = cands.first() {
                ep = best;
            }
            let max_deg = if layer == 0 { 2 * self.config.m } else { self.config.m };
            let selected = self.select_diverse(&cands, self.config.m, &mut stats);
            for &nb in &selected {
                self.links[node as usize][layer].push(nb);
                self.links[nb as usize][layer].push(node);
                if self.links[nb as usize][layer].len() > max_deg {
                    self.prune(nb, layer, max_deg, &mut stats);
                }
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(node);
        }
        self.metrics.record_insert(stats.distance_evals);
    }

    /// Tombstone `id`. The node keeps routing traffic but never appears
    /// in results. Returns false when the id was not indexed.
    pub fn remove(&mut self, id: &str) -> bool {
        let Some(node) = self.id_index.remove(id) else {
            return false;
        };
        self.alive[node as usize] = false;
        self.dead += 1;
        // A tombstoned entry point still navigates fine; prefer a live
        // one (highest level wins) so a fully-live graph never starts
        // from a dead node.
        if self.entry == Some(node) {
            let replacement = (0..self.ids.len() as u32)
                .filter(|&n| self.alive[n as usize])
                .max_by_key(|&n| (self.levels[n as usize], Reverse(n)));
            if let Some(live) = replacement {
                self.entry = Some(live);
            }
        }
        true
    }

    /// Top-`k` live neighbors of `query` by cosine similarity, with the
    /// work done to find them. Results order by `(sim desc, id asc)`.
    pub fn search(&self, query: &[f32], k: usize) -> (Vec<(String, f32)>, QueryStats) {
        let mut stats = QueryStats::default();
        let Some(entry) = self.entry else {
            return (Vec::new(), stats);
        };
        if k == 0 || self.is_empty() {
            return (Vec::new(), stats);
        }
        let q = normalize(query);
        let mut ep = entry;
        for layer in (1..=self.max_level).rev() {
            if let Some(&(_, best)) = self.search_layer(&q, ep, 1, layer, &mut stats).first() {
                ep = best;
            }
        }
        // Widen the beam by the tombstone count so `k` live results
        // stay reachable even when the nearest nodes are dead.
        let ef = self.config.ef_search.max(k) + self.dead;
        let beam = self.search_layer(&q, ep, ef, 0, &mut stats);
        stats.candidates = beam.len() as u64;
        let mut hits: Vec<(String, f32)> = beam
            .into_iter()
            .filter(|&(_, node)| self.alive[node as usize])
            .map(|(sim, node)| (self.ids[node as usize].clone(), sim))
            .collect();
        hits.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        hits.truncate(k);
        self.metrics.record_search(&stats);
        (hits, stats)
    }

    /// Serialize to the compact text format (`hnsw-v1` header, then per
    /// node: an id/level/alive line, a vector line and one adjacency
    /// line per layer). Ids must not contain whitespace — true for
    /// every store `_id` this repo generates.
    pub fn save_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let entry = self.entry.map(|e| e.to_string()).unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "hnsw-v1 {} {} {} {} {} {} {} {}",
            self.dims,
            self.ids.len(),
            self.config.m,
            self.config.ef_construction,
            self.config.ef_search,
            self.config.seed,
            entry,
            self.max_level,
        );
        for node in 0..self.ids.len() {
            let _ = writeln!(
                out,
                "{} {} {}",
                self.ids[node],
                self.levels[node],
                u8::from(self.alive[node]),
            );
            let mut line = String::new();
            for v in self.vector(node as u32) {
                if !line.is_empty() {
                    line.push(' ');
                }
                let _ = write!(line, "{v}");
            }
            out.push_str(&line);
            out.push('\n');
            for layer in &self.links[node] {
                let mut line = String::new();
                let _ = write!(line, "{}", layer.len());
                for nb in layer {
                    let _ = write!(line, " {nb}");
                }
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }

    /// Parse [`HnswIndex::save_text`] output. `None` on any structural
    /// mismatch (truncation, bad counts, out-of-range links).
    pub fn load_text(text: &str) -> Option<HnswIndex> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let mut parts = header.split_whitespace();
        if parts.next()? != "hnsw-v1" {
            return None;
        }
        let dims: usize = parts.next()?.parse().ok()?;
        let n: usize = parts.next()?.parse().ok()?;
        let config = HnswConfig {
            m: parts.next()?.parse().ok()?,
            ef_construction: parts.next()?.parse().ok()?,
            ef_search: parts.next()?.parse().ok()?,
            seed: parts.next()?.parse().ok()?,
        };
        let entry = match parts.next()? {
            "-" => None,
            e => Some(e.parse::<u32>().ok()?),
        };
        let max_level: usize = parts.next()?.parse().ok()?;
        let mut index = HnswIndex::new(dims, config);
        index.entry = entry.filter(|&e| (e as usize) < n);
        index.max_level = max_level;
        for node in 0..n {
            let mut meta = lines.next()?.split_whitespace();
            let id = meta.next()?.to_string();
            let level: usize = meta.next()?.parse().ok()?;
            let alive = meta.next()? == "1";
            let mut vector = Vec::with_capacity(dims);
            for v in lines.next()?.split_whitespace() {
                vector.push(v.parse::<f32>().ok()?);
            }
            if vector.len() != dims {
                return None;
            }
            let mut layers = Vec::with_capacity(level + 1);
            for _ in 0..=level {
                let mut parts = lines.next()?.split_whitespace();
                let count: usize = parts.next()?.parse().ok()?;
                let mut neighbors = Vec::with_capacity(count);
                for _ in 0..count {
                    let nb: u32 = parts.next()?.parse().ok()?;
                    if nb as usize >= n {
                        return None;
                    }
                    neighbors.push(nb);
                }
                layers.push(neighbors);
            }
            if alive {
                index.id_index.insert(id.clone(), node as u32);
            } else {
                index.dead += 1;
            }
            index.ids.push(id);
            index.vectors.extend_from_slice(&vector);
            index.levels.push(level);
            index.alive.push(alive);
            index.links.push(layers);
        }
        if index.ids.len() != n {
            return None;
        }
        Some(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random unit-ish vectors.
    fn corpus(n: usize, dims: usize, seed: u64) -> Vec<(String, Vec<f32>)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let v: Vec<f32> = (0..dims).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                (format!("doc-{i:04}"), v)
            })
            .collect()
    }

    fn build(items: &[(String, Vec<f32>)], config: HnswConfig) -> HnswIndex {
        let dims = items.first().map_or(1, |(_, v)| v.len());
        HnswIndex::build(
            dims,
            config,
            items.iter().map(|(id, v)| (id.as_str(), v.as_slice())),
        )
    }

    #[test]
    fn empty_index_returns_nothing() {
        let index = HnswIndex::new(8, HnswConfig::default());
        assert!(index.is_empty());
        let (hits, stats) = index.search(&[0.0; 8], 5);
        assert!(hits.is_empty());
        assert_eq!(stats.distance_evals, 0);
    }

    #[test]
    fn single_vector_round_trips() {
        let mut index = HnswIndex::new(4, HnswConfig::default());
        index.insert("only", &[1.0, 0.0, 0.0, 0.0]);
        let (hits, _) = index.search(&[2.0, 0.0, 0.0, 0.0], 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, "only");
        assert!((hits[0].1 - 1.0).abs() < 1e-6, "normalized dot = cosine");
    }

    #[test]
    fn wide_beam_matches_exact_oracle() {
        // With ef ≥ n the beam search must degenerate to exact search.
        let items = corpus(60, 12, 7);
        let config = HnswConfig { ef_search: 64, ..HnswConfig::default() };
        let index = build(&items, config);
        let queries = corpus(10, 12, 99);
        for (_, q) in &queries {
            let (hits, _) = index.search(q, 10);
            let (exact, _) = index.exact_search(q, 10);
            let got: Vec<&str> = hits.iter().map(|(id, _)| id.as_str()).collect();
            let want: Vec<&str> = exact.iter().map(|(id, _)| id.as_str()).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn hnsw_does_less_work_than_brute_force() {
        let items = corpus(400, 16, 3);
        let index = build(&items, HnswConfig::default());
        let (_, stats) = index.search(&items[0].1, 10);
        assert!(
            stats.distance_evals < 400,
            "beam search must not scan everything ({} evals)",
            stats.distance_evals
        );
        assert!(stats.hops > 0 && stats.candidates > 0);
    }

    #[test]
    fn build_is_deterministic_and_order_independent_levels() {
        let items = corpus(50, 8, 11);
        let a = build(&items, HnswConfig::default());
        let b = build(&items, HnswConfig::default());
        assert_eq!(a.save_text(), b.save_text());
        // Levels are a pure function of (seed, id): reversing insertion
        // order must not change any node's level.
        let mut reversed = items.clone();
        reversed.reverse();
        let c = build(&reversed, HnswConfig::default());
        for (id, _) in &items {
            let la = a.levels[a.id_index[id] as usize];
            let lc = c.levels[c.id_index[id] as usize];
            assert_eq!(la, lc, "{id}");
        }
    }

    #[test]
    fn save_load_round_trip_preserves_results() {
        let items = corpus(40, 8, 5);
        let mut index = build(&items, HnswConfig::default());
        index.remove("doc-0003");
        let text = index.save_text();
        let back = HnswIndex::load_text(&text).expect("parses");
        assert_eq!(back.len(), index.len());
        assert_eq!(back.tombstones(), 1);
        for (_, q) in corpus(5, 8, 31) {
            let (a, _) = index.search(&q, 10);
            let (b, _) = back.search(&q, 10);
            assert_eq!(a, b);
        }
        assert_eq!(back.save_text(), text, "stable fixpoint");
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(HnswIndex::load_text("").is_none());
        assert!(HnswIndex::load_text("hnsw-v9 4 0 8 80 48 42 - 0").is_none());
        assert!(HnswIndex::load_text("hnsw-v1 4 2 8 80 48 42 - 0\nd 0 1\n1 0 0 0\n0").is_none());
    }

    #[test]
    fn remove_hides_and_replace_updates() {
        let items = corpus(30, 8, 13);
        let mut index = build(&items, HnswConfig::default());
        assert!(index.contains("doc-0007"));
        let target = items[7].1.clone();
        let (hits, _) = index.search(&target, 1);
        assert_eq!(hits[0].0, "doc-0007");
        assert!(index.remove("doc-0007"));
        assert!(!index.contains("doc-0007"));
        let (hits, _) = index.search(&target, 30);
        assert!(hits.iter().all(|(id, _)| id != "doc-0007"));
        assert_eq!(hits.len(), 29, "every other live doc still reachable");
        // Replace: re-insert the same id with a new vector.
        let novel = vec![9.0f32, -9.0, 9.0, -9.0, 9.0, -9.0, 9.0, -9.0];
        index.insert("doc-0007", &novel);
        let (hits, _) = index.search(&novel, 1);
        assert_eq!(hits[0].0, "doc-0007");
        assert_eq!(index.len(), 30);
        assert!(!index.remove("never-indexed"));
    }

    #[test]
    fn removing_the_entry_point_keeps_searches_working() {
        let items = corpus(25, 8, 17);
        let mut index = build(&items, HnswConfig::default());
        // Remove whatever the entry point is, repeatedly.
        for _ in 0..5 {
            let entry_id = index.ids[index.entry.unwrap() as usize].clone();
            if index.contains(&entry_id) {
                index.remove(&entry_id);
            } else {
                // Entry already tombstoned: remove any live id instead.
                let id = index.id_index.keys().next().unwrap().clone();
                index.remove(&id);
            }
            let (hits, _) = index.search(&items[20].1, 5);
            assert!(!hits.is_empty());
        }
    }

    #[test]
    fn results_tie_break_by_id() {
        let mut index = HnswIndex::new(2, HnswConfig::default());
        // Three identical vectors: similarity ties must order by id.
        for id in ["b", "a", "c"] {
            index.insert(id, &[1.0, 0.0]);
        }
        let (hits, _) = index.search(&[1.0, 0.0], 3);
        let ids: Vec<&str> = hits.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, ["a", "b", "c"]);
    }

    #[test]
    fn metrics_accumulate() {
        let items = corpus(40, 8, 23);
        let index = build(&items, HnswConfig::default());
        let before = index.stats();
        assert_eq!(before.inserts, 40);
        assert_eq!(before.searches, 0);
        index.search(&items[0].1, 5);
        index.search(&items[1].1, 5);
        let after = index.stats();
        assert_eq!(after.searches, 2);
        assert!(after.distance_evals > 0);
        assert!(after.evals_per_search() > 0.0);
        assert!(after.build_distance_evals > 0);
    }
}
