//! The exact brute-force oracle.
//!
//! Every recall number in this repo is measured against a full cosine
//! scan — either over arbitrary `(id, vector)` pairs ([`exact_top_k`])
//! or over the vectors an index actually stores
//! ([`HnswIndex::exact_search`]). Both use the same `(sim desc, id
//! asc)` order as the graph search, so recall@k is a straight set
//! intersection with no tie-break ambiguity.

use crate::hnsw::{normalize, HnswIndex};

/// Exact top-`k` by cosine similarity over `(id, vector)` pairs.
///
/// Vectors need not be normalized: the query is normalized once and
/// each item is normalized on the fly, so the scores are true cosines.
pub fn exact_top_k<'a, I>(items: I, query: &[f32], k: usize) -> Vec<(String, f32)>
where
    I: IntoIterator<Item = (&'a str, &'a [f32])>,
{
    let q = normalize(query);
    let mut scored: Vec<(String, f32)> = items
        .into_iter()
        .map(|(id, v)| {
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            let dot: f32 = q.iter().zip(v).map(|(a, b)| a * b).sum();
            let sim = if norm == 0.0 { 0.0 } else { dot / norm };
            (id.to_string(), sim)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

impl HnswIndex {
    /// Exact top-`k` over this index's live vectors: the ground truth
    /// [`HnswIndex::search`] is measured against. Returns the hits and
    /// the distance evaluations spent (= live vector count), so the
    /// bench can report the work ratio honestly.
    pub fn exact_search(&self, query: &[f32], k: usize) -> (Vec<(String, f32)>, u64) {
        let q = normalize(query);
        let dims = self.dims();
        let mut evals = 0u64;
        let mut scored: Vec<(String, f32)> = self
            .ids
            .iter()
            .enumerate()
            .filter(|&(node, _)| self.alive[node])
            .map(|(node, id)| {
                evals += 1;
                let row = &self.vectors[node * dims..(node + 1) * dims];
                let sim: f32 = q.iter().zip(row).map(|(a, b)| a * b).sum();
                (id.clone(), sim)
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        (scored, evals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hnsw::HnswConfig;

    #[test]
    fn exact_top_k_orders_by_cosine_then_id() {
        let items: Vec<(&str, &[f32])> = vec![
            ("far", &[-1.0, 0.0]),
            ("b-near", &[2.0, 0.0]),
            ("a-near", &[5.0, 0.0]),
            ("side", &[0.0, 1.0]),
        ];
        let top = exact_top_k(items, &[1.0, 0.0], 3);
        let ids: Vec<&str> = top.iter().map(|(id, _)| id.as_str()).collect();
        // Both near vectors are cosine 1.0 (magnitude must not matter).
        assert_eq!(ids, ["a-near", "b-near", "side"]);
        assert!((top[0].1 - 1.0).abs() < 1e-6);
        assert!(top[2].1.abs() < 1e-6);
    }

    #[test]
    fn exact_search_skips_tombstones_and_counts_evals() {
        let mut index = HnswIndex::new(2, HnswConfig::default());
        index.insert("a", &[1.0, 0.0]);
        index.insert("b", &[0.9, 0.1]);
        index.insert("c", &[0.0, 1.0]);
        index.remove("b");
        let (hits, evals) = index.exact_search(&[1.0, 0.0], 10);
        assert_eq!(evals, 2, "one eval per live vector");
        let ids: Vec<&str> = hits.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, ["a", "c"]);
    }

    #[test]
    fn zero_vectors_score_zero() {
        let items: Vec<(&str, &[f32])> = vec![("zero", &[0.0, 0.0]), ("x", &[1.0, 0.0])];
        let top = exact_top_k(items, &[1.0, 0.0], 2);
        assert_eq!(top[0].0, "x");
        assert_eq!(top[1], ("zero".to_string(), 0.0));
    }
}
