//! Work accounting for the ANN tier.
//!
//! Two granularities: [`QueryStats`] is returned per search so callers
//! (the bench, the property tests) can compare the work done against
//! the brute-force scan, and [`AnnMetrics`] accumulates the same
//! counters across the index lifetime with lock-free atomics for the
//! `/metrics` exposition.

use std::sync::atomic::{AtomicU64, Ordering};

/// Work done by one search: the honest cost accounting behind the
/// "≥ 5× fewer distance evaluations than brute force" claim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Dot products computed (each one touches one stored vector; the
    /// brute-force equivalent is the live index size).
    pub distance_evals: u64,
    /// Beam-search expansions (nodes whose adjacency list was walked).
    pub hops: u64,
    /// Candidates resident in the base-layer beam when the search
    /// finished (bounded by `ef_search`).
    pub candidates: u64,
}

/// Cumulative index-lifetime counters (atomics: searches run `&self`).
#[derive(Debug, Default)]
pub struct AnnMetrics {
    searches: AtomicU64,
    distance_evals: AtomicU64,
    hops: AtomicU64,
    candidates: AtomicU64,
    inserts: AtomicU64,
    build_distance_evals: AtomicU64,
}

impl AnnMetrics {
    pub(crate) fn record_search(&self, stats: &QueryStats) {
        self.searches.fetch_add(1, Ordering::Relaxed);
        self.distance_evals
            .fetch_add(stats.distance_evals, Ordering::Relaxed);
        self.hops.fetch_add(stats.hops, Ordering::Relaxed);
        self.candidates
            .fetch_add(stats.candidates, Ordering::Relaxed);
    }

    pub(crate) fn record_insert(&self, distance_evals: u64) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.build_distance_evals
            .fetch_add(distance_evals, Ordering::Relaxed);
    }

    /// Point-in-time snapshot.
    pub fn snapshot(&self) -> AnnStats {
        AnnStats {
            searches: self.searches.load(Ordering::Relaxed),
            distance_evals: self.distance_evals.load(Ordering::Relaxed),
            hops: self.hops.load(Ordering::Relaxed),
            candidates: self.candidates.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            build_distance_evals: self.build_distance_evals.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of [`AnnMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnnStats {
    /// Searches served.
    pub searches: u64,
    /// Query-time distance evaluations, summed across searches.
    pub distance_evals: u64,
    /// Beam expansions, summed across searches.
    pub hops: u64,
    /// Base-layer beam occupancy, summed across searches.
    pub candidates: u64,
    /// Vectors inserted over the index lifetime (including replaces).
    pub inserts: u64,
    /// Distance evaluations spent building/maintaining the graph.
    pub build_distance_evals: u64,
}

impl AnnStats {
    /// Mean distance evaluations per search (0 when none ran).
    pub fn evals_per_search(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            self.distance_evals as f64 / self.searches as f64
        }
    }
}
