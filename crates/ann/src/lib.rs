#![warn(missing_docs)]

//! # covidkg-ann
//!
//! Std-only approximate nearest-neighbor search for the COVIDKG dense
//! retrieval tier. The paper's KG fusion (§4.2) already resolves unseen
//! terms via embedding distance; this crate gives the *serving* side the
//! same capability at document granularity: an HNSW proximity graph
//! (Malkov & Yashunin) over L2-normalized document embeddings, so cosine
//! similarity is a single dot product and a top-k query touches a
//! logarithmic fraction of the corpus instead of scanning it.
//!
//! - [`hnsw`] — the layered graph: seeded geometric level assignment
//!   (via `covidkg-rand`, keyed on the external id so levels are
//!   insertion-order independent), greedy descent through the upper
//!   layers, best-first beam search with an `ef` candidate list at the
//!   base layer, incremental insert, tombstoned delete/replace, and a
//!   compact text save/load format that rides the model registry.
//! - [`oracle`] — the exact brute-force scan over the same stored
//!   vectors: the recall ground truth every benchmark and property test
//!   measures against.
//! - [`metrics`] — per-query work counters (distance evaluations, hops,
//!   candidates) plus cumulative atomics surfaced as `covidkg_ann_*`
//!   series on `/metrics`.
//!
//! Determinism: identical `(config, insert sequence)` builds byte-
//! identical indexes, and ties (equal similarity) always break toward
//! the smaller external id — the same rule the lexical top-k merge uses.

pub mod hnsw;
pub mod metrics;
pub mod oracle;

pub use hnsw::{HnswConfig, HnswIndex};
pub use metrics::{AnnMetrics, AnnStats, QueryStats};
pub use oracle::exact_top_k;
