//! Seeded recall properties for the HNSW tier.
//!
//! Each case draws a random corpus shape (size, dimensionality, beam
//! width), builds an index, and measures recall@10 against the exact
//! brute-force oracle over a fixed query workload. Failures shrink to a
//! minimal corpus size via `covidkg_rand::prop::run_shrink` and print a
//! replay seed. The floor (0.95) matches the acceptance bar the bench
//! enforces on the real document embeddings.

use covidkg_ann::{HnswConfig, HnswIndex};
use covidkg_rand::rngs::SmallRng;
use covidkg_rand::{prop, Rng, SeedableRng};

const RECALL_FLOOR: f64 = 0.95;
const QUERIES: usize = 10;
const K: usize = 10;

#[derive(Debug, Clone)]
struct Case {
    n: usize,
    dims: usize,
    ef_search: usize,
    seed: u64,
}

fn corpus(n: usize, dims: usize, seed: u64) -> Vec<(String, Vec<f32>)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let v: Vec<f32> = (0..dims).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            (format!("doc-{i:04}"), v)
        })
        .collect()
}

fn build(items: &[(String, Vec<f32>)], dims: usize, ef_search: usize) -> HnswIndex {
    let config = HnswConfig { ef_search, ..HnswConfig::default() };
    HnswIndex::build(
        dims,
        config,
        items.iter().map(|(id, v)| (id.as_str(), v.as_slice())),
    )
}

/// Mean recall@K of `index` against its own exact oracle, over a seeded
/// query workload drawn from the same distribution as the corpus.
fn mean_recall(index: &HnswIndex, dims: usize, query_seed: u64) -> f64 {
    let queries = corpus(QUERIES, dims, query_seed);
    let mut total = 0.0;
    for (_, q) in &queries {
        let (approx, _) = index.search(q, K);
        let (exact, _) = index.exact_search(q, K);
        if exact.is_empty() {
            continue;
        }
        let truth: std::collections::HashSet<&str> =
            exact.iter().map(|(id, _)| id.as_str()).collect();
        let hit = approx.iter().filter(|(id, _)| truth.contains(id.as_str())).count();
        total += hit as f64 / exact.len() as f64;
    }
    total / QUERIES as f64
}

#[test]
fn recall_at_10_beats_floor_across_random_corpora() {
    prop::run_shrink(
        24,
        |rng| Case {
            n: rng.gen_range(30usize..150),
            dims: rng.gen_range(4usize..16),
            ef_search: rng.gen_range(40usize..80),
            seed: rng.gen(),
        },
        |case| {
            // Shrink toward smaller corpora first, then narrower beams;
            // keep dims/seed fixed so the counterexample stays replayable.
            let mut out = Vec::new();
            for n in prop::shrink_usize(case.n) {
                if n >= K {
                    out.push(Case { n, ..case.clone() });
                }
            }
            for ef in prop::shrink_usize(case.ef_search) {
                if ef >= K {
                    out.push(Case { ef_search: ef, ..case.clone() });
                }
            }
            out
        },
        |case| {
            let items = corpus(case.n, case.dims, case.seed);
            let index = build(&items, case.dims, case.ef_search);
            let recall = mean_recall(&index, case.dims, case.seed ^ 0x9e37);
            if recall < RECALL_FLOOR {
                return Err(format!(
                    "recall@{K} = {recall:.3} < {RECALL_FLOOR} (n={}, dims={}, ef={})",
                    case.n, case.dims, case.ef_search
                ));
            }
            Ok(())
        },
    );
}

/// Building everything up front and growing the same corpus one insert
/// at a time must land on the same recall floor: incremental sync off
/// the mutation log is not allowed to degrade the graph.
#[test]
fn incremental_insert_matches_bulk_build_recall() {
    prop::run_shrink(
        12,
        |rng| Case {
            n: rng.gen_range(40usize..120),
            dims: rng.gen_range(6usize..14),
            ef_search: rng.gen_range(40usize..80),
            seed: rng.gen(),
        },
        |case| {
            prop::shrink_usize(case.n)
                .into_iter()
                .filter(|&n| n >= 2 * K)
                .map(|n| Case { n, ..case.clone() })
                .collect()
        },
        |case| {
            let items = corpus(case.n, case.dims, case.seed);
            let bulk = build(&items, case.dims, case.ef_search);
            // Grow from half the corpus, inserting the rest one by one
            // — the shape an incremental ingest sync produces.
            let mut grown = build(&items[..case.n / 2], case.dims, case.ef_search);
            for (id, v) in &items[case.n / 2..] {
                grown.insert(id, v);
            }
            if grown.len() != bulk.len() {
                return Err(format!("size drift: {} vs {}", grown.len(), bulk.len()));
            }
            let qseed = case.seed ^ 0x51ed;
            let bulk_recall = mean_recall(&bulk, case.dims, qseed);
            let grown_recall = mean_recall(&grown, case.dims, qseed);
            for (label, recall) in [("bulk", bulk_recall), ("incremental", grown_recall)] {
                if recall < RECALL_FLOOR {
                    return Err(format!(
                        "{label} recall@{K} = {recall:.3} < {RECALL_FLOOR} \
                         (n={}, dims={}, ef={})",
                        case.n, case.dims, case.ef_search
                    ));
                }
            }
            Ok(())
        },
    );
}

/// Replaces and deletes keep the floor too: tombstones widen the beam
/// instead of silently eating recall.
#[test]
fn recall_survives_tombstones() {
    let dims = 10;
    let items = corpus(120, dims, 0xD00D);
    let mut index = build(&items, dims, 48);
    // Delete a third, replace a handful with fresh vectors.
    for (id, _) in items.iter().take(40) {
        assert!(index.remove(id));
    }
    let fresh = corpus(8, dims, 0xFEED);
    for (i, (_, v)) in fresh.iter().enumerate() {
        index.insert(&items[50 + i].0, v);
    }
    assert_eq!(index.len(), 80);
    assert_eq!(index.tombstones(), 48);
    let recall = mean_recall(&index, dims, 0xBEEF);
    assert!(
        recall >= RECALL_FLOOR,
        "post-churn recall@{K} = {recall:.3} < {RECALL_FLOOR}"
    );
}
