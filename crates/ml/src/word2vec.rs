//! Word2Vec skip-gram with negative sampling (Mikolov et al. [65]).
//!
//! Fig 3's parallel embedding layers are initialized from Word2Vec
//! embeddings "pre-trained on WDC and CORD-19 and then fine-tuned with
//! end-to-end training on the target corpus" (§3.6). §4.2 additionally
//! uses embedding distance to match unseen terms (new vaccines, strains)
//! during KG fusion.

use crate::matrix::Matrix;
use covidkg_rand::rngs::SmallRng;
use covidkg_rand::Rng;
use covidkg_rand::SeedableRng;
use std::collections::HashMap;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct Word2VecConfig {
    /// Embedding dimensionality.
    pub dims: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed).
    pub learning_rate: f32,
    /// Ignore tokens rarer than this.
    pub min_count: usize,
    /// Frequent-word subsampling threshold `t` (Mikolov et al.): tokens
    /// with corpus frequency `f` are discarded with probability
    /// `1 − √(t/f)`. 0 disables subsampling.
    pub subsample: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Word2VecConfig {
            dims: 32,
            window: 3,
            negatives: 5,
            epochs: 5,
            learning_rate: 0.025,
            min_count: 1,
            subsample: 0.0,
            seed: 42,
        }
    }
}

/// Trained embeddings.
#[derive(Debug, Clone)]
pub struct Word2Vec {
    vocab: HashMap<String, usize>,
    words: Vec<String>,
    /// Input (center-word) embeddings — the vectors consumers use.
    input: Matrix,
    /// Output (context) embeddings — kept for fine-tuning continuation.
    output: Matrix,
    /// L2-normalized copy of `input`, recomputed once after every
    /// training pass (and on load) so cosine lookups are a single dot
    /// product per row instead of renormalizing the whole vocabulary on
    /// every query. `input` stays raw for gradient updates.
    normalized: Matrix,
}

impl Word2Vec {
    /// Train on tokenized sentences.
    pub fn train(sentences: &[Vec<String>], config: &Word2VecConfig) -> Word2Vec {
        // Vocabulary with counts.
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for s in sentences {
            for t in s {
                *counts.entry(t.as_str()).or_insert(0) += 1;
            }
        }
        let mut words: Vec<String> = counts
            .iter()
            .filter(|(_, &c)| c >= config.min_count)
            .map(|(w, _)| w.to_string())
            .collect();
        words.sort(); // determinism
        let vocab: HashMap<String, usize> = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
        let v = words.len().max(1);

        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut input = Matrix::zeros(v, config.dims);
        for x in input.data_mut() {
            *x = rng.gen_range(-0.5f32..0.5) / config.dims as f32;
        }
        let output = Matrix::zeros(v, config.dims);
        let mut model = Word2Vec {
            vocab,
            words,
            input,
            output,
            normalized: Matrix::zeros(v, config.dims),
        };
        model.fine_tune(sentences, config, &mut rng);
        model.renormalize();
        model
    }

    /// Additional training passes on another corpus (the paper's
    /// "fine-tuned with end-to-end training on the target corpus").
    /// Unknown tokens are skipped — call sites should build the original
    /// vocabulary over the union corpus when that matters.
    pub fn continue_training(&mut self, sentences: &[Vec<String>], config: &Word2VecConfig) {
        let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(1));
        self.fine_tune(sentences, config, &mut rng);
        self.renormalize();
    }

    /// Rebuild the unit-norm row cache from the raw `input` matrix.
    /// Zero rows stay zero, so their dot product with anything is 0 —
    /// the same value [`cosine`] reports for a zero vector.
    fn renormalize(&mut self) {
        let (rows, cols) = (self.input.rows(), self.input.cols());
        if self.normalized.rows() != rows || self.normalized.cols() != cols {
            self.normalized = Matrix::zeros(rows, cols);
        }
        for i in 0..rows {
            let row = self.input.row(i);
            let norm = crate::matrix::vecops::dot(row, row).sqrt();
            let inv = if norm == 0.0 { 0.0 } else { 1.0 / norm };
            let row: Vec<f32> = row.iter().map(|x| x * inv).collect();
            self.normalized.row_mut(i).copy_from_slice(&row);
        }
    }

    fn fine_tune(&mut self, sentences: &[Vec<String>], config: &Word2VecConfig, rng: &mut SmallRng) {
        let v = self.words.len();
        if v == 0 {
            return;
        }
        // Unigram^0.75 negative-sampling table.
        let mut counts = vec![1usize; v];
        for s in sentences {
            for t in s {
                if let Some(&i) = self.vocab.get(t) {
                    counts[i] += 1;
                }
            }
        }
        let weights: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
        let total_w: f64 = weights.iter().sum();
        // Cumulative table for binary-search sampling.
        let mut cum = Vec::with_capacity(v);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total_w;
            cum.push(acc);
        }
        let sample_neg = |rng: &mut SmallRng| -> usize {
            let r: f64 = rng.gen();
            match cum.binary_search_by(|p| p.partial_cmp(&r).unwrap()) {
                Ok(i) | Err(i) => i.min(v - 1),
            }
        };

        let total_pairs: usize = sentences.iter().map(|s| s.len()).sum::<usize>().max(1);
        let mut seen_pairs = 0usize;
        let mut grad_in = vec![0.0f32; config.dims];

        // Frequent-word subsampling: per-token keep probability √(t/f).
        let total_tokens: f64 = counts.iter().map(|&c| c as f64).sum::<f64>().max(1.0);
        let keep_prob: Vec<f64> = counts
            .iter()
            .map(|&c| {
                if config.subsample <= 0.0 {
                    1.0
                } else {
                    let f = c as f64 / total_tokens;
                    (config.subsample / f).sqrt().min(1.0)
                }
            })
            .collect();

        for epoch in 0..config.epochs {
            for sentence in sentences {
                let ids: Vec<usize> = sentence
                    .iter()
                    .filter_map(|t| self.vocab.get(t).copied())
                    .filter(|&id| keep_prob[id] >= 1.0 || rng.gen::<f64>() < keep_prob[id])
                    .collect();
                for (pos, &center) in ids.iter().enumerate() {
                    seen_pairs += 1;
                    let progress =
                        (epoch * total_pairs + seen_pairs.min(total_pairs)) as f32
                            / (config.epochs * total_pairs) as f32;
                    let lr = (config.learning_rate * (1.0 - progress)).max(config.learning_rate * 0.01);
                    let window = rng.gen_range(1..=config.window);
                    let lo = pos.saturating_sub(window);
                    let hi = (pos + window + 1).min(ids.len());
                    for (ctx_pos, &context) in ids.iter().enumerate().take(hi).skip(lo) {
                        if ctx_pos == pos {
                            continue;
                        }
                        grad_in.iter_mut().for_each(|g| *g = 0.0);
                        // Positive pair + negatives.
                        for k in 0..=config.negatives {
                            let (target, label) = if k == 0 {
                                (context, 1.0f32)
                            } else {
                                (sample_neg(rng), 0.0f32)
                            };
                            if k > 0 && target == context {
                                continue;
                            }
                            let dot = crate::matrix::vecops::dot(
                                self.input.row(center),
                                self.output.row(target),
                            );
                            let pred = crate::matrix::sigmoid(dot);
                            let g = (label - pred) * lr;
                            // Accumulate input grad; update output row now.
                            crate::matrix::vecops::axpy(g, self.output.row(target), &mut grad_in);
                            let center_row: Vec<f32> = self.input.row(center).to_vec();
                            crate::matrix::vecops::axpy(g, &center_row, self.output.row_mut(target));
                        }
                        let row = self.input.row_mut(center);
                        for (w, g) in row.iter_mut().zip(&grad_in) {
                            *w += g;
                        }
                    }
                }
            }
        }
    }

    /// Embedding dimensionality.
    pub fn dims(&self) -> usize {
        self.input.cols()
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.words.len()
    }

    /// The embedding for a token, if in vocabulary.
    pub fn embed(&self, token: &str) -> Option<&[f32]> {
        self.vocab.get(token).map(|&i| self.input.row(i))
    }

    /// Average embedding of a token sequence (zeros when none known) —
    /// the cell-level representation of Fig 3 and the term matcher in
    /// §4.2 both use this.
    pub fn embed_phrase(&self, tokens: &[String]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dims()];
        let mut n = 0;
        for t in tokens {
            if let Some(e) = self.embed(t) {
                crate::matrix::vecops::axpy(1.0, e, &mut acc);
                n += 1;
            }
        }
        if n > 0 {
            let inv = 1.0 / n as f32;
            acc.iter_mut().for_each(|x| *x *= inv);
        }
        acc
    }

    /// Cosine similarity between two tokens (None if either is OOV).
    pub fn similarity(&self, a: &str, b: &str) -> Option<f32> {
        Some(cosine(self.embed(a)?, self.embed(b)?))
    }

    /// The unit-norm embedding for a token, if in vocabulary — what the
    /// ANN tier indexes so query-time similarity is a plain dot product.
    pub fn normalized_embed(&self, token: &str) -> Option<&[f32]> {
        self.vocab.get(token).map(|&i| self.normalized.row(i))
    }

    /// `k` nearest vocabulary words to a query vector.
    ///
    /// This is the exact brute-force oracle: every vocabulary row is
    /// scored. The rows are pre-normalized once after training, so the
    /// scan costs one dot product per row (the query is normalized once
    /// per call) while still reporting true cosine similarities.
    pub fn nearest(&self, query: &[f32], k: usize) -> Vec<(String, f32)> {
        let qnorm = crate::matrix::vecops::dot(query, query).sqrt();
        let inv = if qnorm == 0.0 { 0.0 } else { 1.0 / qnorm };
        let unit: Vec<f32> = query.iter().map(|x| x * inv).collect();
        let mut scored: Vec<(String, f32)> = self
            .words
            .iter()
            .enumerate()
            .map(|(i, w)| {
                (
                    w.clone(),
                    crate::matrix::vecops::dot(&unit, self.normalized.row(i)),
                )
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }

    /// Serialize to a simple text format (`word v1 v2 …` per line).
    pub fn save_text(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(out, "{} {}", self.words.len(), self.dims());
        for (i, w) in self.words.iter().enumerate() {
            let _ = write!(out, "{w}");
            for v in self.input.row(i) {
                let _ = write!(out, " {v}");
            }
            out.push('\n');
        }
        out
    }

    /// Parse the format produced by [`Word2Vec::save_text`].
    pub fn load_text(text: &str) -> Option<Word2Vec> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let mut parts = header.split_whitespace();
        let n: usize = parts.next()?.parse().ok()?;
        let dims: usize = parts.next()?.parse().ok()?;
        let mut words = Vec::with_capacity(n);
        let mut data = Vec::with_capacity(n * dims);
        for line in lines.take(n) {
            let mut parts = line.split_whitespace();
            words.push(parts.next()?.to_string());
            for _ in 0..dims {
                data.push(parts.next()?.parse().ok()?);
            }
        }
        if words.len() != n {
            return None;
        }
        let vocab = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
        let mut model = Word2Vec {
            vocab,
            words,
            input: Matrix::from_vec(n, dims, data),
            output: Matrix::zeros(n, dims),
            normalized: Matrix::zeros(n, dims),
        };
        model.renormalize();
        Some(model)
    }
}

/// Cosine similarity of two dense vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot = crate::matrix::vecops::dot(a, b);
    let na = crate::matrix::vecops::dot(a, a).sqrt();
    let nb = crate::matrix::vecops::dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy corpus with two clearly separated topic clusters.
    fn toy_corpus(reps: usize) -> Vec<Vec<String>> {
        let a = ["pfizer", "vaccine", "dose", "efficacy", "booster"];
        let b = ["ventilator", "icu", "oxygen", "intubation", "respirator"];
        let mut out = Vec::new();
        for i in 0..reps {
            // Rotate so every pair co-occurs.
            let rot = |words: &[&str]| -> Vec<String> {
                let mut v: Vec<String> = words.iter().map(|s| s.to_string()).collect();
                v.rotate_left(i % words.len());
                v
            };
            out.push(rot(&a));
            out.push(rot(&b));
        }
        out
    }

    #[test]
    fn builds_vocabulary() {
        let model = Word2Vec::train(&toy_corpus(3), &Word2VecConfig::default());
        assert_eq!(model.vocab_size(), 10);
        assert!(model.embed("pfizer").is_some());
        assert!(model.embed("unknown-term").is_none());
        assert_eq!(model.embed("pfizer").unwrap().len(), 32);
    }

    #[test]
    fn cooccurring_words_are_closer_than_cross_topic() {
        let cfg = Word2VecConfig {
            epochs: 30,
            ..Word2VecConfig::default()
        };
        let model = Word2Vec::train(&toy_corpus(20), &cfg);
        let same = model.similarity("pfizer", "vaccine").unwrap();
        let cross = model.similarity("pfizer", "ventilator").unwrap();
        assert!(
            same > cross,
            "within-topic sim {same} must beat cross-topic {cross}"
        );
    }

    #[test]
    fn nearest_returns_self_first() {
        let cfg = Word2VecConfig {
            epochs: 20,
            ..Word2VecConfig::default()
        };
        let model = Word2Vec::train(&toy_corpus(10), &cfg);
        let q = model.embed("icu").unwrap().to_vec();
        let near = model.nearest(&q, 3);
        assert_eq!(near[0].0, "icu");
        assert!((near[0].1 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn nearest_matches_per_query_renormalization() {
        // The precomputed unit rows must report the same similarities as
        // renormalizing every row per query (the old implementation).
        let model = Word2Vec::train(&toy_corpus(8), &Word2VecConfig::default());
        let q = model.embed_phrase(&["icu".into(), "oxygen".into()]);
        for (word, score) in model.nearest(&q, model.vocab_size()) {
            let expected = cosine(&q, model.embed(&word).unwrap());
            assert!(
                (score - expected).abs() < 1e-5,
                "{word}: {score} vs {expected}"
            );
        }
        // The unit rows really are unit-length (or zero).
        for w in ["icu", "pfizer", "dose"] {
            let row = model.normalized_embed(w).unwrap();
            let norm = crate::matrix::vecops::dot(row, row).sqrt();
            assert!((norm - 1.0).abs() < 1e-5, "{w}: |row| = {norm}");
        }
        // Zero queries score 0 everywhere, like `cosine`.
        let zeros = vec![0.0f32; model.dims()];
        assert!(model.nearest(&zeros, 3).iter().all(|(_, s)| *s == 0.0));
    }

    #[test]
    fn phrase_embedding_averages() {
        let model = Word2Vec::train(&toy_corpus(3), &Word2VecConfig::default());
        let phrase = model.embed_phrase(&["pfizer".into(), "vaccine".into()]);
        let a = model.embed("pfizer").unwrap();
        let b = model.embed("vaccine").unwrap();
        for (i, &p) in phrase.iter().enumerate() {
            assert!((p - (a[i] + b[i]) / 2.0).abs() < 1e-6);
        }
        // All-OOV phrase is a zero vector.
        let zero = model.embed_phrase(&["zzz".into()]);
        assert!(zero.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn save_load_round_trip() {
        let model = Word2Vec::train(&toy_corpus(2), &Word2VecConfig::default());
        let text = model.save_text();
        let back = Word2Vec::load_text(&text).unwrap();
        assert_eq!(back.vocab_size(), model.vocab_size());
        assert_eq!(back.dims(), model.dims());
        let (a, b) = (model.embed("dose").unwrap(), back.embed("dose").unwrap());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(Word2Vec::load_text("").is_none());
        assert!(Word2Vec::load_text("2 3\nword 1 2").is_none());
    }

    #[test]
    fn training_is_deterministic() {
        let cfg = Word2VecConfig::default();
        let m1 = Word2Vec::train(&toy_corpus(5), &cfg);
        let m2 = Word2Vec::train(&toy_corpus(5), &cfg);
        assert_eq!(m1.embed("dose"), m2.embed("dose"));
    }

    #[test]
    fn continue_training_moves_vectors() {
        let mut model = Word2Vec::train(&toy_corpus(5), &Word2VecConfig::default());
        let before = model.embed("dose").unwrap().to_vec();
        model.continue_training(&toy_corpus(5), &Word2VecConfig::default());
        let after = model.embed("dose").unwrap();
        assert_ne!(before.as_slice(), after);
    }

    #[test]
    fn cosine_properties() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert!((cosine(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn subsampling_thins_frequent_words_but_training_still_works() {
        // A corpus where "the" floods every sentence.
        let sentences: Vec<Vec<String>> = (0..30)
            .map(|i| {
                vec![
                    "the".to_string(),
                    "the".to_string(),
                    "the".to_string(),
                    if i % 2 == 0 { "pfizer" } else { "moderna" }.to_string(),
                    "vaccine".to_string(),
                ]
            })
            .collect();
        let cfg = Word2VecConfig {
            epochs: 10,
            subsample: 1e-3,
            ..Word2VecConfig::default()
        };
        let model = Word2Vec::train(&sentences, &cfg);
        // All words still embedded (subsampling affects training pairs,
        // not the vocabulary).
        assert!(model.embed("the").is_some());
        let sim = model.similarity("pfizer", "vaccine").unwrap();
        assert!(sim.is_finite());
        // Deterministic under a seed despite the stochastic subsampling.
        let again = Word2Vec::train(&sentences, &cfg);
        assert_eq!(model.embed("pfizer"), again.embed("pfizer"));
    }

    #[test]
    fn min_count_filters_rare_words() {
        let mut sents = toy_corpus(5);
        sents.push(vec!["hapax".to_string()]);
        let cfg = Word2VecConfig {
            min_count: 2,
            ..Word2VecConfig::default()
        };
        let model = Word2Vec::train(&sents, &cfg);
        assert!(model.embed("hapax").is_none());
    }
}
