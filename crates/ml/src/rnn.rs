//! Recurrent cells (GRU, LSTM) with full backpropagation through time,
//! and a bidirectional wrapper.
//!
//! §3.6: "we tried bidirectional RNNs (biLSTM and biGRU), since they have
//! been shown to capture contextual dependencies by taking into account
//! both forward and backward context … We opted for the biGRU layers over
//! biLSTM because while performance was slightly worse … the training
//! time was faster." Both cells are implemented so the E2 bench can
//! regenerate that comparison.

use crate::adam::Adam;
use crate::matrix::{sigmoid, vecops, Matrix};
use covidkg_rand::rngs::SmallRng;

/// Which recurrent cell a layer uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// Gated Recurrent Unit (3 gates, no cell state) — the paper's choice.
    Gru,
    /// Long Short-Term Memory (4 gates + cell state) — the ablation arm.
    Lstm,
}

/// One gate's parameters: `W·x + U·h + b`.
#[derive(Debug, Clone)]
struct Gate {
    w: Matrix,
    u: Matrix,
    b: Vec<f32>,
    gw: Matrix,
    gu: Matrix,
    gb: Vec<f32>,
    aw: Adam,
    au: Adam,
    ab: Adam,
}

impl Gate {
    fn new(input: usize, hidden: usize, rng: &mut SmallRng) -> Gate {
        Gate {
            w: Matrix::xavier(hidden, input, rng),
            u: Matrix::xavier(hidden, hidden, rng),
            b: vec![0.0; hidden],
            gw: Matrix::zeros(hidden, input),
            gu: Matrix::zeros(hidden, hidden),
            gb: vec![0.0; hidden],
            aw: Adam::new(hidden * input),
            au: Adam::new(hidden * hidden),
            ab: Adam::new(hidden),
        }
    }

    /// pre[i] = W·x + U·h + b
    fn pre(&self, x: &[f32], h: &[f32], out: &mut [f32]) {
        self.w.matvec(x, out);
        let mut uh = vec![0.0f32; out.len()];
        self.u.matvec(h, &mut uh);
        for ((o, &u), &b) in out.iter_mut().zip(&uh).zip(&self.b) {
            *o += u + b;
        }
    }

    /// Accumulate gradients for `da` (gradient at the pre-activation) and
    /// propagate into dx / dh_prev.
    fn backward(&mut self, da: &[f32], x: &[f32], h: &[f32], dx: &mut [f32], dh: &mut [f32]) {
        self.gw.add_outer(da, x, 1.0);
        self.gu.add_outer(da, h, 1.0);
        for (g, &d) in self.gb.iter_mut().zip(da) {
            *g += d;
        }
        self.w.matvec_t_add(da, dx);
        self.u.matvec_t_add(da, dh);
    }

    fn step(&mut self, lr: f32, scale: f32) {
        scale_slice(self.gw.data_mut(), scale);
        scale_slice(self.gu.data_mut(), scale);
        scale_slice(&mut self.gb, scale);
        self.aw.step(self.w.data_mut(), self.gw.data(), lr);
        self.au.step(self.u.data_mut(), self.gu.data(), lr);
        self.ab.step(&mut self.b, &self.gb, lr);
        self.gw.fill_zero();
        self.gu.fill_zero();
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    fn param_count(&self) -> usize {
        self.w.data().len() + self.u.data().len() + self.b.len()
    }

    fn export(&self, store: &mut crate::serialize::TensorStore, prefix: &str) {
        store.put(format!("{prefix}.w"), self.w.clone());
        store.put(format!("{prefix}.u"), self.u.clone());
        store.put_vec(format!("{prefix}.b"), &self.b);
    }

    fn from_store(store: &crate::serialize::TensorStore, prefix: &str) -> Option<Gate> {
        let w = store.get(&format!("{prefix}.w"))?.clone();
        let u = store.get(&format!("{prefix}.u"))?.clone();
        let b = store.get_vec(&format!("{prefix}.b"))?;
        let (hidden, input) = (w.rows(), w.cols());
        if u.rows() != hidden || u.cols() != hidden || b.len() != hidden {
            return None;
        }
        Some(Gate {
            gw: Matrix::zeros(hidden, input),
            gu: Matrix::zeros(hidden, hidden),
            gb: vec![0.0; hidden],
            aw: Adam::new(hidden * input),
            au: Adam::new(hidden * hidden),
            ab: Adam::new(hidden),
            w,
            u,
            b,
        })
    }
}

fn scale_slice(xs: &mut [f32], s: f32) {
    if s != 1.0 {
        xs.iter_mut().for_each(|x| *x *= s);
    }
}

/// A GRU cell.
#[derive(Debug, Clone)]
pub struct GruCell {
    input: usize,
    hidden: usize,
    z: Gate,
    r: Gate,
    h: Gate,
}

/// Per-timestep cache for GRU backprop.
#[derive(Debug, Clone)]
pub struct GruStep {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    z: Vec<f32>,
    r: Vec<f32>,
    hhat: Vec<f32>,
    /// Output hidden state.
    pub h: Vec<f32>,
}

impl GruCell {
    /// New cell with Xavier-initialized weights.
    pub fn new(input: usize, hidden: usize, rng: &mut SmallRng) -> GruCell {
        GruCell {
            input,
            hidden,
            z: Gate::new(input, hidden, rng),
            r: Gate::new(input, hidden, rng),
            h: Gate::new(input, hidden, rng),
        }
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.z.param_count() + self.r.param_count() + self.h.param_count()
    }

    /// Run the sequence, returning per-step caches (`.h` is the output).
    pub fn forward(&self, xs: &[Vec<f32>]) -> Vec<GruStep> {
        let mut steps = Vec::with_capacity(xs.len());
        let mut h_prev = vec![0.0f32; self.hidden];
        for x in xs {
            debug_assert_eq!(x.len(), self.input);
            let mut z = vec![0.0f32; self.hidden];
            self.z.pre(x, &h_prev, &mut z);
            z.iter_mut().for_each(|v| *v = sigmoid(*v));
            let mut r = vec![0.0f32; self.hidden];
            self.r.pre(x, &h_prev, &mut r);
            r.iter_mut().for_each(|v| *v = sigmoid(*v));
            let mut rh = vec![0.0f32; self.hidden];
            vecops::hadamard(&r, &h_prev, &mut rh);
            let mut hhat = vec![0.0f32; self.hidden];
            self.h.pre(x, &rh, &mut hhat);
            hhat.iter_mut().for_each(|v| *v = v.tanh());
            let mut h = vec![0.0f32; self.hidden];
            for i in 0..self.hidden {
                h[i] = (1.0 - z[i]) * h_prev[i] + z[i] * hhat[i];
            }
            steps.push(GruStep {
                x: x.clone(),
                h_prev: h_prev.clone(),
                z,
                r,
                hhat,
                h: h.clone(),
            });
            h_prev = h;
        }
        steps
    }

    /// BPTT: `dhs[t]` is ∂L/∂h_t from above. Returns ∂L/∂x_t per step and
    /// accumulates parameter gradients.
    pub fn backward(&mut self, steps: &[GruStep], dhs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(steps.len(), dhs.len());
        let n = steps.len();
        let mut dxs = vec![vec![0.0f32; self.input]; n];
        let mut dh_next = vec![0.0f32; self.hidden];
        for t in (0..n).rev() {
            let s = &steps[t];
            // Total gradient flowing into h_t.
            let mut dh: Vec<f32> = dhs[t].clone();
            for (a, &b) in dh.iter_mut().zip(&dh_next) {
                *a += b;
            }
            let mut dh_prev = vec![0.0f32; self.hidden];
            // h = (1-z)·h_prev + z·ĥ
            let mut dhhat = vec![0.0f32; self.hidden];
            let mut dz = vec![0.0f32; self.hidden];
            for i in 0..self.hidden {
                dhhat[i] = dh[i] * s.z[i];
                dz[i] = dh[i] * (s.hhat[i] - s.h_prev[i]);
                dh_prev[i] += dh[i] * (1.0 - s.z[i]);
            }
            // Candidate: ĥ = tanh(Wh x + Uh (r·h_prev) + bh)
            let mut da_h = vec![0.0f32; self.hidden];
            for i in 0..self.hidden {
                da_h[i] = dhhat[i] * (1.0 - s.hhat[i] * s.hhat[i]);
            }
            let mut rh = vec![0.0f32; self.hidden];
            vecops::hadamard(&s.r, &s.h_prev, &mut rh);
            // d(r·h_prev) from the candidate's U path.
            let mut drh = vec![0.0f32; self.hidden];
            self.h.u.matvec_t_add(&da_h, &mut drh);
            // Gate gradient paths (bias/W/U accumulation); the U product
            // for the candidate uses rh, so call backward with rh as "h".
            let mut dx = vec![0.0f32; self.input];
            {
                // Manual handling: gw/gb/W-transpose as usual; U uses rh.
                self.h.gw.add_outer(&da_h, &s.x, 1.0);
                self.h.gu.add_outer(&da_h, &rh, 1.0);
                for (g, &d) in self.h.gb.iter_mut().zip(&da_h) {
                    *g += d;
                }
                self.h.w.matvec_t_add(&da_h, &mut dx);
            }
            let mut dr = vec![0.0f32; self.hidden];
            for i in 0..self.hidden {
                dr[i] = drh[i] * s.h_prev[i];
                dh_prev[i] += drh[i] * s.r[i];
            }
            // Sigmoid gate pre-activations.
            let mut da_z = vec![0.0f32; self.hidden];
            let mut da_r = vec![0.0f32; self.hidden];
            for i in 0..self.hidden {
                da_z[i] = dz[i] * s.z[i] * (1.0 - s.z[i]);
                da_r[i] = dr[i] * s.r[i] * (1.0 - s.r[i]);
            }
            self.z.backward(&da_z, &s.x, &s.h_prev, &mut dx, &mut dh_prev);
            self.r.backward(&da_r, &s.x, &s.h_prev, &mut dx, &mut dh_prev);
            dxs[t] = dx;
            dh_next = dh_prev;
        }
        dxs
    }

    /// Adam update; `scale` averages accumulated gradients (1/batch).
    pub fn step(&mut self, lr: f32, scale: f32) {
        self.z.step(lr, scale);
        self.r.step(lr, scale);
        self.h.step(lr, scale);
    }

    /// Dump weights into a [`crate::serialize::TensorStore`] under `prefix`.
    pub fn export(&self, store: &mut crate::serialize::TensorStore, prefix: &str) {
        self.z.export(store, &format!("{prefix}.z"));
        self.r.export(store, &format!("{prefix}.r"));
        self.h.export(store, &format!("{prefix}.h"));
    }

    /// Rebuild from a store (optimizer state starts fresh).
    pub fn from_store(
        store: &crate::serialize::TensorStore,
        prefix: &str,
    ) -> Option<GruCell> {
        let z = Gate::from_store(store, &format!("{prefix}.z"))?;
        let r = Gate::from_store(store, &format!("{prefix}.r"))?;
        let h = Gate::from_store(store, &format!("{prefix}.h"))?;
        let (hidden, input) = (z.w.rows(), z.w.cols());
        Some(GruCell {
            input,
            hidden,
            z,
            r,
            h,
        })
    }
}

/// An LSTM cell.
#[derive(Debug, Clone)]
pub struct LstmCell {
    input: usize,
    hidden: usize,
    i: Gate,
    f: Gate,
    o: Gate,
    g: Gate,
}

/// Per-timestep cache for LSTM backprop.
#[derive(Debug, Clone)]
pub struct LstmStep {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    o: Vec<f32>,
    g: Vec<f32>,
    c: Vec<f32>,
    /// Output hidden state.
    pub h: Vec<f32>,
}

impl LstmCell {
    /// New cell; the forget gate bias starts at 1 (standard practice).
    pub fn new(input: usize, hidden: usize, rng: &mut SmallRng) -> LstmCell {
        let mut f = Gate::new(input, hidden, rng);
        f.b.iter_mut().for_each(|b| *b = 1.0);
        LstmCell {
            input,
            hidden,
            i: Gate::new(input, hidden, rng),
            f,
            o: Gate::new(input, hidden, rng),
            g: Gate::new(input, hidden, rng),
        }
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Total trainable parameters (4 gates — the source of the paper's
    /// "training time was faster" for GRU, which has 3).
    pub fn param_count(&self) -> usize {
        self.i.param_count()
            + self.f.param_count()
            + self.o.param_count()
            + self.g.param_count()
    }

    /// Run the sequence.
    pub fn forward(&self, xs: &[Vec<f32>]) -> Vec<LstmStep> {
        let mut steps = Vec::with_capacity(xs.len());
        let mut h_prev = vec![0.0f32; self.hidden];
        let mut c_prev = vec![0.0f32; self.hidden];
        for x in xs {
            debug_assert_eq!(x.len(), self.input);
            let mut gates = [
                vec![0.0f32; self.hidden],
                vec![0.0f32; self.hidden],
                vec![0.0f32; self.hidden],
                vec![0.0f32; self.hidden],
            ];
            self.i.pre(x, &h_prev, &mut gates[0]);
            self.f.pre(x, &h_prev, &mut gates[1]);
            self.o.pre(x, &h_prev, &mut gates[2]);
            self.g.pre(x, &h_prev, &mut gates[3]);
            let [mut gi, mut gf, mut go, mut gg] = gates;
            gi.iter_mut().for_each(|v| *v = sigmoid(*v));
            gf.iter_mut().for_each(|v| *v = sigmoid(*v));
            go.iter_mut().for_each(|v| *v = sigmoid(*v));
            gg.iter_mut().for_each(|v| *v = v.tanh());
            let mut c = vec![0.0f32; self.hidden];
            let mut h = vec![0.0f32; self.hidden];
            for k in 0..self.hidden {
                c[k] = gf[k] * c_prev[k] + gi[k] * gg[k];
                h[k] = go[k] * c[k].tanh();
            }
            steps.push(LstmStep {
                x: x.clone(),
                h_prev: h_prev.clone(),
                c_prev: c_prev.clone(),
                i: gi,
                f: gf,
                o: go,
                g: gg,
                c: c.clone(),
                h: h.clone(),
            });
            h_prev = h;
            c_prev = c;
        }
        steps
    }

    /// BPTT mirroring [`GruCell::backward`].
    pub fn backward(&mut self, steps: &[LstmStep], dhs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(steps.len(), dhs.len());
        let n = steps.len();
        let mut dxs = vec![vec![0.0f32; self.input]; n];
        let mut dh_next = vec![0.0f32; self.hidden];
        let mut dc_next = vec![0.0f32; self.hidden];
        for t in (0..n).rev() {
            let s = &steps[t];
            let mut dh: Vec<f32> = dhs[t].clone();
            for (a, &b) in dh.iter_mut().zip(&dh_next) {
                *a += b;
            }
            let mut dc = dc_next.clone();
            let mut do_ = vec![0.0f32; self.hidden];
            for k in 0..self.hidden {
                let tc = s.c[k].tanh();
                do_[k] = dh[k] * tc;
                dc[k] += dh[k] * s.o[k] * (1.0 - tc * tc);
            }
            let mut di = vec![0.0f32; self.hidden];
            let mut df = vec![0.0f32; self.hidden];
            let mut dg = vec![0.0f32; self.hidden];
            let mut dc_prev = vec![0.0f32; self.hidden];
            for k in 0..self.hidden {
                di[k] = dc[k] * s.g[k];
                df[k] = dc[k] * s.c_prev[k];
                dg[k] = dc[k] * s.i[k];
                dc_prev[k] = dc[k] * s.f[k];
            }
            // Pre-activation gradients.
            let mut da_i = vec![0.0f32; self.hidden];
            let mut da_f = vec![0.0f32; self.hidden];
            let mut da_o = vec![0.0f32; self.hidden];
            let mut da_g = vec![0.0f32; self.hidden];
            for k in 0..self.hidden {
                da_i[k] = di[k] * s.i[k] * (1.0 - s.i[k]);
                da_f[k] = df[k] * s.f[k] * (1.0 - s.f[k]);
                da_o[k] = do_[k] * s.o[k] * (1.0 - s.o[k]);
                da_g[k] = dg[k] * (1.0 - s.g[k] * s.g[k]);
            }
            let mut dx = vec![0.0f32; self.input];
            let mut dh_prev = vec![0.0f32; self.hidden];
            self.i.backward(&da_i, &s.x, &s.h_prev, &mut dx, &mut dh_prev);
            self.f.backward(&da_f, &s.x, &s.h_prev, &mut dx, &mut dh_prev);
            self.o.backward(&da_o, &s.x, &s.h_prev, &mut dx, &mut dh_prev);
            self.g.backward(&da_g, &s.x, &s.h_prev, &mut dx, &mut dh_prev);
            dxs[t] = dx;
            dh_next = dh_prev;
            dc_next = dc_prev;
        }
        dxs
    }

    /// Adam update.
    pub fn step(&mut self, lr: f32, scale: f32) {
        self.i.step(lr, scale);
        self.f.step(lr, scale);
        self.o.step(lr, scale);
        self.g.step(lr, scale);
    }

    /// Dump weights into a [`crate::serialize::TensorStore`] under `prefix`.
    pub fn export(&self, store: &mut crate::serialize::TensorStore, prefix: &str) {
        self.i.export(store, &format!("{prefix}.i"));
        self.f.export(store, &format!("{prefix}.f"));
        self.o.export(store, &format!("{prefix}.o"));
        self.g.export(store, &format!("{prefix}.g"));
    }

    /// Rebuild from a store (optimizer state starts fresh).
    pub fn from_store(
        store: &crate::serialize::TensorStore,
        prefix: &str,
    ) -> Option<LstmCell> {
        let i = Gate::from_store(store, &format!("{prefix}.i"))?;
        let f = Gate::from_store(store, &format!("{prefix}.f"))?;
        let o = Gate::from_store(store, &format!("{prefix}.o"))?;
        let g = Gate::from_store(store, &format!("{prefix}.g"))?;
        let (hidden, input) = (i.w.rows(), i.w.cols());
        Some(LstmCell {
            input,
            hidden,
            i,
            f,
            o,
            g,
        })
    }
}

/// A bidirectional recurrent layer: forward and backward cells whose
/// per-timestep hidden states are concatenated (`2 × hidden` outputs).
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // both variants are large; boxing buys nothing
pub enum BiRnn {
    /// Bidirectional GRU.
    Gru {
        /// Left-to-right cell.
        fwd: GruCell,
        /// Right-to-left cell.
        bwd: GruCell,
    },
    /// Bidirectional LSTM.
    Lstm {
        /// Left-to-right cell.
        fwd: LstmCell,
        /// Right-to-left cell.
        bwd: LstmCell,
    },
}

/// Cache for [`BiRnn::forward`].
pub enum BiCache {
    /// GRU caches.
    Gru(Vec<GruStep>, Vec<GruStep>),
    /// LSTM caches.
    Lstm(Vec<LstmStep>, Vec<LstmStep>),
}

impl BiRnn {
    /// New bidirectional layer.
    pub fn new(kind: CellKind, input: usize, hidden: usize, rng: &mut SmallRng) -> BiRnn {
        match kind {
            CellKind::Gru => BiRnn::Gru {
                fwd: GruCell::new(input, hidden, rng),
                bwd: GruCell::new(input, hidden, rng),
            },
            CellKind::Lstm => BiRnn::Lstm {
                fwd: LstmCell::new(input, hidden, rng),
                bwd: LstmCell::new(input, hidden, rng),
            },
        }
    }

    /// Hidden size of each direction.
    pub fn hidden(&self) -> usize {
        match self {
            BiRnn::Gru { fwd, .. } => fwd.hidden(),
            BiRnn::Lstm { fwd, .. } => fwd.hidden(),
        }
    }

    /// Trainable parameter count (both directions).
    pub fn param_count(&self) -> usize {
        match self {
            BiRnn::Gru { fwd, bwd } => fwd.param_count() + bwd.param_count(),
            BiRnn::Lstm { fwd, bwd } => fwd.param_count() + bwd.param_count(),
        }
    }

    /// Run both directions; outputs `[h_fwd_t ‖ h_bwd_t]` per timestep.
    pub fn forward(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, BiCache) {
        let mut rev: Vec<Vec<f32>> = xs.to_vec();
        rev.reverse();
        match self {
            BiRnn::Gru { fwd, bwd } => {
                let fsteps = fwd.forward(xs);
                let bsteps = bwd.forward(&rev);
                let outs = concat_bi(&fsteps, &bsteps, |s| &s.h);
                (outs, BiCache::Gru(fsteps, bsteps))
            }
            BiRnn::Lstm { fwd, bwd } => {
                let fsteps = fwd.forward(xs);
                let bsteps = bwd.forward(&rev);
                let outs = concat_bi(&fsteps, &bsteps, |s| &s.h);
                (outs, BiCache::Lstm(fsteps, bsteps))
            }
        }
    }

    /// BPTT through both directions; returns dx per timestep.
    pub fn backward(&mut self, cache: &BiCache, dhs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let hidden = self.hidden();
        let n = dhs.len();
        // Split the concatenated gradient and reverse the backward half.
        let dfwd: Vec<Vec<f32>> = dhs.iter().map(|d| d[..hidden].to_vec()).collect();
        let mut dbwd: Vec<Vec<f32>> = dhs.iter().map(|d| d[hidden..].to_vec()).collect();
        dbwd.reverse();
        let (dx_f, mut dx_b) = match (self, cache) {
            (BiRnn::Gru { fwd, bwd }, BiCache::Gru(fs, bs)) => {
                (fwd.backward(fs, &dfwd), bwd.backward(bs, &dbwd))
            }
            (BiRnn::Lstm { fwd, bwd }, BiCache::Lstm(fs, bs)) => {
                (fwd.backward(fs, &dfwd), bwd.backward(bs, &dbwd))
            }
            _ => panic!("cache/cell kind mismatch"),
        };
        dx_b.reverse();
        (0..n)
            .map(|t| {
                let mut dx = dx_f[t].clone();
                for (a, &b) in dx.iter_mut().zip(&dx_b[t]) {
                    *a += b;
                }
                dx
            })
            .collect()
    }

    /// Adam update on both cells.
    pub fn step(&mut self, lr: f32, scale: f32) {
        match self {
            BiRnn::Gru { fwd, bwd } => {
                fwd.step(lr, scale);
                bwd.step(lr, scale);
            }
            BiRnn::Lstm { fwd, bwd } => {
                fwd.step(lr, scale);
                bwd.step(lr, scale);
            }
        }
    }

    /// Dump both directions into a store under `prefix`.
    pub fn export(&self, store: &mut crate::serialize::TensorStore, prefix: &str) {
        match self {
            BiRnn::Gru { fwd, bwd } => {
                fwd.export(store, &format!("{prefix}.fwd"));
                bwd.export(store, &format!("{prefix}.bwd"));
            }
            BiRnn::Lstm { fwd, bwd } => {
                fwd.export(store, &format!("{prefix}.fwd"));
                bwd.export(store, &format!("{prefix}.bwd"));
            }
        }
    }

    /// Rebuild from a store.
    pub fn from_store(
        kind: CellKind,
        store: &crate::serialize::TensorStore,
        prefix: &str,
    ) -> Option<BiRnn> {
        Some(match kind {
            CellKind::Gru => BiRnn::Gru {
                fwd: GruCell::from_store(store, &format!("{prefix}.fwd"))?,
                bwd: GruCell::from_store(store, &format!("{prefix}.bwd"))?,
            },
            CellKind::Lstm => BiRnn::Lstm {
                fwd: LstmCell::from_store(store, &format!("{prefix}.fwd"))?,
                bwd: LstmCell::from_store(store, &format!("{prefix}.bwd"))?,
            },
        })
    }
}

fn concat_bi<S>(fsteps: &[S], bsteps: &[S], h: impl Fn(&S) -> &Vec<f32>) -> Vec<Vec<f32>> {
    let n = fsteps.len();
    (0..n)
        .map(|t| {
            let mut out = h(&fsteps[t]).clone();
            out.extend_from_slice(h(&bsteps[n - 1 - t]));
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_rand::SeedableRng;

    fn seq(rng: &mut SmallRng, n: usize, dim: usize) -> Vec<Vec<f32>> {
        use covidkg_rand::Rng;
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn gru_forward_shapes_and_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let cell = GruCell::new(4, 6, &mut rng);
        let xs = seq(&mut rng, 5, 4);
        let steps = cell.forward(&xs);
        assert_eq!(steps.len(), 5);
        for s in &steps {
            assert_eq!(s.h.len(), 6);
            // GRU hidden state is a convex combination of tanh outputs.
            assert!(s.h.iter().all(|v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn lstm_forward_shapes() {
        let mut rng = SmallRng::seed_from_u64(2);
        let cell = LstmCell::new(3, 5, &mut rng);
        let xs = seq(&mut rng, 4, 3);
        let steps = cell.forward(&xs);
        assert_eq!(steps.len(), 4);
        assert!(steps.iter().all(|s| s.h.len() == 5));
    }

    #[test]
    fn gru_has_fewer_params_than_lstm() {
        let mut rng = SmallRng::seed_from_u64(3);
        let gru = GruCell::new(8, 16, &mut rng);
        let lstm = LstmCell::new(8, 16, &mut rng);
        assert!(gru.param_count() < lstm.param_count());
        // 3 gates vs 4 gates exactly.
        assert_eq!(gru.param_count() * 4, lstm.param_count() * 3);
    }

    /// Finite-difference gradient check for the GRU: compare analytic dx
    /// and parameter grads against numeric derivatives of a scalar loss.
    #[test]
    fn gru_gradient_check() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut cell = GruCell::new(3, 4, &mut rng);
        let xs = seq(&mut rng, 3, 3);
        // Loss = sum of all outputs.
        let loss = |cell: &GruCell, xs: &[Vec<f32>]| -> f32 {
            cell.forward(xs).iter().map(|s| s.h.iter().sum::<f32>()).sum()
        };
        let steps = cell.forward(&xs);
        let dhs = vec![vec![1.0f32; 4]; 3];
        let dxs = cell.backward(&steps, &dhs);

        let eps = 1e-3;
        // Check dx numerically.
        for t in 0..xs.len() {
            for d in 0..3 {
                let mut xp = xs.clone();
                xp[t][d] += eps;
                let mut xm = xs.clone();
                xm[t][d] -= eps;
                let num = (loss(&cell, &xp) - loss(&cell, &xm)) / (2.0 * eps);
                let ana = dxs[t][d];
                assert!(
                    (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                    "dx[{t}][{d}]: numeric {num} vs analytic {ana}"
                );
            }
        }
        // Check a few weight gradients numerically (z gate W).
        for &(r, c) in &[(0usize, 0usize), (1, 2), (3, 1)] {
            let ana = cell.z.gw.get(r, c);
            let orig = cell.z.w.get(r, c);
            cell.z.w.set(r, c, orig + eps);
            let lp = loss(&cell, &xs);
            cell.z.w.set(r, c, orig - eps);
            let lm = loss(&cell, &xs);
            cell.z.w.set(r, c, orig);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "gw[{r}][{c}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    /// Same finite-difference check for the LSTM.
    #[test]
    fn lstm_gradient_check() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut cell = LstmCell::new(3, 4, &mut rng);
        let xs = seq(&mut rng, 3, 3);
        let loss = |cell: &LstmCell, xs: &[Vec<f32>]| -> f32 {
            cell.forward(xs).iter().map(|s| s.h.iter().sum::<f32>()).sum()
        };
        let steps = cell.forward(&xs);
        let dhs = vec![vec![1.0f32; 4]; 3];
        let dxs = cell.backward(&steps, &dhs);
        let eps = 1e-3;
        for t in 0..xs.len() {
            for d in 0..3 {
                let mut xp = xs.clone();
                xp[t][d] += eps;
                let mut xm = xs.clone();
                xm[t][d] -= eps;
                let num = (loss(&cell, &xp) - loss(&cell, &xm)) / (2.0 * eps);
                let ana = dxs[t][d];
                assert!(
                    (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                    "dx[{t}][{d}]: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn bidirectional_output_concatenates_directions() {
        let mut rng = SmallRng::seed_from_u64(4);
        let bi = BiRnn::new(CellKind::Gru, 3, 5, &mut rng);
        let xs = seq(&mut rng, 4, 3);
        let (outs, _) = bi.forward(&xs);
        assert_eq!(outs.len(), 4);
        assert!(outs.iter().all(|o| o.len() == 10));
        // The backward half of output t must equal the bwd cell's state at
        // mirrored position when run on the reversed sequence.
        let BiRnn::Gru { fwd, bwd } = &bi else { unreachable!() };
        let fsteps = fwd.forward(&xs);
        let mut rev = xs.clone();
        rev.reverse();
        let bsteps = bwd.forward(&rev);
        for t in 0..4 {
            assert_eq!(&outs[t][..5], fsteps[t].h.as_slice());
            assert_eq!(&outs[t][5..], bsteps[3 - t].h.as_slice());
        }
    }

    #[test]
    fn bidirectional_gradient_check() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut bi = BiRnn::new(CellKind::Gru, 2, 3, &mut rng);
        let xs = seq(&mut rng, 3, 2);
        let loss = |bi: &BiRnn, xs: &[Vec<f32>]| -> f32 {
            bi.forward(xs).0.iter().map(|h| h.iter().sum::<f32>()).sum()
        };
        let (_, cache) = bi.forward(&xs);
        let dhs = vec![vec![1.0f32; 6]; 3];
        let dxs = bi.backward(&cache, &dhs);
        let eps = 1e-3;
        for t in 0..3 {
            for d in 0..2 {
                let mut xp = xs.clone();
                xp[t][d] += eps;
                let mut xm = xs.clone();
                xm[t][d] -= eps;
                let num = (loss(&bi, &xp) - loss(&bi, &xm)) / (2.0 * eps);
                assert!(
                    (num - dxs[t][d]).abs() < 2e-2 * (1.0 + num.abs()),
                    "bi dx[{t}][{d}]: {num} vs {}",
                    dxs[t][d]
                );
            }
        }
    }

    #[test]
    fn training_reduces_loss_on_toy_task() {
        // Learn to output +1 on sequences whose first element is positive.
        use covidkg_rand::Rng;
        let mut rng = SmallRng::seed_from_u64(11);
        let mut cell = GruCell::new(1, 4, &mut rng);
        // Readout: mean of final hidden state.
        let examples: Vec<(Vec<Vec<f32>>, f32)> = (0..40)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                let xs: Vec<Vec<f32>> = (0..4)
                    .map(|t| vec![if t == 0 { sign } else { rng.gen_range(-0.2..0.2) }])
                    .collect();
                (xs, (sign + 1.0) / 2.0)
            })
            .collect();
        let loss_of = |cell: &GruCell| -> f32 {
            examples
                .iter()
                .map(|(xs, y)| {
                    let steps = cell.forward(xs);
                    let pred = sigmoid(steps.last().unwrap().h.iter().sum::<f32>());
                    -(y * pred.max(1e-6).ln() + (1.0 - y) * (1.0 - pred).max(1e-6).ln())
                })
                .sum::<f32>()
                / examples.len() as f32
        };
        let before = loss_of(&cell);
        for _ in 0..60 {
            for (xs, y) in &examples {
                let steps = cell.forward(xs);
                let pred = sigmoid(steps.last().unwrap().h.iter().sum::<f32>());
                let dl = pred - y; // d BCE / d logit
                let mut dhs = vec![vec![0.0f32; 4]; xs.len()];
                dhs.last_mut().unwrap().iter_mut().for_each(|d| *d = dl);
                cell.backward(&steps, &dhs);
            }
            cell.step(0.01, 1.0 / examples.len() as f32);
        }
        let after = loss_of(&cell);
        assert!(after < before * 0.5, "loss {before} -> {after}");
    }
}
