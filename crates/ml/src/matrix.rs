//! A minimal row-major `f32` matrix.
//!
//! Just enough linear algebra for the SVM, Word2Vec and RNN code: matmul,
//! transposed products, elementwise maps, axpy. Loops are written over
//! slices so LLVM auto-vectorizes the hot paths (see the workspace's
//! performance notes).

use covidkg_rand::rngs::SmallRng;
use covidkg_rand::Rng;

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix from explicit data (`data.len() == rows*cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut SmallRng) -> Matrix {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `y = self · x` for a vector `x` (len == cols). Output len == rows.
    pub fn matvec(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (r, out) in y.iter_mut().enumerate() {
            let row = self.row(r);
            let mut acc = 0.0f32;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *out = acc;
        }
    }

    /// `y += selfᵀ · x` for a vector `x` (len == rows). Output len == cols.
    pub fn matvec_t_add(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.rows);
        assert_eq!(y.len(), self.cols);
        for (r, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let row = self.row(r);
            for (out, &w) in y.iter_mut().zip(row.iter()) {
                *out += w * xv;
            }
        }
    }

    /// Rank-1 update: `self += scale · a · bᵀ` (a len == rows, b len == cols).
    pub fn add_outer(&mut self, a: &[f32], b: &[f32], scale: f32) {
        assert_eq!(a.len(), self.rows);
        assert_eq!(b.len(), self.cols);
        for (r, &av) in a.iter().enumerate() {
            let f = av * scale;
            if f == 0.0 {
                continue;
            }
            let row = self.row_mut(r);
            for (out, &bv) in row.iter_mut().zip(b.iter()) {
                *out += f * bv;
            }
        }
    }

    /// General matmul `self · other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j order: the inner loop runs over contiguous memory in both
        // `other` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// `self += scale * other` (same shape).
    pub fn axpy(&mut self, other: &Matrix, scale: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Set every element to zero (reuse allocation between batches).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Elementwise vector helpers used by the RNN cells.
pub mod vecops {
    /// `out[i] = a[i] * b[i]`.
    pub fn hadamard(a: &[f32], b: &[f32], out: &mut [f32]) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = x * y;
        }
    }

    /// `out[i] += a[i] * b[i]`.
    pub fn hadamard_add(a: &[f32], b: &[f32], out: &mut [f32]) {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o += x * y;
        }
    }

    /// `a · b`.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// `y += s * x`.
    pub fn axpy(s: f32, x: &[f32], y: &mut [f32]) {
        for (o, &v) in y.iter_mut().zip(x) {
            *o += s * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn from_vec_validates_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = vec![0.0; 2];
        m.matvec(&[1.0, 0.0, -1.0], &mut y);
        assert_eq!(y, [-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_accumulates() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut y = vec![1.0; 3];
        m.matvec_t_add(&[1.0, 1.0], &mut y);
        assert_eq!(y, [6.0, 8.0, 10.0]);
    }

    #[test]
    fn outer_product_update() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(m.data(), &[1.5, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn matmul_matches_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matmul_agrees_with_transpose_identity() {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let mut rng = SmallRng::seed_from_u64(7);
        let a = Matrix::xavier(4, 5, &mut rng);
        let b = Matrix::xavier(5, 3, &mut rng);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let m = Matrix::xavier(10, 10, &mut rng);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= bound));
        // Not all zero.
        assert!(m.frob_norm() > 0.0);
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn vecops_basics() {
        let mut out = vec![0.0; 3];
        vecops::hadamard(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &mut out);
        assert_eq!(out, [4.0, 10.0, 18.0]);
        vecops::hadamard_add(&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0], &mut out);
        assert_eq!(out, [5.0, 11.0, 19.0]);
        assert_eq!(vecops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        vecops::axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, [3.0, 5.0]);
    }

    #[test]
    fn axpy_and_zero() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        a.axpy(&b, 2.0);
        assert_eq!(a.data(), &[2.0, 4.0, 6.0, 8.0]);
        a.fill_zero();
        assert_eq!(a.data(), &[0.0; 4]);
    }
}
