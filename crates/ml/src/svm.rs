//! Support Vector Machine trained with Sequential Minimal Optimization.
//!
//! The paper's Machine-learning baseline is an SVM over bag-of-words +
//! positional features (§3.5), implemented there with Scikit-learn and
//! citing Lin & Lin's study of sigmoid kernels under SMO [63]. This is a
//! Platt-style simplified SMO over sparse feature vectors with linear,
//! RBF and sigmoid kernels.

use covidkg_rand::rngs::SmallRng;
use covidkg_rand::Rng;
use covidkg_rand::SeedableRng;

/// Sparse feature vector: sorted `(feature, value)` pairs.
pub type SparseVector = Vec<(u32, f32)>;

/// Kernel functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// `K(a,b) = a·b`
    Linear,
    /// `K(a,b) = exp(−γ‖a−b‖²)`
    Rbf {
        /// Width parameter γ.
        gamma: f32,
    },
    /// `K(a,b) = tanh(α a·b + c)` — the kernel of [63].
    Sigmoid {
        /// Slope α.
        alpha: f32,
        /// Offset c.
        c: f32,
    },
}

impl Kernel {
    /// Evaluate the kernel on two sparse vectors.
    pub fn eval(&self, a: &SparseVector, b: &SparseVector) -> f32 {
        match *self {
            Kernel::Linear => sparse_dot(a, b),
            Kernel::Rbf { gamma } => {
                let d2 = sparse_sq_dist(a, b);
                (-gamma * d2).exp()
            }
            Kernel::Sigmoid { alpha, c } => (alpha * sparse_dot(a, b) + c).tanh(),
        }
    }
}

fn sparse_dot(a: &SparseVector, b: &SparseVector) -> f32 {
    let (mut i, mut j, mut acc) = (0usize, 0usize, 0.0f32);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

fn sparse_sq_dist(a: &SparseVector, b: &SparseVector) -> f32 {
    let (mut i, mut j, mut acc) = (0usize, 0usize, 0.0f32);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&(fa, va)), Some(&(fb, vb))) => match fa.cmp(&fb) {
                std::cmp::Ordering::Less => {
                    acc += va * va;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    acc += vb * vb;
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let d = va - vb;
                    acc += d * d;
                    i += 1;
                    j += 1;
                }
            },
            (Some(&(_, va)), None) => {
                acc += va * va;
                i += 1;
            }
            (None, Some(&(_, vb))) => {
                acc += vb * vb;
                j += 1;
            }
            (None, None) => break,
        }
    }
    acc
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct SvmConfig {
    /// Kernel function.
    pub kernel: Kernel,
    /// Soft-margin penalty C.
    pub c: f32,
    /// KKT violation tolerance.
    pub tol: f32,
    /// Stop after this many consecutive passes without α updates.
    pub max_passes: usize,
    /// Hard cap on optimization sweeps.
    pub max_iters: usize,
    /// RNG seed (partner selection).
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            kernel: Kernel::Linear,
            c: 1.0,
            tol: 1e-3,
            max_passes: 5,
            max_iters: 200,
            seed: 42,
        }
    }
}

/// A trained SVM: support vectors with their coefficients.
#[derive(Debug, Clone)]
pub struct Svm {
    kernel: Kernel,
    support: Vec<SparseVector>,
    /// `α_i · y_i` per support vector.
    coef: Vec<f32>,
    bias: f32,
}

impl Svm {
    /// Train on sparse examples with ±1 labels (`true` ⇒ +1).
    ///
    /// Panics if `examples` is empty or lengths mismatch — training-set
    /// construction bugs, not data errors.
    pub fn train(examples: &[SparseVector], labels: &[bool], config: &SvmConfig) -> Svm {
        assert!(!examples.is_empty(), "empty training set");
        assert_eq!(examples.len(), labels.len());
        let n = examples.len();
        let y: Vec<f32> = labels.iter().map(|&l| if l { 1.0 } else { -1.0 }).collect();
        let mut alpha = vec![0.0f32; n];
        let mut b = 0.0f32;
        let mut rng = SmallRng::seed_from_u64(config.seed);

        // Cache the kernel matrix when it fits (n² f32s); the training
        // sets in the experiments are ≤ a few thousand rows.
        let cache: Option<Vec<f32>> = if n * n <= 16_000_000 {
            let mut k = vec![0.0f32; n * n];
            for i in 0..n {
                for j in i..n {
                    let v = config.kernel.eval(&examples[i], &examples[j]);
                    k[i * n + j] = v;
                    k[j * n + i] = v;
                }
            }
            Some(k)
        } else {
            None
        };
        let kval = |i: usize, j: usize| -> f32 {
            match &cache {
                Some(k) => k[i * n + j],
                None => config.kernel.eval(&examples[i], &examples[j]),
            }
        };
        let f = |alpha: &[f32], b: f32, i: usize| -> f32 {
            let mut acc = b;
            for (j, &a) in alpha.iter().enumerate() {
                if a != 0.0 {
                    acc += a * y[j] * kval(j, i);
                }
            }
            acc
        };

        let mut passes = 0;
        let mut iters = 0;
        while passes < config.max_passes && iters < config.max_iters {
            let mut changed = 0;
            for i in 0..n {
                let ei = f(&alpha, b, i) - y[i];
                let violates = (y[i] * ei < -config.tol && alpha[i] < config.c)
                    || (y[i] * ei > config.tol && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                // Random partner j != i.
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = f(&alpha, b, j) - y[j];
                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if (y[i] - y[j]).abs() < f32::EPSILON {
                    ((ai_old + aj_old - config.c).max(0.0), (ai_old + aj_old).min(config.c))
                } else {
                    ((aj_old - ai_old).max(0.0), (config.c + aj_old - ai_old).min(config.c))
                };
                // Guard against degenerate or inverted boxes (hi can land
                // an epsilon below lo from float cancellation).
                if hi <= lo + 1e-8 {
                    continue;
                }
                let eta = 2.0 * kval(i, j) - kval(i, i) - kval(j, j);
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - y[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-5 {
                    continue;
                }
                let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                alpha[i] = ai;
                alpha[j] = aj;
                // Bias update (Platt's rules).
                let b1 = b - ei
                    - y[i] * (ai - ai_old) * kval(i, i)
                    - y[j] * (aj - aj_old) * kval(i, j);
                let b2 = b - ej
                    - y[i] * (ai - ai_old) * kval(i, j)
                    - y[j] * (aj - aj_old) * kval(j, j);
                b = if ai > 0.0 && ai < config.c {
                    b1
                } else if aj > 0.0 && aj < config.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
            iters += 1;
        }

        let mut support = Vec::new();
        let mut coef = Vec::new();
        for (i, &a) in alpha.iter().enumerate() {
            if a > 1e-7 {
                support.push(examples[i].clone());
                coef.push(a * y[i]);
            }
        }
        Svm {
            kernel: config.kernel,
            support,
            coef,
            bias: b,
        }
    }

    /// Decision value (distance-ish from the separating surface).
    pub fn decision(&self, x: &SparseVector) -> f32 {
        let mut acc = self.bias;
        for (sv, &c) in self.support.iter().zip(&self.coef) {
            acc += c * self.kernel.eval(sv, x);
        }
        acc
    }

    /// Predicted label.
    pub fn predict(&self, x: &SparseVector) -> bool {
        self.decision(x) >= 0.0
    }

    /// Number of support vectors retained.
    pub fn n_support(&self) -> usize {
        self.support.len()
    }

    /// Serialize to a text format (kernel header, bias, then one
    /// `coef id:val id:val…` line per support vector) — the released-model
    /// payload for the №11/13 registry.
    pub fn save_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        match self.kernel {
            Kernel::Linear => {
                let _ = writeln!(out, "kernel linear");
            }
            Kernel::Rbf { gamma } => {
                let _ = writeln!(out, "kernel rbf {gamma}");
            }
            Kernel::Sigmoid { alpha, c } => {
                let _ = writeln!(out, "kernel sigmoid {alpha} {c}");
            }
        }
        let _ = writeln!(out, "bias {}", self.bias);
        let _ = writeln!(out, "support {}", self.support.len());
        for (sv, coef) in self.support.iter().zip(&self.coef) {
            let _ = write!(out, "{coef}");
            for (id, val) in sv {
                let _ = write!(out, " {id}:{val}");
            }
            out.push('\n');
        }
        out
    }

    /// Parse the format produced by [`Svm::save_text`].
    pub fn load_text(text: &str) -> Option<Svm> {
        let mut lines = text.lines();
        let kernel_line = lines.next()?;
        let mut parts = kernel_line.split_whitespace();
        if parts.next()? != "kernel" {
            return None;
        }
        let kernel = match parts.next()? {
            "linear" => Kernel::Linear,
            "rbf" => Kernel::Rbf {
                gamma: parts.next()?.parse().ok()?,
            },
            "sigmoid" => Kernel::Sigmoid {
                alpha: parts.next()?.parse().ok()?,
                c: parts.next()?.parse().ok()?,
            },
            _ => return None,
        };
        let bias_line = lines.next()?;
        let bias: f32 = bias_line.strip_prefix("bias ")?.trim().parse().ok()?;
        let n: usize = lines.next()?.strip_prefix("support ")?.trim().parse().ok()?;
        let mut support = Vec::with_capacity(n);
        let mut coef = Vec::with_capacity(n);
        for line in lines.take(n) {
            let mut parts = line.split_whitespace();
            coef.push(parts.next()?.parse().ok()?);
            let mut sv: SparseVector = Vec::new();
            for pair in parts {
                let (id, val) = pair.split_once(':')?;
                sv.push((id.parse().ok()?, val.parse().ok()?));
            }
            support.push(sv);
        }
        if support.len() != n {
            return None;
        }
        Some(Svm {
            kernel,
            support,
            coef,
            bias,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(v: &[f32]) -> SparseVector {
        v.iter()
            .enumerate()
            .filter(|(_, &x)| x != 0.0)
            .map(|(i, &x)| (i as u32, x))
            .collect()
    }

    #[test]
    fn sparse_ops() {
        let a = dense(&[1.0, 0.0, 2.0]);
        let b = dense(&[0.0, 3.0, 4.0]);
        assert_eq!(sparse_dot(&a, &b), 8.0);
        assert_eq!(sparse_sq_dist(&a, &b), 1.0 + 9.0 + 4.0);
        assert_eq!(sparse_sq_dist(&a, &a), 0.0);
    }

    #[test]
    fn kernels_have_expected_shape() {
        let a = dense(&[1.0, 0.0]);
        let b = dense(&[0.0, 1.0]);
        assert_eq!(Kernel::Linear.eval(&a, &b), 0.0);
        let rbf = Kernel::Rbf { gamma: 1.0 };
        assert!((rbf.eval(&a, &a) - 1.0).abs() < 1e-6);
        assert!(rbf.eval(&a, &b) < 1.0);
        let sig = Kernel::Sigmoid { alpha: 1.0, c: 0.0 };
        assert!((sig.eval(&a, &a) - 1.0f32.tanh()).abs() < 1e-6);
    }

    fn linearly_separable(n: usize) -> (Vec<SparseVector>, Vec<bool>) {
        // Positive class around (2, 2), negative around (-2, -2).
        let mut rng = SmallRng::seed_from_u64(9);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let label = i % 2 == 0;
            let center = if label { 2.0 } else { -2.0 };
            let x = center + rng.gen_range(-0.5f32..0.5);
            let y = center + rng.gen_range(-0.5f32..0.5);
            xs.push(dense(&[x, y]));
            ys.push(label);
        }
        (xs, ys)
    }

    #[test]
    fn linear_kernel_separates_blobs() {
        let (xs, ys) = linearly_separable(60);
        let svm = Svm::train(&xs, &ys, &SvmConfig::default());
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| svm.predict(x) == y)
            .count();
        assert_eq!(correct, xs.len(), "separable data must fit exactly");
        assert!(svm.n_support() < xs.len(), "most alphas should be zero");
    }

    #[test]
    fn rbf_kernel_fits_xor() {
        // XOR is not linearly separable; RBF must handle it.
        let xs = vec![
            dense(&[0.0, 0.0]),
            dense(&[1.0, 1.0]),
            dense(&[1.0, 0.0]),
            dense(&[0.0, 1.0]),
        ];
        let ys = vec![false, false, true, true];
        let cfg = SvmConfig {
            kernel: Kernel::Rbf { gamma: 2.0 },
            c: 10.0,
            max_iters: 2000,
            max_passes: 20,
            ..SvmConfig::default()
        };
        let svm = Svm::train(&xs, &ys, &cfg);
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(svm.predict(x), y);
        }
        let lin = Svm::train(&xs, &ys, &SvmConfig::default());
        let lin_correct = xs.iter().zip(&ys).filter(|(x, &y)| lin.predict(x) == y).count();
        assert!(lin_correct < 4, "linear kernel must fail on XOR");
    }

    #[test]
    fn sigmoid_kernel_trains() {
        let (xs, ys) = linearly_separable(40);
        let cfg = SvmConfig {
            kernel: Kernel::Sigmoid { alpha: 0.25, c: 0.0 },
            c: 5.0,
            max_iters: 1000,
            max_passes: 10,
            ..SvmConfig::default()
        };
        let svm = Svm::train(&xs, &ys, &cfg);
        let correct = xs.iter().zip(&ys).filter(|(x, &y)| svm.predict(x) == y).count();
        assert!(
            correct as f64 / xs.len() as f64 > 0.9,
            "sigmoid kernel accuracy {correct}/{}",
            xs.len()
        );
    }

    #[test]
    fn decision_values_order_by_margin() {
        let (xs, ys) = linearly_separable(40);
        let svm = Svm::train(&xs, &ys, &SvmConfig::default());
        let far_pos = dense(&[5.0, 5.0]);
        let near_pos = dense(&[0.6, 0.6]);
        assert!(svm.decision(&far_pos) > svm.decision(&near_pos));
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let (xs, ys) = linearly_separable(30);
        let a = Svm::train(&xs, &ys, &SvmConfig::default());
        let b = Svm::train(&xs, &ys, &SvmConfig::default());
        assert_eq!(a.bias, b.bias);
        assert_eq!(a.n_support(), b.n_support());
    }

    #[test]
    fn generalizes_to_unseen_points() {
        let (xs, ys) = linearly_separable(80);
        let svm = Svm::train(&xs, &ys, &SvmConfig::default());
        assert!(svm.predict(&dense(&[1.5, 2.5])));
        assert!(!svm.predict(&dense(&[-1.5, -2.5])));
    }

    #[test]
    fn save_load_round_trip_preserves_decisions() {
        let (xs, ys) = linearly_separable(40);
        for kernel in [
            Kernel::Linear,
            Kernel::Rbf { gamma: 0.5 },
            Kernel::Sigmoid { alpha: 0.25, c: 0.1 },
        ] {
            let cfg = SvmConfig {
                kernel,
                ..SvmConfig::default()
            };
            let svm = Svm::train(&xs, &ys, &cfg);
            let back = Svm::load_text(&svm.save_text()).expect("round trip");
            assert_eq!(back.n_support(), svm.n_support());
            for x in &xs {
                assert!(
                    (svm.decision(x) - back.decision(x)).abs() < 1e-4,
                    "{kernel:?} decision drift"
                );
                assert_eq!(svm.predict(x), back.predict(x));
            }
        }
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(Svm::load_text("").is_none());
        assert!(Svm::load_text("kernel bogus\nbias 0\nsupport 0\n").is_none());
        assert!(Svm::load_text("kernel linear\nbias 0\nsupport 2\n1 0:1\n").is_none());
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_panics() {
        let _ = Svm::train(&[], &[], &SvmConfig::default());
    }
}
