//! Dense / BatchNorm / Dropout layers for the classifier head of Fig 3
//! ("a dense layer of 16 units, a batch normalization layer, a dropout
//! layer and a dense binary classifier").
//!
//! Layers operate on batch matrices (`batch × features`); the RNN encoders
//! run per-example and their flattened outputs are stacked into a batch
//! before entering the head.

use crate::adam::Adam;
use crate::matrix::Matrix;
use covidkg_rand::rngs::SmallRng;
use covidkg_rand::Rng;

/// Activation applied by a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    None,
    /// max(0, x).
    Relu,
    /// tanh(x).
    Tanh,
}

/// Fully connected layer `y = act(x·Wᵀ + b)`.
#[derive(Debug, Clone)]
pub struct Dense {
    w: Matrix, // out × in
    b: Vec<f32>,
    act: Activation,
    gw: Matrix,
    gb: Vec<f32>,
    aw: Adam,
    ab: Adam,
}

/// Forward cache for [`Dense`].
pub struct DenseCache {
    x: Matrix,
    /// Post-activation output.
    pub y: Matrix,
}

impl Dense {
    /// New layer.
    pub fn new(input: usize, output: usize, act: Activation, rng: &mut SmallRng) -> Dense {
        Dense {
            w: Matrix::xavier(output, input, rng),
            b: vec![0.0; output],
            act,
            gw: Matrix::zeros(output, input),
            gb: vec![0.0; output],
            aw: Adam::new(output * input),
            ab: Adam::new(output),
        }
    }

    /// Output width.
    pub fn output(&self) -> usize {
        self.w.rows()
    }

    /// Input width.
    pub fn input(&self) -> usize {
        self.w.cols()
    }

    /// Trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.w.data().len() + self.b.len()
    }

    /// Forward over a batch (`batch × input`).
    pub fn forward(&self, x: &Matrix) -> DenseCache {
        assert_eq!(x.cols(), self.input());
        let mut y = Matrix::zeros(x.rows(), self.output());
        for r in 0..x.rows() {
            let row = x.row(r);
            let yrow = y.row_mut(r);
            self.w.matvec(row, yrow);
            for (v, &b) in yrow.iter_mut().zip(&self.b) {
                *v += b;
                *v = match self.act {
                    Activation::None => *v,
                    Activation::Relu => v.max(0.0),
                    Activation::Tanh => v.tanh(),
                };
            }
        }
        DenseCache { x: x.clone(), y }
    }

    /// Backward: accumulate grads, return dL/dx.
    pub fn backward(&mut self, cache: &DenseCache, dy: &Matrix) -> Matrix {
        assert_eq!(dy.rows(), cache.x.rows());
        assert_eq!(dy.cols(), self.output());
        let mut dx = Matrix::zeros(cache.x.rows(), self.input());
        for r in 0..dy.rows() {
            // Back through the activation.
            let mut da: Vec<f32> = dy.row(r).to_vec();
            for (d, &y) in da.iter_mut().zip(cache.y.row(r)) {
                *d *= match self.act {
                    Activation::None => 1.0,
                    Activation::Relu => {
                        if y > 0.0 {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    Activation::Tanh => 1.0 - y * y,
                };
            }
            self.gw.add_outer(&da, cache.x.row(r), 1.0);
            for (g, &d) in self.gb.iter_mut().zip(&da) {
                *g += d;
            }
            self.w.matvec_t_add(&da, dx.row_mut(r));
        }
        dx
    }

    /// Adam update; `scale` averages the accumulated gradient.
    pub fn step(&mut self, lr: f32, scale: f32) {
        if scale != 1.0 {
            self.gw.data_mut().iter_mut().for_each(|g| *g *= scale);
            self.gb.iter_mut().for_each(|g| *g *= scale);
        }
        self.aw.step(self.w.data_mut(), self.gw.data(), lr);
        self.ab.step(&mut self.b, &self.gb, lr);
        self.gw.fill_zero();
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Dump weights into a store under `prefix`.
    pub fn export(&self, store: &mut crate::serialize::TensorStore, prefix: &str) {
        store.put(format!("{prefix}.w"), self.w.clone());
        store.put_vec(format!("{prefix}.b"), &self.b);
    }

    /// Rebuild from a store (activation is supplied by the caller's
    /// architecture description; optimizer state starts fresh).
    pub fn from_store(
        store: &crate::serialize::TensorStore,
        prefix: &str,
        act: Activation,
    ) -> Option<Dense> {
        let w = store.get(&format!("{prefix}.w"))?.clone();
        let b = store.get_vec(&format!("{prefix}.b"))?;
        if b.len() != w.rows() {
            return None;
        }
        let (out_w, in_w) = (w.rows(), w.cols());
        Some(Dense {
            gw: Matrix::zeros(out_w, in_w),
            gb: vec![0.0; out_w],
            aw: Adam::new(out_w * in_w),
            ab: Adam::new(out_w),
            w,
            b,
            act,
        })
    }
}

/// Batch normalization over the batch dimension with learned scale/shift
/// and running statistics for inference.
#[derive(Debug, Clone)]
pub struct BatchNorm {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    ggamma: Vec<f32>,
    gbeta: Vec<f32>,
    agamma: Adam,
    abeta: Adam,
}

/// Forward cache for [`BatchNorm`].
pub struct BnCache {
    xhat: Matrix,
    var: Vec<f32>,
    /// Normalized, scaled output.
    pub y: Matrix,
}

impl BatchNorm {
    /// New layer over `features` columns.
    pub fn new(features: usize) -> BatchNorm {
        BatchNorm {
            gamma: vec![1.0; features],
            beta: vec![0.0; features],
            running_mean: vec![0.0; features],
            running_var: vec![1.0; features],
            momentum: 0.9,
            eps: 1e-5,
            ggamma: vec![0.0; features],
            gbeta: vec![0.0; features],
            agamma: Adam::new(features),
            abeta: Adam::new(features),
        }
    }

    /// Trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.gamma.len() + self.beta.len()
    }

    /// Training-mode forward (batch statistics; updates running stats).
    pub fn forward_train(&mut self, x: &Matrix) -> BnCache {
        let (n, f) = (x.rows(), x.cols());
        assert_eq!(f, self.gamma.len());
        assert!(n > 0);
        let mut mean = vec![0.0f32; f];
        for r in 0..n {
            for (m, &v) in mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n as f32);
        let mut var = vec![0.0f32; f];
        for r in 0..n {
            for (c, (&v, &m)) in x.row(r).iter().zip(&mean).enumerate() {
                var[c] += (v - m) * (v - m);
            }
        }
        var.iter_mut().for_each(|v| *v /= n as f32);
        for c in 0..f {
            self.running_mean[c] =
                self.momentum * self.running_mean[c] + (1.0 - self.momentum) * mean[c];
            self.running_var[c] =
                self.momentum * self.running_var[c] + (1.0 - self.momentum) * var[c];
        }
        let mut xhat = Matrix::zeros(n, f);
        let mut y = Matrix::zeros(n, f);
        for r in 0..n {
            for c in 0..f {
                let h = (x.get(r, c) - mean[c]) / (var[c] + self.eps).sqrt();
                xhat.set(r, c, h);
                y.set(r, c, self.gamma[c] * h + self.beta[c]);
            }
        }
        BnCache { xhat, var, y }
    }

    /// Inference-mode forward (running statistics).
    pub fn forward_infer(&self, x: &Matrix) -> Matrix {
        let (n, f) = (x.rows(), x.cols());
        let mut y = Matrix::zeros(n, f);
        for r in 0..n {
            for c in 0..f {
                let h = (x.get(r, c) - self.running_mean[c])
                    / (self.running_var[c] + self.eps).sqrt();
                y.set(r, c, self.gamma[c] * h + self.beta[c]);
            }
        }
        y
    }

    /// Backward through the batch statistics; returns dL/dx.
    pub fn backward(&mut self, cache: &BnCache, dy: &Matrix) -> Matrix {
        let (n, f) = (dy.rows(), dy.cols());
        let nf = n as f32;
        let mut dx = Matrix::zeros(n, f);
        for c in 0..f {
            let inv_std = 1.0 / (cache.var[c] + self.eps).sqrt();
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for r in 0..n {
                let d = dy.get(r, c);
                sum_dy += d;
                sum_dy_xhat += d * cache.xhat.get(r, c);
                self.ggamma[c] += d * cache.xhat.get(r, c);
                self.gbeta[c] += d;
            }
            for r in 0..n {
                let d = dy.get(r, c);
                let xh = cache.xhat.get(r, c);
                let v = self.gamma[c] * inv_std / nf * (nf * d - sum_dy - xh * sum_dy_xhat);
                dx.set(r, c, v);
            }
        }
        dx
    }

    /// Adam update.
    pub fn step(&mut self, lr: f32, scale: f32) {
        if scale != 1.0 {
            self.ggamma.iter_mut().for_each(|g| *g *= scale);
            self.gbeta.iter_mut().for_each(|g| *g *= scale);
        }
        self.agamma.step(&mut self.gamma, &self.ggamma, lr);
        self.abeta.step(&mut self.beta, &self.gbeta, lr);
        self.ggamma.iter_mut().for_each(|g| *g = 0.0);
        self.gbeta.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Dump parameters *and running statistics* (inference needs both).
    pub fn export(&self, store: &mut crate::serialize::TensorStore, prefix: &str) {
        store.put_vec(format!("{prefix}.gamma"), &self.gamma);
        store.put_vec(format!("{prefix}.beta"), &self.beta);
        store.put_vec(format!("{prefix}.running_mean"), &self.running_mean);
        store.put_vec(format!("{prefix}.running_var"), &self.running_var);
    }

    /// Rebuild from a store.
    pub fn from_store(store: &crate::serialize::TensorStore, prefix: &str) -> Option<BatchNorm> {
        let gamma = store.get_vec(&format!("{prefix}.gamma"))?;
        let beta = store.get_vec(&format!("{prefix}.beta"))?;
        let running_mean = store.get_vec(&format!("{prefix}.running_mean"))?;
        let running_var = store.get_vec(&format!("{prefix}.running_var"))?;
        let n = gamma.len();
        if beta.len() != n || running_mean.len() != n || running_var.len() != n {
            return None;
        }
        let mut bn = BatchNorm::new(n);
        bn.gamma = gamma;
        bn.beta = beta;
        bn.running_mean = running_mean;
        bn.running_var = running_var;
        Some(bn)
    }
}

/// Inverted dropout: scales surviving activations by `1/(1-p)` during
/// training so inference is a no-op.
#[derive(Debug, Clone)]
pub struct Dropout {
    /// Drop probability.
    pub p: f32,
}

impl Dropout {
    /// Training-mode forward; returns the output and the mask for backward.
    pub fn forward_train(&self, x: &Matrix, rng: &mut SmallRng) -> (Matrix, Matrix) {
        let mut y = x.clone();
        let mut mask = Matrix::zeros(x.rows(), x.cols());
        let keep = 1.0 - self.p;
        if keep <= 0.0 {
            y.fill_zero();
            return (y, mask);
        }
        let scale = 1.0 / keep;
        for (i, v) in y.data_mut().iter_mut().enumerate() {
            if rng.gen::<f32>() < self.p {
                *v = 0.0;
            } else {
                *v *= scale;
                mask.data_mut()[i] = scale;
            }
        }
        (y, mask)
    }

    /// Backward: elementwise multiply by the saved mask.
    pub fn backward(&self, mask: &Matrix, dy: &Matrix) -> Matrix {
        let mut dx = dy.clone();
        for (d, &m) in dx.data_mut().iter_mut().zip(mask.data()) {
            *d *= m;
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use covidkg_rand::SeedableRng;

    #[test]
    fn dense_forward_known_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut layer = Dense::new(2, 1, Activation::None, &mut rng);
        layer.w = Matrix::from_vec(1, 2, vec![2.0, -1.0]);
        layer.b = vec![0.5];
        let x = Matrix::from_vec(2, 2, vec![1.0, 1.0, 0.0, 3.0]);
        let cache = layer.forward(&x);
        assert_eq!(cache.y.data(), &[1.5, -2.5]);
    }

    #[test]
    fn dense_gradient_check() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.1, 0.9, 0.4, -0.6]);
        let loss = |l: &Dense, x: &Matrix| -> f32 { l.forward(x).y.data().iter().sum() };
        let cache = layer.forward(&x);
        let dy = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let dx = layer.backward(&cache, &dy);
        let eps = 1e-3;
        // dx check.
        for r in 0..2 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let num = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps);
                assert!(
                    (num - dx.get(r, c)).abs() < 1e-2 * (1.0 + num.abs()),
                    "dx[{r}][{c}]"
                );
            }
        }
        // Weight grad check.
        let ana = layer.gw.get(0, 1);
        let orig = layer.w.get(0, 1);
        layer.w.set(0, 1, orig + eps);
        let lp = loss(&layer, &x);
        layer.w.set(0, 1, orig - eps);
        let lm = loss(&layer, &x);
        layer.w.set(0, 1, orig);
        let num = (lp - lm) / (2.0 * eps);
        assert!((num - ana).abs() < 1e-2 * (1.0 + num.abs()));
    }

    #[test]
    fn relu_kills_negative_gradients() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut layer = Dense::new(1, 1, Activation::Relu, &mut rng);
        layer.w = Matrix::from_vec(1, 1, vec![1.0]);
        layer.b = vec![0.0];
        let x = Matrix::from_vec(1, 1, vec![-2.0]);
        let cache = layer.forward(&x);
        assert_eq!(cache.y.data(), &[0.0]);
        let dx = layer.backward(&cache, &Matrix::from_vec(1, 1, vec![1.0]));
        assert_eq!(dx.data(), &[0.0]);
    }

    #[test]
    fn batchnorm_normalizes_batches() {
        let mut bn = BatchNorm::new(2);
        let x = Matrix::from_vec(4, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
        let cache = bn.forward_train(&x);
        // Columns of xhat must have ~zero mean, ~unit variance.
        for c in 0..2 {
            let mean: f32 = (0..4).map(|r| cache.xhat.get(r, c)).sum::<f32>() / 4.0;
            let var: f32 = (0..4).map(|r| cache.xhat.get(r, c).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn batchnorm_gradient_check() {
        let mut bn = BatchNorm::new(2);
        bn.gamma = vec![1.5, 0.5];
        bn.beta = vec![0.1, -0.2];
        let x = Matrix::from_vec(3, 2, vec![0.5, 1.0, -0.4, 2.0, 0.9, -1.5]);
        // Use a weighted-sum loss so gradients are not uniform.
        let weights = [1.0f32, -2.0, 0.5, 1.5, -1.0, 2.0];
        let loss = |bn: &mut BatchNorm, x: &Matrix| -> f32 {
            // Save/restore running stats so repeated calls don't drift.
            let (rm, rv) = (bn.running_mean.clone(), bn.running_var.clone());
            let out = bn.forward_train(x);
            bn.running_mean = rm;
            bn.running_var = rv;
            out.y.data().iter().zip(&weights).map(|(y, w)| y * w).sum()
        };
        let cache = bn.forward_train(&x);
        let dy = Matrix::from_vec(3, 2, weights.to_vec());
        let dx = bn.backward(&cache, &dy);
        let eps = 1e-3;
        for r in 0..3 {
            for c in 0..2 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let num = (loss(&mut bn, &xp) - loss(&mut bn, &xm)) / (2.0 * eps);
                assert!(
                    (num - dx.get(r, c)).abs() < 3e-2 * (1.0 + num.abs()),
                    "bn dx[{r}][{c}]: {num} vs {}",
                    dx.get(r, c)
                );
            }
        }
    }

    #[test]
    fn batchnorm_inference_uses_running_stats() {
        let mut bn = BatchNorm::new(1);
        // Feed consistent batches so running stats converge.
        let x = Matrix::from_vec(4, 1, vec![10.0, 12.0, 8.0, 10.0]);
        for _ in 0..200 {
            bn.forward_train(&x);
        }
        let y = bn.forward_infer(&Matrix::from_vec(1, 1, vec![10.0]));
        // 10 is the mean, so the normalized output should be ~beta.
        assert!(y.get(0, 0).abs() < 0.1, "{}", y.get(0, 0));
    }

    #[test]
    fn dropout_masks_and_scales() {
        let mut rng = SmallRng::seed_from_u64(5);
        let d = Dropout { p: 0.5 };
        let x = Matrix::from_vec(1, 1000, vec![1.0; 1000]);
        let (y, mask) = d.forward_train(&x, &mut rng);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert!((380..620).contains(&zeros), "dropped {zeros}");
        // Survivors are scaled by 2.
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        // Backward respects the mask.
        let dy = Matrix::from_vec(1, 1000, vec![1.0; 1000]);
        let dx = d.backward(&mask, &dy);
        for (o, m) in dx.data().iter().zip(mask.data()) {
            assert_eq!(o, m);
        }
        // Expected value preserved.
        let mean: f32 = y.data().iter().sum::<f32>() / 1000.0;
        assert!((mean - 1.0).abs() < 0.2);
    }

    #[test]
    fn dense_training_fits_linear_function() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut layer = Dense::new(2, 1, Activation::None, &mut rng);
        // Target: y = 3x1 - 2x2 + 1.
        use covidkg_rand::Rng;
        for _ in 0..2000 {
            let x1 = rng.gen_range(-1.0..1.0f32);
            let x2 = rng.gen_range(-1.0..1.0f32);
            let target = 3.0 * x1 - 2.0 * x2 + 1.0;
            let x = Matrix::from_vec(1, 2, vec![x1, x2]);
            let cache = layer.forward(&x);
            let dy = Matrix::from_vec(1, 1, vec![cache.y.get(0, 0) - target]);
            layer.backward(&cache, &dy);
            layer.step(0.02, 1.0);
        }
        assert!((layer.w.get(0, 0) - 3.0).abs() < 0.1);
        assert!((layer.w.get(0, 1) + 2.0).abs() < 0.1);
        assert!((layer.b[0] - 1.0).abs() < 0.1);
    }
}
