//! The Deep-learning metadata classifier of Fig 3: a BiGRU ensemble with
//! parallel term- and cell-level embedding layers.
//!
//! Per the paper (§3.6): a tuple is pre-processed into term-wise and
//! cell-wise representations; each path embeds its units (Word2Vec
//! initialized, fine-tuned end-to-end), runs a BiGRU of 100 units, and
//! concatenates the BiGRU outputs with the original embeddings to form
//! "enriched contextualized vectors". Each path is flattened; the two
//! flattened representations are concatenated and passed through a dense
//! layer of 16 units, batch normalization, dropout and a dense binary
//! classifier. `CellKind::Lstm` switches both paths to BiLSTM for the
//! §3.6 ablation.

use crate::adam::Adam;
use crate::layers::{Activation, BatchNorm, Dense, Dropout};
use crate::matrix::{sigmoid, Matrix};
use crate::rnn::{BiCache, BiRnn};
pub use crate::rnn::CellKind;
use crate::word2vec::Word2Vec;
use covidkg_rand::rngs::SmallRng;
use covidkg_rand::seq::SliceRandom;
use covidkg_rand::SeedableRng;
use std::collections::HashMap;

/// One training/inference instance: a table row in both views.
#[derive(Debug, Clone)]
pub struct TupleExample {
    /// Term-level units (pre-processed tokens of the whole row).
    pub terms: Vec<String>,
    /// Cell-level units (one string per cell).
    pub cells: Vec<String>,
    /// Metadata label (true = metadata row). Ignored at inference.
    pub label: bool,
}

/// Hyperparameters.
#[derive(Debug, Clone)]
pub struct TupleClassifierConfig {
    /// GRU (paper's choice) or LSTM (ablation).
    pub cell: CellKind,
    /// Embedding width for both paths.
    pub embed_dims: usize,
    /// Recurrent units per direction (paper: 100).
    pub hidden: usize,
    /// Sequences are truncated/zero-padded to this length before
    /// flattening.
    pub max_len: usize,
    /// Width of the post-concat dense layer (paper: 16).
    pub dense_units: usize,
    /// Dropout probability in the head.
    pub dropout: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Whether embeddings receive gradients ("fine-tuned with end-to-end
    /// training", §3.6).
    pub fine_tune_embeddings: bool,
    /// Concatenate the original embeddings with the BiRNN outputs (Fig 3:
    /// "the result is concatenated with the original embeddings to create
    /// our enriched contextualized vectors"; the paper argues this lets
    /// the model "additionally account for global correlation"). Setting
    /// this false is the ablation arm: BiRNN outputs only.
    pub concat_embeddings: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TupleClassifierConfig {
    fn default() -> Self {
        TupleClassifierConfig {
            cell: CellKind::Gru,
            embed_dims: 24,
            hidden: 100,
            max_len: 12,
            dense_units: 16,
            dropout: 0.3,
            learning_rate: 3e-3,
            epochs: 8,
            batch_size: 16,
            fine_tune_embeddings: true,
            concat_embeddings: true,
            seed: 42,
        }
    }
}

/// A trainable embedding table with an `<unk>` row at id 0.
struct Embedding {
    vocab: HashMap<String, usize>,
    table: Matrix,
    grads: Matrix,
    adam: Adam,
}

impl Embedding {
    /// Build the vocabulary from `units`, seeding rows from `pretrained`
    /// where available (the Word2Vec initialization of Fig 3).
    fn build<'a>(
        units: impl Iterator<Item = &'a str>,
        dims: usize,
        pretrained: Option<&Word2Vec>,
        rng: &mut SmallRng,
    ) -> Embedding {
        let mut vocab: HashMap<String, usize> = HashMap::new();
        vocab.insert("<unk>".to_string(), 0);
        let mut ordered = vec!["<unk>".to_string()];
        for u in units {
            if !vocab.contains_key(u) {
                vocab.insert(u.to_string(), ordered.len());
                ordered.push(u.to_string());
            }
        }
        let mut table = Matrix::xavier(ordered.len(), dims, rng);
        if let Some(w2v) = pretrained {
            for (word, &id) in &vocab {
                if let Some(vec) = w2v.embed(word) {
                    let row = table.row_mut(id);
                    let n = row.len().min(vec.len());
                    row[..n].copy_from_slice(&vec[..n]);
                }
            }
        }
        let (r, c) = (table.rows(), table.cols());
        Embedding {
            vocab,
            table,
            grads: Matrix::zeros(r, c),
            adam: Adam::new(r * c),
        }
    }

    fn id(&self, unit: &str) -> usize {
        self.vocab.get(unit).copied().unwrap_or(0)
    }

    fn lookup(&self, ids: &[usize]) -> Vec<Vec<f32>> {
        ids.iter().map(|&i| self.table.row(i).to_vec()).collect()
    }

    fn accumulate(&mut self, id: usize, grad: &[f32]) {
        let row = self.grads.row_mut(id);
        for (g, &d) in row.iter_mut().zip(grad) {
            *g += d;
        }
    }

    fn step(&mut self, lr: f32, scale: f32) {
        if scale != 1.0 {
            self.grads.data_mut().iter_mut().for_each(|g| *g *= scale);
        }
        self.adam.step(self.table.data_mut(), self.grads.data(), lr);
        self.grads.fill_zero();
    }

    fn export(&self, store: &mut crate::serialize::TensorStore, prefix: &str) {
        let mut ordered: Vec<(&String, &usize)> = self.vocab.iter().collect();
        ordered.sort_by_key(|(_, &id)| id);
        store.put_strings(
            format!("{prefix}.vocab"),
            ordered.into_iter().map(|(w, _)| w.clone()).collect(),
        );
        store.put(format!("{prefix}.table"), self.table.clone());
    }

    fn from_store(store: &crate::serialize::TensorStore, prefix: &str) -> Option<Embedding> {
        let words = store.get_strings(&format!("{prefix}.vocab"))?;
        let table = store.get(&format!("{prefix}.table"))?.clone();
        if table.rows() != words.len() {
            return None;
        }
        let vocab: HashMap<String, usize> = words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
        let (r, c) = (table.rows(), table.cols());
        Some(Embedding {
            vocab,
            table,
            grads: Matrix::zeros(r, c),
            adam: Adam::new(r * c),
        })
    }
}

/// One path of Fig 3 (term-level or cell-level).
struct Path {
    embed: Embedding,
    rnn: BiRnn,
}

/// Per-example forward cache for one path.
struct PathCache {
    ids: Vec<usize>,
    embeds: Vec<Vec<f32>>,
    rnn_cache: BiCache,
}

impl Path {
    /// Flattened output width: `max_len × (2·hidden [+ embed])`.
    fn flat_width(&self, cfg: &TupleClassifierConfig) -> usize {
        cfg.max_len * Self::step_width(cfg)
    }

    /// Per-timestep width: BiRNN output, plus the original embedding when
    /// the Fig 3 concat is enabled.
    fn step_width(cfg: &TupleClassifierConfig) -> usize {
        2 * cfg.hidden + if cfg.concat_embeddings { cfg.embed_dims } else { 0 }
    }

    /// Encode a unit sequence into the flattened enriched representation.
    fn forward(&self, units: &[String], cfg: &TupleClassifierConfig) -> (Vec<f32>, PathCache) {
        let ids: Vec<usize> = units
            .iter()
            .take(cfg.max_len)
            .map(|u| self.embed.id(u))
            .collect();
        // An empty sequence still needs one step for the RNN.
        let ids = if ids.is_empty() { vec![0] } else { ids };
        let embeds = self.embed.lookup(&ids);
        let (rnn_out, rnn_cache) = self.rnn.forward(&embeds);
        let step_width = Self::step_width(cfg);
        let mut flat = vec![0.0f32; self.flat_width(cfg)];
        for (t, (h, e)) in rnn_out.iter().zip(&embeds).enumerate() {
            let base = t * step_width;
            flat[base..base + 2 * cfg.hidden].copy_from_slice(h);
            if cfg.concat_embeddings {
                flat[base + 2 * cfg.hidden..base + step_width].copy_from_slice(e);
            }
        }
        (
            flat,
            PathCache {
                ids,
                embeds,
                rnn_cache,
            },
        )
    }

    /// Backward from the flattened gradient; accumulates parameter grads.
    fn backward(&mut self, cache: &PathCache, dflat: &[f32], cfg: &TupleClassifierConfig) {
        let step_width = Self::step_width(cfg);
        let n = cache.ids.len();
        let mut dh: Vec<Vec<f32>> = Vec::with_capacity(n);
        let mut dembed_direct: Vec<Vec<f32>> = Vec::with_capacity(n);
        for t in 0..n {
            let base = t * step_width;
            dh.push(dflat[base..base + 2 * cfg.hidden].to_vec());
            dembed_direct.push(if cfg.concat_embeddings {
                dflat[base + 2 * cfg.hidden..base + step_width].to_vec()
            } else {
                vec![0.0; cfg.embed_dims]
            });
        }
        let dxs = self.rnn.backward(&cache.rnn_cache, &dh);
        if cfg.fine_tune_embeddings {
            for t in 0..n {
                let mut d = dxs[t].clone();
                for (a, &b) in d.iter_mut().zip(&dembed_direct[t]) {
                    *a += b;
                }
                self.embed.accumulate(cache.ids[t], &d);
            }
        }
        // `cache.embeds` kept alive for symmetry/debug; silence the field.
        let _ = &cache.embeds;
    }

    fn step(&mut self, lr: f32, scale: f32, fine_tune: bool) {
        self.rnn.step(lr, scale);
        if fine_tune {
            self.embed.step(lr, scale);
        }
    }
}

/// The full Fig 3 model.
pub struct TupleClassifier {
    cfg: TupleClassifierConfig,
    term_path: Path,
    cell_path: Path,
    dense1: Dense,
    bn: BatchNorm,
    dropout: Dropout,
    dense2: Dense,
    rng: SmallRng,
}

/// Per-epoch training log entry.
#[derive(Debug, Clone, Copy)]
pub struct EpochLog {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean BCE loss.
    pub loss: f64,
    /// Training accuracy.
    pub accuracy: f64,
}

impl TupleClassifier {
    /// Build the model, constructing both paths' vocabularies from the
    /// training examples and initializing embeddings from `pretrained`.
    pub fn new(
        examples: &[TupleExample],
        pretrained: Option<&Word2Vec>,
        cfg: TupleClassifierConfig,
    ) -> TupleClassifier {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let term_embed = Embedding::build(
            examples.iter().flat_map(|e| e.terms.iter().map(String::as_str)),
            cfg.embed_dims,
            pretrained,
            &mut rng,
        );
        let cell_embed = Embedding::build(
            examples.iter().flat_map(|e| e.cells.iter().map(String::as_str)),
            cfg.embed_dims,
            pretrained,
            &mut rng,
        );
        let term_path = Path {
            embed: term_embed,
            rnn: BiRnn::new(cfg.cell, cfg.embed_dims, cfg.hidden, &mut rng),
        };
        let cell_path = Path {
            embed: cell_embed,
            rnn: BiRnn::new(cfg.cell, cfg.embed_dims, cfg.hidden, &mut rng),
        };
        let concat_width = term_path.flat_width(&cfg) + cell_path.flat_width(&cfg);
        let dense1 = Dense::new(concat_width, cfg.dense_units, Activation::Relu, &mut rng);
        let bn = BatchNorm::new(cfg.dense_units);
        let dropout = Dropout { p: cfg.dropout };
        let dense2 = Dense::new(cfg.dense_units, 1, Activation::None, &mut rng);
        TupleClassifier {
            cfg,
            term_path,
            cell_path,
            dense1,
            bn,
            dropout,
            dense2,
            rng,
        }
    }

    /// Hyperparameters in use.
    pub fn config(&self) -> &TupleClassifierConfig {
        &self.cfg
    }

    /// Total trainable parameters (the §3.6 GRU-vs-LSTM training-cost gap
    /// is visible here: the LSTM variant has 4/3 the recurrent weights).
    pub fn param_count(&self) -> usize {
        self.term_path.rnn.param_count()
            + self.cell_path.rnn.param_count()
            + self.term_path.embed.table.data().len()
            + self.cell_path.embed.table.data().len()
            + self.dense1.param_count()
            + self.bn.param_count()
            + self.dense2.param_count()
    }

    /// A human-readable layer summary (validates the Fig 3 topology).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let cfg = &self.cfg;
        let _ = writeln!(s, "TupleClassifier ({:?})", cfg.cell);
        let _ = writeln!(
            s,
            "  term path : embed({} x {}) -> bi{:?}({}) -> concat -> flatten({})",
            self.term_path.embed.table.rows(),
            cfg.embed_dims,
            cfg.cell,
            cfg.hidden,
            self.term_path.flat_width(cfg),
        );
        let _ = writeln!(
            s,
            "  cell path : embed({} x {}) -> bi{:?}({}) -> concat -> flatten({})",
            self.cell_path.embed.table.rows(),
            cfg.embed_dims,
            cfg.cell,
            cfg.hidden,
            self.cell_path.flat_width(cfg),
        );
        let _ = writeln!(
            s,
            "  head      : dense({}) -> batchnorm -> dropout({}) -> dense(1, sigmoid)",
            cfg.dense_units, cfg.dropout
        );
        let _ = writeln!(s, "  parameters: {}", self.param_count());
        s
    }

    fn encode(&self, example: &TupleExample) -> (Vec<f32>, PathCache, PathCache) {
        let (tflat, tcache) = self.term_path.forward(&example.terms, &self.cfg);
        let (cflat, ccache) = self.cell_path.forward(&example.cells, &self.cfg);
        let mut concat = tflat;
        concat.extend_from_slice(&cflat);
        (concat, tcache, ccache)
    }

    /// Train on labeled examples; returns per-epoch logs.
    pub fn train(&mut self, examples: &[TupleExample]) -> Vec<EpochLog> {
        assert!(!examples.is_empty(), "empty training set");
        let mut logs = Vec::with_capacity(self.cfg.epochs);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        for epoch in 0..self.cfg.epochs {
            order.shuffle(&mut self.rng);
            let mut total_loss = 0.0f64;
            let mut correct = 0usize;
            for batch in order.chunks(self.cfg.batch_size) {
                let (loss, batch_correct) = self.train_batch(examples, batch);
                total_loss += loss;
                correct += batch_correct;
            }
            logs.push(EpochLog {
                epoch,
                loss: total_loss / examples.len() as f64,
                accuracy: correct as f64 / examples.len() as f64,
            });
        }
        logs
    }

    fn train_batch(&mut self, examples: &[TupleExample], batch: &[usize]) -> (f64, usize) {
        let n = batch.len();
        let concat_width = self.dense1.input();
        // Encode each example.
        let mut caches = Vec::with_capacity(n);
        let mut xbatch = Matrix::zeros(n, concat_width);
        for (r, &i) in batch.iter().enumerate() {
            let (concat, tc, cc) = self.encode(&examples[i]);
            xbatch.row_mut(r).copy_from_slice(&concat);
            caches.push((tc, cc));
        }
        // Head forward (training mode).
        let d1 = self.dense1.forward(&xbatch);
        let bn = self.bn.forward_train(&d1.y);
        let (dropped, mask) = self.dropout.forward_train(&bn.y, &mut self.rng);
        let d2 = self.dense2.forward(&dropped);

        // BCE loss + gradient at the logit.
        let mut dlogit = Matrix::zeros(n, 1);
        let mut loss = 0.0f64;
        let mut correct = 0usize;
        for (r, &i) in batch.iter().enumerate() {
            let y = if examples[i].label { 1.0f32 } else { 0.0 };
            let p = sigmoid(d2.y.get(r, 0));
            loss -= f64::from(y * p.max(1e-7).ln() + (1.0 - y) * (1.0 - p).max(1e-7).ln());
            if (p >= 0.5) == examples[i].label {
                correct += 1;
            }
            dlogit.set(r, 0, p - y);
        }

        // Head backward.
        let ddrop = self.dense2.backward(&d2, &dlogit);
        let dbn = self.dropout.backward(&mask, &ddrop);
        let dd1 = self.bn.backward(&bn, &dbn);
        let dx = self.dense1.backward(&d1, &dd1);

        // Path backward per example.
        let term_width = self.term_path.flat_width(&self.cfg);
        for (r, (tc, cc)) in caches.iter().enumerate() {
            let row = dx.row(r);
            self.term_path.backward(tc, &row[..term_width], &self.cfg);
            self.cell_path.backward(cc, &row[term_width..], &self.cfg);
        }

        // Updates (average over the batch).
        let scale = 1.0 / n as f32;
        let lr = self.cfg.learning_rate;
        let ft = self.cfg.fine_tune_embeddings;
        self.term_path.step(lr, scale, ft);
        self.cell_path.step(lr, scale, ft);
        self.dense1.step(lr, scale);
        self.bn.step(lr, scale);
        self.dense2.step(lr, scale);

        (loss, correct)
    }

    /// Probability that the example is a metadata row (inference mode:
    /// running batch-norm statistics, no dropout).
    pub fn predict_proba(&self, example: &TupleExample) -> f32 {
        let (concat, _, _) = self.encode(example);
        let mut x = Matrix::zeros(1, concat.len());
        x.row_mut(0).copy_from_slice(&concat);
        let d1 = self.dense1.forward(&x);
        let bn = self.bn.forward_infer(&d1.y);
        let d2 = self.dense2.forward(&bn);
        sigmoid(d2.y.get(0, 0))
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, example: &TupleExample) -> bool {
        self.predict_proba(example) >= 0.5
    }

    /// Serialize the full model (architecture + weights + batch-norm
    /// running statistics; optimizer state restarts on load) — the
    /// registry payload for the №11/13 released models.
    pub fn save_text(&self) -> String {
        let mut store = crate::serialize::TensorStore::new();
        let cfg = &self.cfg;
        store.put_strings(
            "cfg",
            vec![
                match cfg.cell {
                    CellKind::Gru => "cell=gru".to_string(),
                    CellKind::Lstm => "cell=lstm".to_string(),
                },
                format!("embed_dims={}", cfg.embed_dims),
                format!("hidden={}", cfg.hidden),
                format!("max_len={}", cfg.max_len),
                format!("dense_units={}", cfg.dense_units),
                format!("dropout={}", cfg.dropout),
                format!("learning_rate={}", cfg.learning_rate),
                format!("epochs={}", cfg.epochs),
                format!("batch_size={}", cfg.batch_size),
                format!("fine_tune_embeddings={}", cfg.fine_tune_embeddings),
                format!("concat_embeddings={}", cfg.concat_embeddings),
                format!("seed={}", cfg.seed),
            ],
        );
        self.term_path.embed.export(&mut store, "term.embed");
        self.term_path.rnn.export(&mut store, "term.rnn");
        self.cell_path.embed.export(&mut store, "cell.embed");
        self.cell_path.rnn.export(&mut store, "cell.rnn");
        self.dense1.export(&mut store, "dense1");
        self.bn.export(&mut store, "bn");
        self.dense2.export(&mut store, "dense2");
        store.save_text()
    }

    /// Restore a model saved by [`TupleClassifier::save_text`].
    pub fn load_text(text: &str) -> Option<TupleClassifier> {
        let store = crate::serialize::TensorStore::load_text(text)?;
        let mut cfg = TupleClassifierConfig::default();
        for entry in store.get_strings("cfg")? {
            let (key, val) = entry.split_once('=')?;
            match key {
                "cell" => {
                    cfg.cell = match val {
                        "gru" => CellKind::Gru,
                        "lstm" => CellKind::Lstm,
                        _ => return None,
                    }
                }
                "embed_dims" => cfg.embed_dims = val.parse().ok()?,
                "hidden" => cfg.hidden = val.parse().ok()?,
                "max_len" => cfg.max_len = val.parse().ok()?,
                "dense_units" => cfg.dense_units = val.parse().ok()?,
                "dropout" => cfg.dropout = val.parse().ok()?,
                "learning_rate" => cfg.learning_rate = val.parse().ok()?,
                "epochs" => cfg.epochs = val.parse().ok()?,
                "batch_size" => cfg.batch_size = val.parse().ok()?,
                "fine_tune_embeddings" => cfg.fine_tune_embeddings = val.parse().ok()?,
                "concat_embeddings" => cfg.concat_embeddings = val.parse().ok()?,
                "seed" => cfg.seed = val.parse().ok()?,
                _ => return None,
            }
        }
        let term_path = Path {
            embed: Embedding::from_store(&store, "term.embed")?,
            rnn: BiRnn::from_store(cfg.cell, &store, "term.rnn")?,
        };
        let cell_path = Path {
            embed: Embedding::from_store(&store, "cell.embed")?,
            rnn: BiRnn::from_store(cfg.cell, &store, "cell.rnn")?,
        };
        let dense1 = Dense::from_store(&store, "dense1", Activation::Relu)?;
        let bn = BatchNorm::from_store(&store, "bn")?;
        let dense2 = Dense::from_store(&store, "dense2", Activation::None)?;
        if dense1.input() != term_path.flat_width(&cfg) + cell_path.flat_width(&cfg) {
            return None;
        }
        Some(TupleClassifier {
            rng: SmallRng::seed_from_u64(cfg.seed),
            dropout: Dropout { p: cfg.dropout },
            cfg,
            term_path,
            cell_path,
            dense1,
            bn,
            dense2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A learnable toy task shaped like metadata classification: metadata
    /// rows are made of header-ish words, data rows of value placeholders
    /// (INT/FLOAT/etc., as produced by the §3.4 pre-processor).
    fn toy_examples(n: usize) -> Vec<TupleExample> {
        let headers = ["vaccine", "dose", "efficacy", "symptom", "severity", "group"];
        let values = ["INT", "FLOAT", "SMALLPOS", "RANGE", "MG", "PERCENT"];
        (0..n)
            .map(|i| {
                let label = i % 2 == 0;
                let src: &[&str] = if label { &headers } else { &values };
                let len = 2 + (i % 4);
                let terms: Vec<String> =
                    (0..len).map(|k| src[(i + k) % src.len()].to_string()).collect();
                let cells = terms.clone();
                TupleExample { terms, cells, label }
            })
            .collect()
    }

    fn small_cfg(cell: CellKind) -> TupleClassifierConfig {
        TupleClassifierConfig {
            cell,
            embed_dims: 8,
            hidden: 8,
            max_len: 6,
            dense_units: 8,
            dropout: 0.1,
            learning_rate: 5e-3,
            epochs: 12,
            batch_size: 8,
            fine_tune_embeddings: true,
            concat_embeddings: true,
            seed: 7,
        }
    }

    #[test]
    fn summary_reflects_fig3_topology() {
        let examples = toy_examples(8);
        let model = TupleClassifier::new(&examples, None, TupleClassifierConfig::default());
        let s = model.summary();
        assert!(s.contains("term path"), "{s}");
        assert!(s.contains("cell path"), "{s}");
        assert!(s.contains("dense(16)"), "{s}");
        assert!(s.contains("batchnorm"), "{s}");
        assert!(s.contains("dropout"), "{s}");
        assert!(s.contains("biGru(100)"), "{s}");
    }

    #[test]
    fn lstm_variant_has_more_parameters() {
        let examples = toy_examples(8);
        let gru = TupleClassifier::new(&examples, None, small_cfg(CellKind::Gru));
        let lstm = TupleClassifier::new(&examples, None, small_cfg(CellKind::Lstm));
        assert!(lstm.param_count() > gru.param_count());
    }

    #[test]
    fn training_loss_decreases_and_fits_toy_task() {
        let examples = toy_examples(60);
        let mut model = TupleClassifier::new(&examples, None, small_cfg(CellKind::Gru));
        let logs = model.train(&examples);
        let first = logs.first().unwrap().loss;
        let last = logs.last().unwrap().loss;
        assert!(last < first * 0.7, "loss {first} -> {last}");
        let correct = examples.iter().filter(|e| model.predict(e) == e.label).count();
        assert!(
            correct as f64 / examples.len() as f64 > 0.9,
            "train accuracy {correct}/{}",
            examples.len()
        );
    }

    #[test]
    fn lstm_variant_also_learns() {
        let examples = toy_examples(60);
        let mut model = TupleClassifier::new(&examples, None, small_cfg(CellKind::Lstm));
        model.train(&examples);
        let correct = examples.iter().filter(|e| model.predict(e) == e.label).count();
        assert!(correct as f64 / examples.len() as f64 > 0.85);
    }

    #[test]
    fn generalizes_to_held_out_rows() {
        let examples = toy_examples(80);
        let (train, test) = examples.split_at(60);
        let mut model = TupleClassifier::new(train, None, small_cfg(CellKind::Gru));
        model.train(train);
        let correct = test.iter().filter(|e| model.predict(e) == e.label).count();
        assert!(
            correct as f64 / test.len() as f64 > 0.8,
            "test accuracy {correct}/{}",
            test.len()
        );
    }

    #[test]
    fn pretrained_embeddings_are_loaded() {
        use crate::word2vec::{Word2Vec, Word2VecConfig};
        let sents: Vec<Vec<String>> = (0..10)
            .map(|_| vec!["vaccine".to_string(), "dose".to_string(), "INT".to_string()])
            .collect();
        let w2v = Word2Vec::train(
            &sents,
            &Word2VecConfig {
                dims: 8,
                ..Word2VecConfig::default()
            },
        );
        let examples = toy_examples(8);
        let model = TupleClassifier::new(&examples, Some(&w2v), small_cfg(CellKind::Gru));
        // The "vaccine" embedding row must equal the Word2Vec vector.
        let id = model.term_path.embed.id("vaccine");
        assert_ne!(id, 0, "vaccine must be in-vocabulary");
        let row = model.term_path.embed.table.row(id);
        let w = w2v.embed("vaccine").unwrap();
        assert_eq!(&row[..8], &w[..8]);
    }

    #[test]
    fn empty_sequences_do_not_crash() {
        let examples = toy_examples(8);
        let model = TupleClassifier::new(&examples, None, small_cfg(CellKind::Gru));
        let empty = TupleExample {
            terms: vec![],
            cells: vec![],
            label: false,
        };
        let p = model.predict_proba(&empty);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn long_sequences_are_truncated() {
        let examples = toy_examples(8);
        let model = TupleClassifier::new(&examples, None, small_cfg(CellKind::Gru));
        let long = TupleExample {
            terms: vec!["vaccine".to_string(); 100],
            cells: vec!["INT".to_string(); 100],
            label: true,
        };
        let p = model.predict_proba(&long);
        assert!(p.is_finite());
    }

    #[test]
    fn concat_ablation_shrinks_the_head_and_still_learns() {
        let examples = toy_examples(60);
        let mut no_concat = small_cfg(CellKind::Gru);
        no_concat.concat_embeddings = false;
        let full = TupleClassifier::new(&examples, None, small_cfg(CellKind::Gru));
        let ablated = TupleClassifier::new(&examples, None, no_concat.clone());
        assert!(ablated.param_count() < full.param_count());
        let mut model = TupleClassifier::new(&examples, None, no_concat);
        model.train(&examples);
        let correct = examples.iter().filter(|e| model.predict(e) == e.label).count();
        assert!(correct as f64 / examples.len() as f64 > 0.85);
    }
    #[test]
    fn full_model_save_load_preserves_predictions() {
        let examples = toy_examples(40);
        for cell in [CellKind::Gru, CellKind::Lstm] {
            let mut model = TupleClassifier::new(&examples, None, small_cfg(cell));
            model.train(&examples);
            let text = model.save_text();
            let back = TupleClassifier::load_text(&text).expect("round trip");
            assert_eq!(back.param_count(), model.param_count());
            for e in &examples {
                let (a, b) = (model.predict_proba(e), back.predict_proba(e));
                assert!((a - b).abs() < 1e-6, "{cell:?}: {a} vs {b}");
            }
        }
        assert!(TupleClassifier::load_text("").is_none());
        assert!(TupleClassifier::load_text("tensorstore v1
").is_none());
    }

    #[test]
    fn predictions_are_deterministic_after_training() {
        let examples = toy_examples(20);
        let mut model = TupleClassifier::new(&examples, None, small_cfg(CellKind::Gru));
        model.train(&examples);
        let p1 = model.predict_proba(&examples[0]);
        let p2 = model.predict_proba(&examples[0]);
        assert_eq!(p1, p2);
    }
}
