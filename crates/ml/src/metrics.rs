//! Classification metrics and cross-validation (§3.3).
//!
//! The paper validates with 10-fold cross-validation and reports
//! F-measure; [`Confusion`] accumulates a binary confusion matrix and
//! derives precision/recall/F1, and [`kfold_indices`] produces the fold
//! splits deterministically.

use covidkg_rand::rngs::SmallRng;
use covidkg_rand::seq::SliceRandom;
use covidkg_rand::SeedableRng;

/// Binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Record one prediction.
    pub fn record(&mut self, actual: bool, predicted: bool) {
        match (actual, predicted) {
            (true, true) => self.tp += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
            (true, false) => self.fn_ += 1,
        }
    }

    /// Merge another confusion matrix (used across CV folds).
    pub fn merge(&mut self, other: Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Derived metrics.
    pub fn metrics(&self) -> ClassMetrics {
        let precision = ratio(self.tp, self.tp + self.fp);
        let recall = ratio(self.tp, self.tp + self.fn_);
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        ClassMetrics {
            accuracy: ratio(self.tp + self.tn, self.total()),
            precision,
            recall,
            f1,
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Precision / recall / F1 / accuracy bundle.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassMetrics {
    /// Fraction correct.
    pub accuracy: f64,
    /// TP / (TP + FP).
    pub precision: f64,
    /// TP / (TP + FN).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Convenience: F1 from parallel label/prediction slices.
pub fn f1_score(actual: &[bool], predicted: &[bool]) -> f64 {
    assert_eq!(actual.len(), predicted.len());
    let mut c = Confusion::default();
    for (&a, &p) in actual.iter().zip(predicted) {
        c.record(a, p);
    }
    c.metrics().f1
}

/// Deterministic k-fold split: returns, per fold, the held-out test
/// indices. Every index appears in exactly one fold; folds differ in size
/// by at most 1. `seed` shuffles assignment.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "k-fold needs k >= 2");
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut folds = vec![Vec::with_capacity(n / k + 1); k];
    for (i, idx) in order.into_iter().enumerate() {
        folds[i % k].push(idx);
    }
    folds
}

/// Stratified k-fold: positives and negatives are split across folds
/// independently, so every fold sees the base rate. With a ~20% minority
/// class (metadata rows), plain random folds can starve a fold of
/// positives and destabilize the §3.3 measurements.
pub fn kfold_stratified(labels: &[bool], k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "k-fold needs k >= 2");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut folds = vec![Vec::new(); k];
    for class in [true, false] {
        let mut members: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect();
        members.shuffle(&mut rng);
        for (j, idx) in members.into_iter().enumerate() {
            folds[j % k].push(idx);
        }
    }
    folds
}

/// Complement of a fold: the training indices.
pub fn train_indices(n: usize, test: &[usize]) -> Vec<usize> {
    let mut is_test = vec![false; n];
    for &i in test {
        is_test[i] = true;
    }
    (0..n).filter(|&i| !is_test[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let m = {
            let mut c = Confusion::default();
            for _ in 0..5 {
                c.record(true, true);
                c.record(false, false);
            }
            c.metrics()
        };
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    fn known_confusion_values() {
        let mut c = Confusion::default();
        // 8 TP, 2 FP, 6 TN, 4 FN.
        for _ in 0..8 {
            c.record(true, true);
        }
        for _ in 0..2 {
            c.record(false, true);
        }
        for _ in 0..6 {
            c.record(false, false);
        }
        for _ in 0..4 {
            c.record(true, false);
        }
        let m = c.metrics();
        assert!((m.precision - 0.8).abs() < 1e-12);
        assert!((m.recall - 8.0 / 12.0).abs() < 1e-12);
        assert!((m.f1 - 2.0 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0)).abs() < 1e-12);
        assert!((m.accuracy - 0.7).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let m = Confusion::default().metrics();
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        let mut all_neg = Confusion::default();
        all_neg.record(false, false);
        assert_eq!(all_neg.metrics().f1, 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Confusion { tp: 1, fp: 2, tn: 3, fn_: 4 };
        a.merge(Confusion { tp: 10, fp: 20, tn: 30, fn_: 40 });
        assert_eq!(a, Confusion { tp: 11, fp: 22, tn: 33, fn_: 44 });
    }

    #[test]
    fn f1_helper_matches_confusion() {
        let actual = [true, true, false, false, true];
        let pred = [true, false, false, true, true];
        let f1 = f1_score(&actual, &pred);
        assert!((f1 - 2.0 * (2.0 / 3.0) * (2.0 / 3.0) / (4.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn kfold_partitions_everything_once() {
        let folds = kfold_indices(103, 10, 42);
        assert_eq!(folds.len(), 10);
        let mut seen = [false; 103];
        for fold in &folds {
            for &i in fold {
                assert!(!seen[i], "index {i} in two folds");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Sizes differ by at most one.
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(mx - mn <= 1);
    }

    #[test]
    fn kfold_is_deterministic_per_seed() {
        assert_eq!(kfold_indices(50, 5, 7), kfold_indices(50, 5, 7));
        assert_ne!(kfold_indices(50, 5, 7), kfold_indices(50, 5, 8));
    }

    #[test]
    fn stratified_folds_balance_the_minority_class() {
        // 20% positive rate over 100 items.
        let labels: Vec<bool> = (0..100).map(|i| i % 5 == 0).collect();
        let folds = kfold_stratified(&labels, 10, 3);
        let mut seen = [false; 100];
        for fold in &folds {
            let pos = fold.iter().filter(|&&i| labels[i]).count();
            assert_eq!(pos, 2, "every fold gets its share of positives");
            for &i in fold {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Deterministic per seed.
        assert_eq!(kfold_stratified(&labels, 10, 3), kfold_stratified(&labels, 10, 3));
    }

    #[test]
    fn train_indices_complement() {
        let folds = kfold_indices(20, 4, 1);
        let train = train_indices(20, &folds[0]);
        assert_eq!(train.len(), 20 - folds[0].len());
        for i in &folds[0] {
            assert!(!train.contains(i));
        }
    }
}
