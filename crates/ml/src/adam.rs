//! The Adam optimizer (Kingma & Ba), one state per parameter tensor.

/// Adam moment state for one flat parameter tensor.
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u32,
    beta1: f32,
    beta2: f32,
    eps: f32,
}

impl Adam {
    /// State for a tensor with `len` parameters (β₁=0.9, β₂=0.999).
    pub fn new(len: usize) -> Adam {
        Adam {
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Apply one Adam update: `param -= lr * m̂ / (√v̂ + ε)`.
    /// `grad` is the (already accumulated/averaged) gradient; it is left
    /// untouched — callers zero their own accumulators.
    pub fn step(&mut self, param: &mut [f32], grad: &[f32], lr: f32) {
        assert_eq!(param.len(), self.m.len());
        assert_eq!(grad.len(), self.m.len());
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..param.len() {
            let g = grad[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            param[i] -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    /// Updates applied so far.
    pub fn steps(&self) -> u32 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descends_a_quadratic() {
        // Minimize f(x) = (x-3)², gradient 2(x-3).
        let mut x = vec![0.0f32];
        let mut opt = Adam::new(1);
        for _ in 0..2000 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g, 0.01);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
    }

    #[test]
    fn multi_dim_descent() {
        // Anisotropic quadratic: f = x₀² + 100·x₁².
        let mut x = vec![5.0f32, -5.0];
        let mut opt = Adam::new(2);
        for _ in 0..3000 {
            let g = vec![2.0 * x[0], 200.0 * x[1]];
            opt.step(&mut x, &g, 0.01);
        }
        assert!(x[0].abs() < 0.05 && x[1].abs() < 0.05, "{x:?}");
    }

    #[test]
    fn zero_gradient_is_stationary_from_start() {
        let mut x = vec![1.5f32];
        let mut opt = Adam::new(1);
        opt.step(&mut x, &[0.0], 0.1);
        assert_eq!(x[0], 1.5);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let mut opt = Adam::new(2);
        opt.step(&mut [0.0], &[0.0], 0.1);
    }
}
