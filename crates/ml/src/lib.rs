#![warn(missing_docs)]

//! # covidkg-ml
//!
//! From-scratch CPU machine learning for the COVIDKG reproduction. The
//! paper trains its models with Keras/TensorFlow and Scikit-learn on a GPU
//! cluster (§3 "Hardware"); this crate reimplements the needed pieces in
//! pure Rust at laptop scale:
//!
//! * [`matrix`] — a small row-major `f32` matrix with the handful of BLAS
//!   ops the models need;
//! * [`svm`] — a Sequential Minimal Optimization SVM with linear, RBF and
//!   sigmoid kernels (the paper's Machine-learning classifier, §3.5,
//!   citing Lin & Lin's sigmoid-kernel SMO study [63]);
//! * [`word2vec`] — skip-gram with negative sampling ([65]) for the term-
//!   and cell-level embeddings of Fig 3;
//! * [`rnn`] — GRU and LSTM cells with full backpropagation through time,
//!   plus bidirectional runners (§3.6 compares biGRU vs biLSTM);
//! * [`layers`] — Dense, BatchNorm and Dropout layers for the classifier
//!   head of Fig 3;
//! * [`adam`] — the Adam optimizer;
//! * [`model`] — the BiGRU ensemble with parallel term- and cell-level
//!   embedding paths (Fig 3), configurable to use LSTM cells for the
//!   §3.6 ablation;
//! * [`kmeans`] — k-means clustering for the topical-cluster extraction
//!   step (№5 in Fig 1);
//! * [`metrics`] — precision/recall/F1 and the 10-fold cross-validation
//!   harness behind the §3.3 numbers.

pub mod adam;
pub mod kmeans;
pub mod layers;
pub mod matrix;
pub mod metrics;
pub mod model;
pub mod rnn;
pub mod serialize;
pub mod svm;
pub mod word2vec;

pub use adam::Adam;
pub use kmeans::{kmeans, KMeansResult};
pub use matrix::Matrix;
pub use metrics::{f1_score, kfold_indices, kfold_stratified, ClassMetrics, Confusion};
pub use model::{CellKind, TupleClassifier, TupleClassifierConfig, TupleExample};
pub use serialize::TensorStore;
pub use svm::{Kernel, Svm, SvmConfig};
pub use word2vec::{Word2Vec, Word2VecConfig};
