//! Named-tensor text serialization.
//!
//! The registry (№11/13) releases "hundreds of pre-trained models"; this
//! module gives every trainable component a common dump/restore format: a
//! line-oriented store of named tensors plus string tables (for embedding
//! vocabularies). Inference state only — optimizer moments are not
//! persisted, matching how frameworks export models for reuse.

use crate::matrix::Matrix;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A bag of named tensors and named string lists.
#[derive(Debug, Default, Clone)]
pub struct TensorStore {
    tensors: HashMap<String, Matrix>,
    strings: HashMap<String, Vec<String>>,
}

impl TensorStore {
    /// Empty store.
    pub fn new() -> TensorStore {
        TensorStore::default()
    }

    /// Insert a matrix under `name`.
    pub fn put(&mut self, name: impl Into<String>, m: Matrix) {
        self.tensors.insert(name.into(), m);
    }

    /// Insert a vector as a 1×n matrix.
    pub fn put_vec(&mut self, name: impl Into<String>, v: &[f32]) {
        self.tensors
            .insert(name.into(), Matrix::from_vec(1, v.len(), v.to_vec()));
    }

    /// Insert a string list (e.g. an embedding vocabulary, in id order).
    pub fn put_strings(&mut self, name: impl Into<String>, items: Vec<String>) {
        self.strings.insert(name.into(), items);
    }

    /// Fetch a matrix.
    pub fn get(&self, name: &str) -> Option<&Matrix> {
        self.tensors.get(name)
    }

    /// Fetch a 1×n matrix back as a vector.
    pub fn get_vec(&self, name: &str) -> Option<Vec<f32>> {
        let m = self.tensors.get(name)?;
        (m.rows() == 1).then(|| m.data().to_vec())
    }

    /// Fetch a string list.
    pub fn get_strings(&self, name: &str) -> Option<&[String]> {
        self.strings.get(name).map(Vec::as_slice)
    }

    /// Number of stored tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty() && self.strings.is_empty()
    }

    /// Serialize. Format:
    ///
    /// ```text
    /// tensorstore v1
    /// tensor <name> <rows> <cols>
    /// <row of floats>
    /// …
    /// strings <name> <count>
    /// <one item per line>
    /// ```
    ///
    /// Names and string items must not contain newlines; names must not
    /// contain spaces (both hold for every producer in this workspace).
    pub fn save_text(&self) -> String {
        let mut out = String::from("tensorstore v1\n");
        let mut tnames: Vec<&String> = self.tensors.keys().collect();
        tnames.sort();
        for name in tnames {
            let m = &self.tensors[name];
            let _ = writeln!(out, "tensor {name} {} {}", m.rows(), m.cols());
            for r in 0..m.rows() {
                let row = m.row(r);
                for (i, v) in row.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    let _ = write!(out, "{v}");
                }
                out.push('\n');
            }
        }
        let mut snames: Vec<&String> = self.strings.keys().collect();
        snames.sort();
        for name in snames {
            let items = &self.strings[name];
            let _ = writeln!(out, "strings {name} {}", items.len());
            for item in items {
                let _ = writeln!(out, "{item}");
            }
        }
        out
    }

    /// Parse the [`TensorStore::save_text`] format.
    pub fn load_text(text: &str) -> Option<TensorStore> {
        let mut lines = text.lines();
        if lines.next()? != "tensorstore v1" {
            return None;
        }
        let mut store = TensorStore::new();
        while let Some(header) = lines.next() {
            let mut parts = header.split_whitespace();
            match parts.next()? {
                "tensor" => {
                    let name = parts.next()?.to_string();
                    let rows: usize = parts.next()?.parse().ok()?;
                    let cols: usize = parts.next()?.parse().ok()?;
                    let mut data = Vec::with_capacity(rows * cols);
                    for _ in 0..rows {
                        let line = lines.next()?;
                        for v in line.split_whitespace() {
                            data.push(v.parse().ok()?);
                        }
                    }
                    if data.len() != rows * cols {
                        return None;
                    }
                    store.put(name, Matrix::from_vec(rows, cols, data));
                }
                "strings" => {
                    let name = parts.next()?.to_string();
                    let count: usize = parts.next()?.parse().ok()?;
                    let mut items = Vec::with_capacity(count);
                    for _ in 0..count {
                        items.push(lines.next()?.to_string());
                    }
                    store.put_strings(name, items);
                }
                _ => return None,
            }
        }
        Some(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_tensors_and_strings() {
        let mut s = TensorStore::new();
        s.put("w", Matrix::from_vec(2, 3, vec![1.5, -2.0, 0.0, 3.25, 4.0, -0.125]));
        s.put_vec("b", &[0.5, -0.5]);
        s.put_strings("vocab", vec!["<unk>".into(), "covid-19".into(), "naïve".into()]);
        let text = s.save_text();
        let back = TensorStore::load_text(&text).expect("round trip");
        assert_eq!(back.get("w").unwrap().data(), s.get("w").unwrap().data());
        assert_eq!(back.get_vec("b").unwrap(), vec![0.5, -0.5]);
        assert_eq!(back.get_strings("vocab").unwrap()[2], "naïve");
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn float_precision_survives() {
        let mut s = TensorStore::new();
        let vals = vec![1.0e-7f32, std::f32::consts::PI, -9.999999e8, 0.1];
        s.put_vec("v", &vals);
        let back = TensorStore::load_text(&s.save_text()).unwrap();
        assert_eq!(back.get_vec("v").unwrap(), vals, "exact f32 round trip");
    }

    #[test]
    fn rejects_garbage() {
        assert!(TensorStore::load_text("").is_none());
        assert!(TensorStore::load_text("wrong header").is_none());
        assert!(TensorStore::load_text("tensorstore v1\ntensor w 2 2\n1 2\n").is_none());
        assert!(TensorStore::load_text("tensorstore v1\nstrings v 3\na\n").is_none());
        assert!(TensorStore::load_text("tensorstore v1\nbogus x\n").is_none());
    }

    #[test]
    fn empty_store_round_trips() {
        let s = TensorStore::new();
        let back = TensorStore::load_text(&s.save_text()).unwrap();
        assert!(back.is_empty());
    }
}
