//! K-means clustering (k-means++ seeding, Lloyd iterations).
//!
//! Used for the topical-cluster extraction step of the enrichment
//! pipeline (№5 in Fig 1: "the topical clusters that are categorized from
//! the dataset by relevant COVID-19 topics"), running over document
//! embedding vectors.

use covidkg_rand::rngs::SmallRng;
use covidkg_rand::Rng;
use covidkg_rand::SeedableRng;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster centroids (`k × dims`).
    pub centroids: Vec<Vec<f32>>,
    /// Cluster assignment per input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// Run k-means over dense points. `k` is clamped to the number of points.
pub fn kmeans(points: &[Vec<f32>], k: usize, max_iters: usize, seed: u64) -> KMeansResult {
    assert!(!points.is_empty(), "kmeans needs at least one point");
    let dims = points[0].len();
    assert!(points.iter().all(|p| p.len() == dims), "ragged points");
    let k = k.clamp(1, points.len());
    let mut rng = SmallRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    let mut dist2: Vec<f64> = points
        .iter()
        .map(|p| sq_dist(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dist2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All points identical to existing centroids: pick arbitrary.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut idx = 0;
            for (i, &d) in dist2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    idx = i;
                    break;
                }
            }
            idx
        };
        centroids.push(points[next].clone());
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, centroids.last().unwrap());
            if d < dist2[i] {
                dist2[i] = d;
            }
        }
    }

    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        // Assign.
        let mut moved = false;
        for (i, p) in points.iter().enumerate() {
            let best = centroids
                .iter()
                .enumerate()
                .map(|(c, cen)| (c, sq_dist(p, cen)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|(c, _)| c)
                .unwrap();
            if assignments[i] != best {
                assignments[i] = best;
                moved = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0f64; dims]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &v) in sums[a].iter_mut().zip(p) {
                *s += f64::from(v);
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the farthest point.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        sq_dist(a, &centroids[assignments[0]])
                            .partial_cmp(&sq_dist(b, &centroids[assignments[0]]))
                            .unwrap()
                    })
                    .map(|(i, _)| i)
                    .unwrap();
                centroids[c] = points[far].clone();
                continue;
            }
            for d in 0..dims {
                centroids[c][d] = (sums[c][d] / counts[c] as f64) as f32;
            }
        }
        if !moved && iter > 0 {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    }
}

fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f32>> {
        let mut pts = Vec::new();
        let mut rng = SmallRng::seed_from_u64(3);
        for center in [[0.0f32, 0.0], [10.0, 10.0], [0.0, 10.0]] {
            for _ in 0..20 {
                pts.push(vec![
                    center[0] + rng.gen_range(-0.5f32..0.5),
                    center[1] + rng.gen_range(-0.5f32..0.5),
                ]);
            }
        }
        pts
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let pts = blobs();
        let result = kmeans(&pts, 3, 50, 1);
        // Every blob's 20 points share one cluster id.
        for blob in 0..3 {
            let ids: std::collections::HashSet<usize> =
                (0..20).map(|i| result.assignments[blob * 20 + i]).collect();
            assert_eq!(ids.len(), 1, "blob {blob} split: {ids:?}");
        }
        // Three distinct clusters used.
        let used: std::collections::HashSet<usize> =
            result.assignments.iter().copied().collect();
        assert_eq!(used.len(), 3);
        assert!(result.inertia < 60.0 * 0.5);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![0.0f32], vec![1.0]];
        let result = kmeans(&pts, 10, 10, 1);
        assert_eq!(result.centroids.len(), 2);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = vec![vec![1.0f32, 3.0], vec![3.0, 5.0]];
        let result = kmeans(&pts, 1, 10, 1);
        assert!((result.centroids[0][0] - 2.0).abs() < 1e-6);
        assert!((result.centroids[0][1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic_for_seed() {
        let pts = blobs();
        let a = kmeans(&pts, 3, 50, 9);
        let b = kmeans(&pts, 3, 50, 9);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let pts = vec![vec![1.0f32, 1.0]; 5];
        let result = kmeans(&pts, 3, 10, 1);
        assert_eq!(result.assignments.len(), 5);
        assert!(result.inertia < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_input_panics() {
        let _ = kmeans(&[], 2, 10, 1);
    }
}
