//! Property-based tests: every generated value round-trips through the
//! compact and pretty writers, and cmp_total is a total order. Runs on
//! the in-repo `covidkg_rand::prop` harness (offline proptest
//! replacement).

use covidkg_json::{parse, Value};
use covidkg_rand::prop::{self, any_string, ascii_string, lowercase_string, vec_of};
use covidkg_rand::{Rng, SmallRng};

/// Arbitrary JSON value of bounded depth/size (mirrors the old proptest
/// recursive strategy: depth ≤ 4, branching ≤ 6).
fn random_value(rng: &mut SmallRng, depth: usize) -> Value {
    let leaf_only = depth == 0 || rng.gen_bool(0.4);
    if leaf_only {
        match rng.gen_range(0..6) {
            0 => Value::Null,
            1 => Value::Bool(rng.gen_bool(0.5)),
            2 => Value::int(rng.gen_range(i64::MIN..=i64::MAX)),
            // Finite floats only: JSON has no NaN/Inf representation.
            3 => Value::float(rng.gen_range(-1.0e12..1.0e12f64)),
            4 => Value::str(ascii_string(rng, 0, 12)),
            // Exercise escapes and non-ASCII.
            _ => Value::str(
                *prop::pick(rng, &["quote\"back\\slash", "tab\tnewline\n", "naïve 漢字 😀"]),
            ),
        }
    } else if rng.gen_bool(0.5) {
        Value::Array(vec_of(rng, 0, 5, |r| random_value(r, depth - 1)))
    } else {
        // Unique keys: duplicate keys would make flatten/path disagree
        // (get returns the first member).
        let mut keys = vec_of(rng, 0, 5, |r| lowercase_string(r, 1, 6));
        keys.sort();
        keys.dedup();
        Value::Object(
            keys.into_iter()
                .map(|k| (k, random_value(rng, depth - 1)))
                .collect(),
        )
    }
}

#[test]
fn compact_round_trip() {
    prop::run(192, |rng| {
        let v = random_value(rng, 4);
        let text = v.to_json();
        let back = parse(&text).expect("writer output must parse");
        assert_eq!(back, v);
    });
}

#[test]
fn pretty_round_trip() {
    prop::run(192, |rng| {
        let v = random_value(rng, 4);
        let back = parse(&v.to_json_pretty()).expect("pretty output must parse");
        assert_eq!(back, v);
    });
}

#[test]
fn cmp_total_is_reflexive_and_antisymmetric() {
    prop::run(128, |rng| {
        use std::cmp::Ordering;
        let a = random_value(rng, 3);
        let b = random_value(rng, 3);
        assert_eq!(a.cmp_total(&a), Ordering::Equal);
        let ab = a.cmp_total(&b);
        let ba = b.cmp_total(&a);
        assert_eq!(ab, ba.reverse());
    });
}

#[test]
fn cmp_total_is_transitive() {
    prop::run(128, |rng| {
        use std::cmp::Ordering;
        let mut vals = [
            random_value(rng, 3),
            random_value(rng, 3),
            random_value(rng, 3),
        ];
        vals.sort_by(|x, y| x.cmp_total(y));
        // After sorting, pairwise order must hold.
        assert_ne!(vals[0].cmp_total(&vals[1]), Ordering::Greater);
        assert_ne!(vals[1].cmp_total(&vals[2]), Ordering::Greater);
        assert_ne!(vals[0].cmp_total(&vals[2]), Ordering::Greater);
    });
}

#[test]
fn parser_never_panics_on_arbitrary_input() {
    prop::run(256, |rng| {
        let text = any_string(rng, 0, 64);
        let _ = parse(&text);
    });
}

#[test]
fn flatten_paths_resolve_back() {
    prop::run(128, |rng| {
        let v = random_value(rng, 4);
        for (path, leaf) in v.flatten() {
            assert_eq!(v.path(&path), Some(leaf));
        }
    });
}
