//! Property-based tests: every generated value round-trips through the
//! compact and pretty writers, and cmp_total is a total order.

use covidkg_json::{parse, Value};
use proptest::prelude::*;

/// Strategy producing arbitrary JSON values of bounded depth/size.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::int),
        // Finite floats only: JSON has no NaN/Inf representation.
        (-1.0e12f64..1.0e12).prop_map(Value::float),
        "[ -~]{0,12}".prop_map(Value::str),
        // Exercise escapes and non-ASCII.
        prop_oneof![
            Just(Value::str("quote\"back\\slash")),
            Just(Value::str("tab\tnewline\n")),
            Just(Value::str("naïve 漢字 😀")),
        ],
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            // BTreeMap keys are unique; duplicate keys would make
            // flatten/path disagree (get returns the first member).
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..6)
                .prop_map(|pairs| Value::Object(pairs.into_iter().collect())),
        ]
    })
}

proptest! {
    #[test]
    fn compact_round_trip(v in value_strategy()) {
        let text = v.to_json();
        let back = parse(&text).expect("writer output must parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pretty_round_trip(v in value_strategy()) {
        let back = parse(&v.to_json_pretty()).expect("pretty output must parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn cmp_total_is_reflexive_and_antisymmetric(a in value_strategy(), b in value_strategy()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp_total(&a), Ordering::Equal);
        let ab = a.cmp_total(&b);
        let ba = b.cmp_total(&a);
        prop_assert_eq!(ab, ba.reverse());
    }

    #[test]
    fn cmp_total_is_transitive(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        use std::cmp::Ordering;
        let mut vals = [a, b, c];
        vals.sort_by(|x, y| x.cmp_total(y));
        // After sorting, pairwise order must hold.
        prop_assert_ne!(vals[0].cmp_total(&vals[1]), Ordering::Greater);
        prop_assert_ne!(vals[1].cmp_total(&vals[2]), Ordering::Greater);
        prop_assert_ne!(vals[0].cmp_total(&vals[2]), Ordering::Greater);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(text in "\\PC{0,64}") {
        let _ = parse(&text);
    }

    #[test]
    fn flatten_paths_resolve_back(v in value_strategy()) {
        for (path, leaf) in v.flatten() {
            prop_assert_eq!(v.path(&path), Some(leaf));
        }
    }
}
